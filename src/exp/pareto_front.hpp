// (makespan, cost) Pareto-front analysis over a result set, plus the
// deadline/budget machinery behind the constrained scenario.
//
// The paper's Fig. 4 asks which strategies deliver gain and/or savings; the
// sharper question for a practitioner is which strategies are *undominated*
// — no other strategy is both faster and cheaper. This module computes that
// front (minimizing both makespan and total cost).
//
// The constrained half answers the follow-up: given a deadline and a budget
// (both expressed as factors of the OneVMperTask-s reference, so one spec
// scales across workflow sizes), which strategies are *feasible*, and which
// feasible strategy is best (cheapest, ties broken by makespan)? When none
// of the 19 paper strategies fits, stochastic_search samples the wider
// (policy x ordering x instance size) configuration space the paper's
// Table I factorizes — a RIOT-style random probe of scheduler
// configurations rather than an exhaustive grid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "scheduling/custom_policy.hpp"
#include "util/table.hpp"

namespace cloudwf::exp {

struct FrontPoint {
  std::string strategy;
  util::Seconds makespan = 0;
  util::Money cost;
  bool dominated = false;       ///< some other strategy is <= on both axes
  std::string dominated_by;     ///< one witness (empty when undominated)
};

/// Classifies every result; weak dominance with a strict improvement on at
/// least one axis. Input order is preserved.
[[nodiscard]] std::vector<FrontPoint> pareto_front(
    const std::vector<RunResult>& results);

/// The undominated subset, sorted by ascending makespan.
[[nodiscard]] std::vector<FrontPoint> undominated(
    const std::vector<FrontPoint>& points);

[[nodiscard]] util::TextTable pareto_front_table(
    const std::vector<FrontPoint>& points);

// ---------------------------------------------------------------------------
// Deadline/budget-constrained selection (the `constrained` scenario).

/// Constraint factors relative to the case's reference run: the deadline is
/// deadline_factor x reference makespan, the budget budget_factor x
/// reference total cost. Factors (not absolutes) keep one spec meaningful
/// from 25-task to 10^4-task workflows.
struct ConstraintSpec {
  double deadline_factor = 0.7;
  double budget_factor = 1.5;
};

/// Absolute constraints for one case.
struct Constraints {
  util::Seconds deadline = 0;
  util::Money budget;
};

/// Scales `spec` by the reference metrics. Throws std::invalid_argument on
/// non-positive factors or a degenerate reference.
[[nodiscard]] Constraints derive_constraints(const sim::ScheduleMetrics& reference,
                                             const ConstraintSpec& spec);

/// Locates the OneVMperTask-s reference row inside `results` and scales
/// `spec` by it. Throws std::invalid_argument when the row is absent.
[[nodiscard]] Constraints derive_constraints(const std::vector<RunResult>& results,
                                             const ConstraintSpec& spec);

struct ConstrainedPoint {
  std::string strategy;
  util::Seconds makespan = 0;
  util::Money cost;
  bool feasible = false;  ///< makespan <= deadline AND cost <= budget
};

struct ConstrainedReport {
  Constraints constraints;
  std::vector<ConstrainedPoint> points;  ///< input order preserved
  std::ptrdiff_t best = -1;  ///< index of the constrained-best; -1 = none feasible

  [[nodiscard]] std::size_t feasible_count() const noexcept {
    std::size_t n = 0;
    for (const ConstrainedPoint& p : points) n += p.feasible ? 1 : 0;
    return n;
  }
};

/// Classifies every result against the constraints (deadline with the
/// schedule-time slack, budget exactly) and selects the constrained-best:
/// the cheapest feasible strategy, ties broken by smaller makespan, then by
/// label for full determinism.
[[nodiscard]] ConstrainedReport classify_constrained(
    const std::vector<RunResult>& results, const Constraints& constraints);

[[nodiscard]] util::TextTable constrained_table(const ConstrainedReport& report);

// ---------------------------------------------------------------------------
// Stochastic configuration search.

struct SearchConfig {
  std::size_t iterations = 64;  ///< random draws (duplicates skipped)
  std::uint64_t seed = 0;       ///< full determinism per seed
};

/// One evaluated configuration: a (provisioning policy, ordering family,
/// instance size) triple from Table I's factorization.
struct SearchCandidate {
  std::string label;
  provisioning::ProvisioningKind policy =
      provisioning::ProvisioningKind::one_vm_per_task;
  scheduling::OrderingFamily ordering =
      scheduling::OrderingFamily::priority_ranking;
  cloud::InstanceSize size = cloud::InstanceSize::small;
  sim::ScheduleMetrics metrics;
  bool feasible = false;
};

struct SearchResult {
  std::vector<SearchCandidate> evaluated;  ///< deduped, in evaluation order
  std::ptrdiff_t best = -1;  ///< best candidate index; -1 = none feasible
};

/// Randomly probes the (5 policies x 2 orderings x 4 sizes) configuration
/// space for `iterations` draws, evaluating each distinct configuration on
/// `materialized` over `platform` and classifying it against the
/// constraints. Deterministic per config.seed; the best candidate minimizes
/// (infeasible, cost, makespan, label).
[[nodiscard]] SearchResult stochastic_search(const dag::Workflow& materialized,
                                             const cloud::Platform& platform,
                                             const Constraints& constraints,
                                             const SearchConfig& config);

}  // namespace cloudwf::exp
