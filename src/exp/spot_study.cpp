#include "exp/spot_study.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace cloudwf::exp {

std::vector<SpotStudyRow> spot_study(const ExperimentRunner& runner,
                                     const dag::Workflow& structure,
                                     const SpotStudyConfig& config) {
  if (config.bid_fraction <= 0)
    throw std::invalid_argument("spot_study: bid fraction must be positive");

  const dag::Workflow wf =
      runner.materialize(structure, workload::ScenarioKind::pareto);
  const cloud::Platform& platform = runner.platform();

  std::vector<SpotStudyRow> rows;
  util::Rng rng(config.seed);

  for (const scheduling::Strategy& strategy : scheduling::paper_strategies()) {
    const sim::Schedule schedule = strategy.scheduler->run(wf, platform);
    const sim::ScheduleMetrics metrics =
        sim::compute_metrics(wf, schedule, platform);

    SpotStudyRow row;
    row.strategy = strategy.label;
    row.on_demand_cost = metrics.total_cost;
    row.makespan_clean = metrics.makespan;

    // Bill each VM's sessions at its own sampled spot path; accumulate
    // eviction exposure over the rented windows.
    double exceedance_sum = 0;
    std::size_t used_vms = 0;
    const util::Seconds horizon = std::max(metrics.makespan, util::kBtu);
    for (const cloud::Vm& vm : schedule.pool().vms()) {
      if (!vm.used()) continue;
      ++used_vms;
      const util::Money on_demand =
          platform.region(vm.region()).price(vm.size());
      const cloud::SpotPriceSeries series(on_demand, config.market, horizon, rng);
      const util::Money bid = on_demand.scaled(config.bid_fraction);

      for (const cloud::Vm::Session& session : vm.sessions()) {
        const util::Seconds paid_end =
            std::min(session.paid_end(), horizon);
        if (!(paid_end > session.start)) continue;
        // BTU count of the session billed at the window's average price.
        row.spot_cost +=
            series.average_price(session.start, paid_end)
                .scaled(static_cast<double>(session.btus()));
        // Expected evictions: exceedance ticks within the window.
        for (util::Seconds t = session.start; t < paid_end;
             t += config.market.tick) {
          if (series.price_at(t) > bid) row.evictions_expected += 1.0;
        }
      }
      exceedance_sum += series.exceedance_fraction(bid);
    }
    row.savings_pct =
        row.on_demand_cost > util::Money{}
            ? 100.0 *
                  static_cast<double>(
                      (row.on_demand_cost - row.spot_cost).micros()) /
                  static_cast<double>(row.on_demand_cost.micros())
            : 0.0;

    // Makespan penalty: empirical per-tick eviction probability converted
    // to a Poisson rate per VM execution hour, replayed with reruns.
    const double mean_exceedance =
        used_vms > 0 ? exceedance_sum / static_cast<double>(used_vms) : 0.0;
    sim::FaultModel faults;
    faults.failures_per_vm_hour =
        mean_exceedance * (3600.0 / config.market.tick);
    faults.detection_delay = 120.0;  // reprovision on fallback capacity
    double makespan_sum = 0;
    for (int rep = 0; rep < config.replay_reps; ++rep) {
      util::Rng rep_rng(config.seed + 1000ULL * static_cast<std::uint64_t>(rep));
      makespan_sum +=
          sim::replay_with_faults(wf, schedule, platform, faults, rep_rng)
              .makespan;
    }
    row.makespan_spot =
        config.replay_reps > 0 ? makespan_sum / config.replay_reps
                               : row.makespan_clean;
    rows.push_back(std::move(row));
  }
  return rows;
}

util::TextTable spot_study_table(const std::vector<SpotStudyRow>& rows) {
  util::TextTable t({"strategy", "on-demand $", "spot $", "spot savings",
                     "expected evictions", "makespan clean (s)",
                     "makespan spot (s)"});
  for (const SpotStudyRow& r : rows) {
    t.add_row({r.strategy, util::format_double(r.on_demand_cost.dollars(), 3),
               util::format_double(r.spot_cost.dollars(), 3),
               util::format_double(r.savings_pct, 1) + "%",
               util::format_double(r.evictions_expected, 1),
               util::format_double(r.makespan_clean, 0),
               util::format_double(r.makespan_spot, 0)});
  }
  return t;
}

}  // namespace cloudwf::exp
