// Structured simulation tracing & metrics (the observability subsystem).
//
// A TraceRecorder captures typed events from the provisioning policies
// (rent/reuse/BTU decisions), the schedulers (placements, ready sets,
// upgrade moves) and the event-driven replay (boot/start/finish/transfer),
// each with a timestamp, a category and a structured payload, plus
// lightweight counters and per-phase wall-clock timings.
//
// Design constraints, in order:
//
//  1. **Zero cost when disabled.** Nothing is recorded unless a recorder is
//     installed (thread-locally via ScopedRecording, or process-wide via
//     set_global_recorder). Every emit helper first loads the current
//     recorder pointer and returns on nullptr — one thread-local read, one
//     relaxed atomic load and two predictable branches; no payload is even
//     constructed. bench_trace_overhead pins this under 2% on the Fig. 4
//     sweep.
//  2. **No serialization across sweep workers.** Each recording thread gets
//     its own fixed-capacity ring-buffer sink (registered once under a
//     mutex, then written lock-free by its owner); counters are relaxed
//     atomics. The PR-1 parallel sweep engine can run with one shared
//     global recorder without its workers contending on a lock.
//  3. **Deterministic drains.** drain() merges the per-thread rings with a
//     stable sort on (timestamp, sink registration order, per-sink
//     sequence), so a single-threaded run replays to an identical stream
//     every time — the golden trace test depends on this.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cloudwf::obs {

/// Sentinel for "no task / no VM attached to this event".
inline constexpr std::uint64_t kNoId = ~std::uint64_t{0};

enum class EventKind : std::uint8_t {
  vm_rent = 0,     ///< provisioning — a fresh VM joined the pool
  task_place = 1,  ///< scheduling — task assigned to a VM over [ts, ts+dur)
  decision = 2,    ///< provisioning — a policy's reuse/rent reasoning
  ready_set = 3,   ///< scheduling — a ready set / level was formed
  upgrade = 4,     ///< scheduling — a dynamic algorithm's resize attempt
  vm_boot = 5,     ///< simulation — VM boots over [ts, ts+dur)
  task_start = 6,  ///< simulation — replay started a task
  task_finish = 7, ///< simulation — replay finished a task
  transfer = 8,    ///< simulation — output data shipped to a successor
  phase = 9,       ///< host — wall-clock span of a named phase
};
inline constexpr std::size_t kEventKindCount = 10;

[[nodiscard]] std::string_view name_of(EventKind k) noexcept;

/// Category in the Chrome-trace sense: which lane of the system produced
/// the event ("provisioning", "scheduling", "simulation" or "host").
[[nodiscard]] std::string_view category_of(EventKind k) noexcept;

/// One captured event. `ts`/`dur` are simulation seconds for everything
/// except `phase`, whose times are wall-clock seconds since the recorder
/// was created. `value` is kind-dependent: BTU delta for task_place, set
/// size for ready_set, target-size index for upgrade, transferred GB for
/// transfer. `detail` is a short human-readable annotation (policy
/// reasoning, phase name, accept/reject).
struct TraceEvent {
  double ts = 0;
  double dur = 0;
  EventKind kind = EventKind::decision;
  std::uint64_t task = kNoId;
  std::uint64_t vm = kNoId;
  double value = 0;
  std::string detail;
};

/// Point-in-time view of a recorder's counters.
struct CounterSnapshot {
  std::uint64_t events_recorded = 0;  ///< total record() calls
  std::uint64_t events_dropped = 0;   ///< ring overwrites (oldest lost)
  std::uint64_t vms_rented = 0;       ///< vm_rent events
  std::uint64_t vms_reused = 0;       ///< task_place on an already-used VM
  std::uint64_t btu_extends = 0;      ///< reuses that grew the VM's BTUs
  std::uint64_t btus_added = 0;       ///< sum of task_place BTU deltas
  std::uint64_t tasks_placed = 0;     ///< task_place events
  std::uint64_t sim_events = 0;       ///< replay finish events processed
  std::uint64_t transfers = 0;        ///< transfer events
  std::uint64_t upgrades_accepted = 0;
  std::uint64_t upgrades_rejected = 0;
  std::uint64_t max_queue_depth = 0;  ///< replay event-queue high-water mark
};

/// min/sum/max wall-clock seconds of one named phase.
struct PhaseStat {
  std::uint64_t count = 0;
  double total = 0;
  double min = 0;
  double max = 0;
};

class TraceRecorder {
 public:
  /// `ring_capacity` bounds each recording thread's buffered events; once
  /// full the oldest event is overwritten (and counted as dropped), keeping
  /// memory bounded on arbitrarily long runs.
  explicit TraceRecorder(std::size_t ring_capacity = 1 << 16);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Appends `ev` to the calling thread's ring and updates the counters.
  /// Lock-free after the thread's first call (sink registration).
  void record(TraceEvent ev);

  /// Records the replay event-queue depth high-water mark (counter only).
  void note_queue_depth(std::size_t depth) noexcept;

  /// Folds a finished phase span into the per-phase stats and records a
  /// phase event (ts = seconds since recorder creation).
  void record_phase(std::string_view name, double begin_s, double end_s);

  /// Merged view of every thread's buffered events, stable-sorted by
  /// (ts, sink registration order, per-sink sequence). Non-destructive.
  [[nodiscard]] std::vector<TraceEvent> drain() const;

  [[nodiscard]] CounterSnapshot counters() const noexcept;

  /// Per-phase wall-clock stats, keyed by phase name.
  [[nodiscard]] std::map<std::string, PhaseStat> phase_stats() const;

  /// Wall-clock seconds since this recorder was constructed.
  [[nodiscard]] double elapsed() const noexcept;

  /// Process-unique id; lets a thread-local sink cache detect that "the
  /// recorder at this address" is not the one it registered with.
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

 private:
  struct Sink;
  [[nodiscard]] Sink& sink_for_this_thread();

  const std::size_t ring_capacity_;
  const std::uint64_t generation_;
  const std::chrono::steady_clock::time_point birth_;

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<Sink>> sinks_;

  std::array<std::atomic<std::uint64_t>, 13> counters_{};

  mutable std::mutex phase_mutex_;
  std::map<std::string, PhaseStat> phases_;
};

/// Installs/clears the process-wide recorder every thread falls back to
/// when it has no thread-local one. Pass nullptr to disable.
void set_global_recorder(TraceRecorder* recorder) noexcept;

/// The recorder the calling thread should record to: its thread-local
/// override if any, else the global one, else nullptr (tracing disabled).
[[nodiscard]] TraceRecorder* current_recorder() noexcept;

[[nodiscard]] inline bool enabled() noexcept {
  return current_recorder() != nullptr;
}

/// Scoped thread-local install: tracing is enabled on this thread for the
/// scope's lifetime (nesting restores the previous recorder).
class ScopedRecording {
 public:
  explicit ScopedRecording(TraceRecorder& recorder) noexcept;
  ~ScopedRecording();

  ScopedRecording(const ScopedRecording&) = delete;
  ScopedRecording& operator=(const ScopedRecording&) = delete;

 private:
  TraceRecorder* previous_;
};

/// Scoped thread-local suppression: tracing is disabled on this thread for
/// the scope's lifetime, overriding both the thread-local and the global
/// recorder (nests; inner scopes are no-ops). Used around internal scratch
/// work — e.g. the upgrade schedulers' candidate retimes — whose rent/place
/// calls are search effort, not schedule construction, and would otherwise
/// distort the counters the metrics-agreement tests certify.
class SuppressRecording {
 public:
  SuppressRecording() noexcept;
  ~SuppressRecording();

  SuppressRecording(const SuppressRecording&) = delete;
  SuppressRecording& operator=(const SuppressRecording&) = delete;
};

/// RAII wall-clock span: emits a `phase` event (and folds the duration into
/// the recorder's phase stats) when destroyed. Free when tracing is off —
/// the constructor captures nullptr and the destructor takes one branch.
class PhaseScope {
 public:
  explicit PhaseScope(std::string_view name) noexcept;
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  TraceRecorder* recorder_;
  double begin_ = 0;
  std::string name_;
};

// ---------------------------------------------------------------------------
// Emit helpers — the instrumentation surface. Each checks for a recorder
// FIRST and only then builds the payload, so a disabled call site costs a
// pointer load and a branch and never touches the arguments.

inline void emit_vm_rent(std::uint64_t vm, double ts, std::string_view detail) {
  if (TraceRecorder* r = current_recorder())
    r->record({ts, 0, EventKind::vm_rent, kNoId, vm, 0, std::string(detail)});
}

/// `reused` marks a placement on a VM that already held a task; `btu_delta`
/// is how many BTUs the placement added to the VM's sessions.
inline void emit_task_place(std::uint64_t task, std::uint64_t vm, double start,
                            double end, bool reused, double btu_delta) {
  if (TraceRecorder* r = current_recorder())
    r->record({start, end - start, EventKind::task_place, task, vm, btu_delta,
               reused ? "reuse" : "fresh"});
}

inline void emit_decision(std::uint64_t task, std::uint64_t vm, double ts,
                          std::string_view detail) {
  if (TraceRecorder* r = current_recorder())
    r->record({ts, 0, EventKind::decision, task, vm, 0, std::string(detail)});
}

inline void emit_ready_set(std::size_t size, std::string_view detail) {
  if (TraceRecorder* r = current_recorder())
    r->record({0, 0, EventKind::ready_set, kNoId, kNoId,
               static_cast<double>(size), std::string(detail)});
}

inline void emit_upgrade(std::uint64_t task, bool accepted, double value,
                         std::string_view detail) {
  if (TraceRecorder* r = current_recorder())
    r->record({0, 0, EventKind::upgrade, task, kNoId, value,
               accepted ? std::string("accept: ") + std::string(detail)
                        : std::string("reject: ") + std::string(detail)});
}

inline void emit_vm_boot(std::uint64_t vm, double boot_time) {
  if (TraceRecorder* r = current_recorder())
    r->record({0, boot_time, EventKind::vm_boot, kNoId, vm, 0, {}});
}

inline void emit_task_start(std::uint64_t task, std::uint64_t vm, double ts) {
  if (TraceRecorder* r = current_recorder())
    r->record({ts, 0, EventKind::task_start, task, vm, 0, {}});
}

inline void emit_task_finish(std::uint64_t task, std::uint64_t vm, double ts) {
  if (TraceRecorder* r = current_recorder())
    r->record({ts, 0, EventKind::task_finish, task, vm, 0, {}});
}

inline void emit_transfer(std::uint64_t from_task, std::uint64_t to_task,
                          double ts, double dur, double gigabytes) {
  if (TraceRecorder* r = current_recorder())
    r->record({ts, dur, EventKind::transfer, to_task, kNoId, gigabytes,
               "from task " + std::to_string(from_task)});
}

inline void note_queue_depth(std::size_t depth) noexcept {
  if (TraceRecorder* r = current_recorder()) r->note_queue_depth(depth);
}

}  // namespace cloudwf::obs
