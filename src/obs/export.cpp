#include "obs/export.hpp"

#include <cstdio>

#include "util/json.hpp"

namespace cloudwf::obs {

namespace {

using util::Json;

constexpr int kSchedulePid = 1;
constexpr int kReplayPid = 2;
constexpr int kHostPid = 3;

int pid_of(EventKind k) {
  switch (k) {
    case EventKind::vm_boot:
    case EventKind::task_start:
    case EventKind::task_finish:
    case EventKind::transfer:
      return kReplayPid;
    case EventKind::phase:
      return kHostPid;
    default:
      return kSchedulePid;
  }
}

/// tid 0 is the control row; VM v gets row v + 1.
std::int64_t tid_of(const TraceEvent& ev) {
  return ev.vm == kNoId ? 0 : static_cast<std::int64_t>(ev.vm) + 1;
}

std::string display_name(const TraceEvent& ev) {
  switch (ev.kind) {
    case EventKind::task_place:
    case EventKind::task_start:
    case EventKind::task_finish:
      return "t" + std::to_string(ev.task);
    case EventKind::vm_rent:
      return "rent vm" + std::to_string(ev.vm);
    case EventKind::vm_boot:
      return "boot vm" + std::to_string(ev.vm);
    case EventKind::transfer:
      return "xfer->t" + std::to_string(ev.task);
    case EventKind::phase:
      return ev.detail;
    default:
      return std::string(name_of(ev.kind));
  }
}

Json args_of(const TraceEvent& ev) {
  Json args = Json::object();
  if (ev.task != kNoId) args["task"] = static_cast<double>(ev.task);
  if (ev.vm != kNoId) args["vm"] = static_cast<double>(ev.vm);
  if (ev.value != 0) args["value"] = ev.value;
  if (!ev.detail.empty()) args["detail"] = ev.detail;
  return args;
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%10.3f", s);
  return buf;
}

}  // namespace

std::string to_chrome_trace(std::span<const TraceEvent> events) {
  Json trace_events = Json::array();

  // Process-name metadata rows keep Perfetto's sidebar readable.
  const std::pair<int, const char*> processes[] = {
      {kSchedulePid, "cloudwf: schedule construction"},
      {kReplayPid, "cloudwf: event-driven replay"},
      {kHostPid, "cloudwf: host phases"}};
  for (const auto& [pid, label] : processes) {
    Json meta = Json::object();
    meta["ph"] = "M";
    meta["name"] = "process_name";
    meta["pid"] = pid;
    meta["tid"] = 0;
    meta["ts"] = 0;
    Json args = Json::object();
    args["name"] = label;
    meta["args"] = std::move(args);
    trace_events.push_back(std::move(meta));
  }

  for (const TraceEvent& ev : events) {
    Json e = Json::object();
    e["name"] = display_name(ev);
    e["cat"] = std::string(category_of(ev.kind));
    e["pid"] = pid_of(ev.kind);
    e["tid"] = static_cast<double>(tid_of(ev));
    e["ts"] = ev.ts * 1e6;
    const bool span = ev.kind == EventKind::task_place ||
                      ev.kind == EventKind::vm_boot ||
                      ev.kind == EventKind::phase ||
                      (ev.kind == EventKind::transfer && ev.dur > 0);
    if (span) {
      e["ph"] = "X";
      e["dur"] = ev.dur * 1e6;
    } else if (ev.kind == EventKind::task_start) {
      e["ph"] = "B";
    } else if (ev.kind == EventKind::task_finish) {
      e["ph"] = "E";
    } else {
      e["ph"] = "i";
      e["s"] = "t";  // thread-scoped instant
    }
    const Json args = args_of(ev);
    if (args.is_object()) e["args"] = args;
    trace_events.push_back(std::move(e));
  }

  Json root = Json::object();
  root["traceEvents"] = std::move(trace_events);
  root["displayTimeUnit"] = "ms";
  return root.dump();
}

std::string to_jsonl(std::span<const TraceEvent> events) {
  std::string out;
  for (const TraceEvent& ev : events) {
    Json e = Json::object();
    e["cat"] = std::string(category_of(ev.kind));
    e["kind"] = std::string(name_of(ev.kind));
    e["ts"] = ev.ts;
    if (ev.dur != 0) e["dur"] = ev.dur;
    if (ev.task != kNoId) e["task"] = static_cast<double>(ev.task);
    if (ev.vm != kNoId) e["vm"] = static_cast<double>(ev.vm);
    if (ev.value != 0) e["value"] = ev.value;
    if (!ev.detail.empty()) e["detail"] = ev.detail;
    out += e.dump();
    out += '\n';
  }
  return out;
}

std::string decision_log(std::span<const TraceEvent> events) {
  std::string out;
  for (const TraceEvent& ev : events) {
    out += '[' + fmt_seconds(ev.ts) + "s] ";
    std::string line(name_of(ev.kind));
    line.resize(12, ' ');
    out += line;
    switch (ev.kind) {
      case EventKind::vm_rent:
        out += "vm " + std::to_string(ev.vm);
        if (!ev.detail.empty()) out += " (" + ev.detail + ')';
        break;
      case EventKind::task_place:
        out += 't' + std::to_string(ev.task) + " -> vm " + std::to_string(ev.vm) +
               " [" + fmt_seconds(ev.ts) + ", " + fmt_seconds(ev.ts + ev.dur) +
               ") " + ev.detail;
        if (ev.value > 0)
          out += " (+" + std::to_string(static_cast<long long>(ev.value)) +
                 " BTU)";
        break;
      case EventKind::decision:
        if (ev.task != kNoId) out += 't' + std::to_string(ev.task) + ": ";
        out += ev.detail;
        break;
      case EventKind::ready_set:
        out += ev.detail + " (" +
               std::to_string(static_cast<long long>(ev.value)) + " tasks)";
        break;
      case EventKind::upgrade:
        out += 't' + std::to_string(ev.task) + ": " + ev.detail;
        break;
      case EventKind::vm_boot:
        out += "vm " + std::to_string(ev.vm) + " (" + std::to_string(ev.dur) +
               " s)";
        break;
      case EventKind::task_start:
      case EventKind::task_finish:
        out += 't' + std::to_string(ev.task) + " on vm " + std::to_string(ev.vm);
        break;
      case EventKind::transfer:
        out += ev.detail + " -> t" + std::to_string(ev.task) + " (" +
               std::to_string(ev.value) + " GB, " + std::to_string(ev.dur) +
               " s)";
        break;
      case EventKind::phase:
        out += ev.detail + " (" + std::to_string(ev.dur * 1e3) + " ms)";
        break;
    }
    out += '\n';
  }
  return out;
}

std::string counters_summary(const CounterSnapshot& c) {
  std::string out;
  out += "events recorded " + std::to_string(c.events_recorded);
  if (c.events_dropped > 0)
    out += " (dropped " + std::to_string(c.events_dropped) + ')';
  out += ", VMs rented " + std::to_string(c.vms_rented) + ", reuses " +
         std::to_string(c.vms_reused) + " (BTU-extending " +
         std::to_string(c.btu_extends) + "), BTUs added " +
         std::to_string(c.btus_added) + ", tasks placed " +
         std::to_string(c.tasks_placed) + ", replay events " +
         std::to_string(c.sim_events) + ", transfers " +
         std::to_string(c.transfers) + ", queue depth max " +
         std::to_string(c.max_queue_depth);
  if (c.upgrades_accepted + c.upgrades_rejected > 0)
    out += ", upgrades " + std::to_string(c.upgrades_accepted) + " accepted / " +
           std::to_string(c.upgrades_rejected) + " rejected";
  out += '\n';
  return out;
}

std::string phase_summary(const std::map<std::string, PhaseStat>& stats) {
  std::string out;
  for (const auto& [name, s] : stats) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%-24s x%llu  total %.3f ms  min %.3f ms  max %.3f ms\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.total * 1e3, s.min * 1e3, s.max * 1e3);
    out += buf;
  }
  return out;
}

}  // namespace cloudwf::obs
