// Exporters for drained trace streams:
//
//  - to_chrome_trace: Chrome trace-event JSON (the "JSON Array Format" with
//    a traceEvents wrapper) loadable in chrome://tracing and Perfetto.
//    Spans (placements, boots, replayed tasks, host phases) become "X"
//    complete events; decisions and transfers become "i" instants. Rows:
//    pid 1 = the static schedule, pid 2 = the event-driven replay, pid 3 =
//    host phases; tid 0 is the control row, tid v+1 is VM v's timeline.
//  - to_jsonl: one self-describing JSON object per line — the regression-
//    friendly structured form (golden-file tested).
//  - decision_log: a human-readable per-decision log plus counter summary,
//    what `cloudwf trace` prints.
#pragma once

#include <span>
#include <string>

#include "obs/trace.hpp"

namespace cloudwf::obs {

/// Chrome trace-event JSON for the whole stream. Timestamps are expressed
/// in microseconds as the spec requires (simulation seconds x 1e6; phase
/// events use wall-clock seconds since recorder creation x 1e6).
[[nodiscard]] std::string to_chrome_trace(std::span<const TraceEvent> events);

/// Line-delimited JSON: `{"cat":...,"kind":...,"ts":...}\n` per event.
/// Field order is fixed (sorted keys) so the output is byte-stable.
[[nodiscard]] std::string to_jsonl(std::span<const TraceEvent> events);

/// Human-readable decision log, one line per event.
[[nodiscard]] std::string decision_log(std::span<const TraceEvent> events);

/// One-paragraph counter summary ("5 VMs rented, 19 reuses, ...").
[[nodiscard]] std::string counters_summary(const CounterSnapshot& counters);

/// Per-phase wall-time table (name, count, total/min/max milliseconds).
[[nodiscard]] std::string phase_summary(
    const std::map<std::string, PhaseStat>& stats);

}  // namespace cloudwf::obs
