#include "obs/trace.hpp"

#include <algorithm>

namespace cloudwf::obs {

namespace {

// Counter slots (indices into TraceRecorder::counters_).
enum CounterSlot : std::size_t {
  kEventsRecorded = 0,
  kEventsDropped,
  kVmsRented,
  kVmsReused,
  kBtuExtends,
  kBtusAdded,
  kTasksPlaced,
  kSimEvents,
  kTransfers,
  kUpgradesAccepted,
  kUpgradesRejected,
  kMaxQueueDepth,
  kCounterSlots,  // == 12; counters_ has one spare slot
};

std::atomic<std::uint64_t> g_generation{1};
std::atomic<TraceRecorder*> g_recorder{nullptr};
thread_local TraceRecorder* tl_recorder = nullptr;
thread_local int tl_suppressed = 0;

// Per-(thread, recorder) sink cache: generation tags make a stale entry
// (recorder destroyed, another allocated at the same address) detectable.
struct SinkCache {
  std::uint64_t generation = 0;
  void* sink = nullptr;
};
thread_local SinkCache tl_sink_cache;

}  // namespace

std::string_view name_of(EventKind k) noexcept {
  constexpr std::array<std::string_view, kEventKindCount> names = {
      "vm_rent",  "task_place", "decision",    "ready_set", "upgrade",
      "vm_boot",  "task_start", "task_finish", "transfer",  "phase"};
  return names[static_cast<std::size_t>(k)];
}

std::string_view category_of(EventKind k) noexcept {
  switch (k) {
    case EventKind::vm_rent:
    case EventKind::decision:
      return "provisioning";
    case EventKind::task_place:
    case EventKind::ready_set:
    case EventKind::upgrade:
      return "scheduling";
    case EventKind::vm_boot:
    case EventKind::task_start:
    case EventKind::task_finish:
    case EventKind::transfer:
      return "simulation";
    case EventKind::phase:
      return "host";
  }
  return "unknown";
}

/// One thread's ring buffer. Only its owning thread writes; drain() reads
/// under the registry mutex after the writer quiesced (drains happen at
/// barriers — end of run / end of job — not concurrently with recording
/// on the same sink; `count` is atomic so a racy drain still reads a
/// consistent prefix length).
struct TraceRecorder::Sink {
  explicit Sink(std::size_t capacity) : ring(capacity) {}

  std::vector<TraceEvent> ring;
  std::atomic<std::size_t> count{0};  ///< total events ever written
};

TraceRecorder::TraceRecorder(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed)),
      birth_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() {
  // Unhook from the global slot if still installed (defensive; owners
  // normally clear it themselves).
  TraceRecorder* self = this;
  g_recorder.compare_exchange_strong(self, nullptr);
}

TraceRecorder::Sink& TraceRecorder::sink_for_this_thread() {
  if (tl_sink_cache.generation == generation_)
    return *static_cast<Sink*>(tl_sink_cache.sink);
  std::lock_guard lock(registry_mutex_);
  sinks_.push_back(std::make_unique<Sink>(ring_capacity_));
  Sink& sink = *sinks_.back();
  tl_sink_cache = {generation_, &sink};
  return sink;
}

void TraceRecorder::record(TraceEvent ev) {
  Sink& sink = sink_for_this_thread();
  const std::size_t n = sink.count.load(std::memory_order_relaxed);
  if (n >= ring_capacity_)
    counters_[kEventsDropped].fetch_add(1, std::memory_order_relaxed);
  counters_[kEventsRecorded].fetch_add(1, std::memory_order_relaxed);

  switch (ev.kind) {
    case EventKind::vm_rent:
      counters_[kVmsRented].fetch_add(1, std::memory_order_relaxed);
      break;
    case EventKind::task_place: {
      counters_[kTasksPlaced].fetch_add(1, std::memory_order_relaxed);
      const bool reused = ev.detail == "reuse";
      if (reused) counters_[kVmsReused].fetch_add(1, std::memory_order_relaxed);
      const auto delta = static_cast<std::uint64_t>(ev.value);
      if (delta > 0) {
        counters_[kBtusAdded].fetch_add(delta, std::memory_order_relaxed);
        if (reused)
          counters_[kBtuExtends].fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    case EventKind::task_finish:
      counters_[kSimEvents].fetch_add(1, std::memory_order_relaxed);
      break;
    case EventKind::transfer:
      counters_[kTransfers].fetch_add(1, std::memory_order_relaxed);
      break;
    case EventKind::upgrade:
      counters_[ev.detail.rfind("accept", 0) == 0 ? kUpgradesAccepted
                                                  : kUpgradesRejected]
          .fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }

  sink.ring[n % ring_capacity_] = std::move(ev);
  sink.count.store(n + 1, std::memory_order_release);
}

void TraceRecorder::note_queue_depth(std::size_t depth) noexcept {
  const auto d = static_cast<std::uint64_t>(depth);
  std::uint64_t cur = counters_[kMaxQueueDepth].load(std::memory_order_relaxed);
  while (cur < d && !counters_[kMaxQueueDepth].compare_exchange_weak(
                        cur, d, std::memory_order_relaxed)) {
  }
}

void TraceRecorder::record_phase(std::string_view name, double begin_s,
                                 double end_s) {
  {
    std::lock_guard lock(phase_mutex_);
    PhaseStat& stat = phases_[std::string(name)];
    const double dur = end_s - begin_s;
    if (stat.count == 0) {
      stat.min = dur;
      stat.max = dur;
    } else {
      stat.min = std::min(stat.min, dur);
      stat.max = std::max(stat.max, dur);
    }
    ++stat.count;
    stat.total += dur;
  }
  record({begin_s, end_s - begin_s, EventKind::phase, kNoId, kNoId, 0,
          std::string(name)});
}

std::vector<TraceEvent> TraceRecorder::drain() const {
  struct Tagged {
    const TraceEvent* ev;
    std::size_t sink_index;
    std::size_t seq;
  };
  std::vector<Tagged> tagged;
  {
    std::lock_guard lock(registry_mutex_);
    for (std::size_t s = 0; s < sinks_.size(); ++s) {
      const Sink& sink = *sinks_[s];
      const std::size_t n = sink.count.load(std::memory_order_acquire);
      const std::size_t kept = std::min(n, ring_capacity_);
      // Oldest kept event first: the ring holds [n - kept, n).
      for (std::size_t i = 0; i < kept; ++i) {
        const std::size_t seq = n - kept + i;
        tagged.push_back({&sink.ring[seq % ring_capacity_], s, seq});
      }
    }
    std::stable_sort(tagged.begin(), tagged.end(),
                     [](const Tagged& a, const Tagged& b) {
                       if (a.ev->ts != b.ev->ts) return a.ev->ts < b.ev->ts;
                       if (a.sink_index != b.sink_index)
                         return a.sink_index < b.sink_index;
                       return a.seq < b.seq;
                     });
    std::vector<TraceEvent> out;
    out.reserve(tagged.size());
    for (const Tagged& t : tagged) out.push_back(*t.ev);
    return out;
  }
}

CounterSnapshot TraceRecorder::counters() const noexcept {
  CounterSnapshot s;
  s.events_recorded = counters_[kEventsRecorded].load(std::memory_order_relaxed);
  s.events_dropped = counters_[kEventsDropped].load(std::memory_order_relaxed);
  s.vms_rented = counters_[kVmsRented].load(std::memory_order_relaxed);
  s.vms_reused = counters_[kVmsReused].load(std::memory_order_relaxed);
  s.btu_extends = counters_[kBtuExtends].load(std::memory_order_relaxed);
  s.btus_added = counters_[kBtusAdded].load(std::memory_order_relaxed);
  s.tasks_placed = counters_[kTasksPlaced].load(std::memory_order_relaxed);
  s.sim_events = counters_[kSimEvents].load(std::memory_order_relaxed);
  s.transfers = counters_[kTransfers].load(std::memory_order_relaxed);
  s.upgrades_accepted =
      counters_[kUpgradesAccepted].load(std::memory_order_relaxed);
  s.upgrades_rejected =
      counters_[kUpgradesRejected].load(std::memory_order_relaxed);
  s.max_queue_depth = counters_[kMaxQueueDepth].load(std::memory_order_relaxed);
  return s;
}

std::map<std::string, PhaseStat> TraceRecorder::phase_stats() const {
  std::lock_guard lock(phase_mutex_);
  return phases_;
}

double TraceRecorder::elapsed() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - birth_)
      .count();
}

void set_global_recorder(TraceRecorder* recorder) noexcept {
  g_recorder.store(recorder, std::memory_order_release);
}

TraceRecorder* current_recorder() noexcept {
  if (tl_suppressed > 0) return nullptr;
  if (TraceRecorder* r = tl_recorder) return r;
  return g_recorder.load(std::memory_order_acquire);
}

ScopedRecording::ScopedRecording(TraceRecorder& recorder) noexcept
    : previous_(tl_recorder) {
  tl_recorder = &recorder;
}

ScopedRecording::~ScopedRecording() { tl_recorder = previous_; }

SuppressRecording::SuppressRecording() noexcept { ++tl_suppressed; }

SuppressRecording::~SuppressRecording() { --tl_suppressed; }

PhaseScope::PhaseScope(std::string_view name) noexcept
    : recorder_(current_recorder()) {
  if (recorder_ == nullptr) return;
  begin_ = recorder_->elapsed();
  name_ = name;
}

PhaseScope::~PhaseScope() {
  if (recorder_ == nullptr) return;
  recorder_->record_phase(name_, begin_, recorder_->elapsed());
}

}  // namespace cloudwf::obs
