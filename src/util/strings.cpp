#include "util/strings.hpp"

#include <cctype>
#include <sstream>

namespace cloudwf::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string format_double(double v, int max_decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(max_decimals);
  os << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

}  // namespace cloudwf::util
