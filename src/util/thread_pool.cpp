#include "util/thread_pool.hpp"

namespace cloudwf::util {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping and fully drained
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

}  // namespace cloudwf::util
