// Plain-text table and CSV writers used by the benches and reports.
//
// The figure/table benches print both a human-readable aligned table (what you
// read in the terminal) and, optionally, CSV/gnuplot-ready data (what you plot).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace cloudwf::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with column alignment and a header rule.
  [[nodiscard]] std::string render() const;

  /// Renders as RFC-4180-ish CSV (cells containing comma/quote/newline quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Renders as a GitHub-flavored markdown table (pipes in cells escaped).
  [[nodiscard]] std::string to_markdown() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

}  // namespace cloudwf::util
