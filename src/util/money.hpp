// Exact money arithmetic in integer micro-dollars.
//
// Billing in the paper is a sum of (price-per-BTU x integer BTU counts) plus
// (egress price x GB). Doing this in doubles invites one-ulp cost differences
// that flip strategy rankings; Money keeps every comparison exact.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace cloudwf::util {

class Money {
 public:
  constexpr Money() = default;

  /// Constructs from a whole number of micro-dollars.
  [[nodiscard]] static constexpr Money from_micros(std::int64_t micros) noexcept {
    Money m;
    m.micros_ = micros;
    return m;
  }

  /// Constructs from dollars, rounding half away from zero to micro-dollars.
  [[nodiscard]] static Money from_dollars(double dollars);

  [[nodiscard]] constexpr std::int64_t micros() const noexcept { return micros_; }
  [[nodiscard]] constexpr double dollars() const noexcept {
    return static_cast<double>(micros_) / 1e6;
  }

  /// "$1.234567" with trailing zeros trimmed to cents at minimum.
  [[nodiscard]] std::string to_string() const;

  constexpr Money& operator+=(Money o) noexcept {
    micros_ += o.micros_;
    return *this;
  }
  constexpr Money& operator-=(Money o) noexcept {
    micros_ -= o.micros_;
    return *this;
  }

  friend constexpr Money operator+(Money a, Money b) noexcept { return a += b; }
  friend constexpr Money operator-(Money a, Money b) noexcept { return a -= b; }
  friend constexpr Money operator-(Money a) noexcept { return from_micros(-a.micros_); }

  /// Scales by an integer count (e.g. number of BTUs).
  friend constexpr Money operator*(Money a, std::int64_t n) noexcept {
    return from_micros(a.micros_ * n);
  }
  friend constexpr Money operator*(std::int64_t n, Money a) noexcept { return a * n; }

  /// Scales by a real factor (e.g. GB transferred), rounding to micro-dollars.
  [[nodiscard]] Money scaled(double factor) const;

  friend constexpr auto operator<=>(Money, Money) noexcept = default;

 private:
  std::int64_t micros_ = 0;
};

std::ostream& operator<<(std::ostream& os, Money m);

}  // namespace cloudwf::util
