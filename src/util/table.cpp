#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cloudwf::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("TextTable: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(width[c] - cells[c].size(), ' ');
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << csv_escape(cells[c]) << (c + 1 == cells.size() ? "\n" : ",");
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::to_markdown() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (const std::string& cell : cells) {
      os << ' ';
      for (char ch : cell) {
        if (ch == '|') os << '\\';
        os << (ch == '\n' ? ' ' : ch);
      }
      os << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

}  // namespace cloudwf::util
