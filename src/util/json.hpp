// Minimal JSON value + serializer (no parsing): enough for the report
// writers to emit machine-readable results without an external dependency.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace cloudwf::util {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;  // sorted keys: stable output

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  /// Array append (the value must hold an array).
  void push_back(Json v);

  /// Object field set (the value must hold an object).
  Json& operator[](const std::string& key);

  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(value_);
  }

  /// Compact serialization (numbers via shortest round-trip-ish formatting,
  /// non-finite numbers emitted as null per JSON rules).
  [[nodiscard]] std::string dump() const;

  /// RFC 8259 string escaping (quotes, backslash, control characters).
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  void dump_to(std::string& out) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace cloudwf::util
