// Minimal JSON value, serializer and strict parser: enough for the report
// writers to emit machine-readable results and for the service front end to
// decode request payloads, without an external dependency.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace cloudwf::util {

/// Parse failure with the exact byte offset of the offending input. The
/// service layer turns these into 400 Bad Request bodies that point at the
/// problem instead of silently substituting defaults.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::size_t offset, const std::string& message)
      : std::runtime_error("JSON parse error at byte " +
                           std::to_string(offset) + ": " + message),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;  // sorted keys: stable output

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  /// Array append (the value must hold an array).
  void push_back(Json v);

  /// Object field set (the value must hold an object).
  Json& operator[](const std::string& key);

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(value_);
  }

  // Checked accessors: each throws std::logic_error on a type mismatch
  // (same contract as push_back / operator[] misuse).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup: nullptr when this value is not an object or the
  /// key is absent. Never throws — the request decoders branch on it.
  [[nodiscard]] const Json* find(const std::string& key) const noexcept;

  /// Strict RFC 8259 parse of the complete input: exactly one value, with
  /// only whitespace around it. Rejects trailing garbage, unterminated
  /// containers/strings, bad escapes, malformed numbers and inputs nested
  /// deeper than an internal limit. Throws JsonParseError carrying the byte
  /// offset of the first offending character.
  [[nodiscard]] static Json parse(std::string_view text);

  /// Compact serialization (numbers via shortest round-trip-ish formatting,
  /// non-finite numbers emitted as null per JSON rules).
  [[nodiscard]] std::string dump() const;

  /// RFC 8259 string escaping (quotes, backslash, control characters).
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  void dump_to(std::string& out) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace cloudwf::util
