#include "util/money.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace cloudwf::util {

Money Money::from_dollars(double dollars) {
  return from_micros(static_cast<std::int64_t>(std::llround(dollars * 1e6)));
}

Money Money::scaled(double factor) const {
  return from_micros(
      static_cast<std::int64_t>(std::llround(static_cast<double>(micros_) * factor)));
}

std::string Money::to_string() const {
  const bool neg = micros_ < 0;
  std::int64_t abs = neg ? -micros_ : micros_;
  const std::int64_t whole = abs / 1'000'000;
  std::int64_t frac = abs % 1'000'000;
  // Trim trailing zeros but keep at least cents.
  int digits = 6;
  while (digits > 2 && frac % 10 == 0) {
    frac /= 10;
    --digits;
  }
  std::ostringstream os;
  os << (neg ? "-$" : "$") << whole << '.';
  std::string f = std::to_string(frac);
  os << std::string(static_cast<std::size_t>(digits) - f.size(), '0') << f;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, Money m) { return os << m.to_string(); }

}  // namespace cloudwf::util
