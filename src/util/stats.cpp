#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cloudwf::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();

  double sum = 0;
  for (double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(s.count);

  double sq = 0;
  for (double x : sorted) sq += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));

  const std::size_t mid = s.count / 2;
  s.median = (s.count % 2 == 1) ? sorted[mid] : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0 || p > 100) throw std::invalid_argument("percentile: p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double coefficient_of_variation(std::span<const double> xs) {
  const Summary s = summarize(xs);
  if (s.count == 0 || s.mean == 0) return 0;
  return s.stddev / s.mean;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs, std::size_t points) {
  if (xs.empty()) throw std::invalid_argument("empirical_cdf: empty input");
  if (points < 2) throw std::invalid_argument("empirical_cdf: points < 2");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());

  std::vector<CdfPoint> cdf;
  cdf.reserve(points);
  const double lo = sorted.front();
  const double hi = sorted.back();
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < points; ++i) {
    const double v =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    const auto below =
        std::upper_bound(sorted.begin(), sorted.end(), v) - sorted.begin();
    cdf.push_back({v, static_cast<double>(below) / n});
  }
  return cdf;
}

}  // namespace cloudwf::util
