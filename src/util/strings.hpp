// String helpers shared by the DAG text formats and the report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cloudwf::util {

/// Splits on a single-character delimiter; adjacent delimiters yield empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Joins with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Case-sensitive prefix test (std::string_view::starts_with spelled out for clarity
/// at call sites that take plain strings).
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Formats a double with fixed precision, trimming trailing zeros ("12.5", "3").
[[nodiscard]] std::string format_double(double v, int max_decimals = 3);

}  // namespace cloudwf::util
