// Deterministic random number generation.
//
// Every stochastic component in cloudwf draws from an explicitly seeded Rng;
// there is no global RNG state, so any experiment is reproducible from its
// seed alone. The generator is xoshiro256** seeded via SplitMix64, both
// public-domain algorithms by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>

namespace cloudwf::util {

/// SplitMix64 step; used for seeding and as a cheap hash/stream-splitter.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x1db2013u) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to kill bias.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Derives an independent child generator (for parallel streams).
  [[nodiscard]] Rng split() noexcept { return Rng((*this)() ^ 0x5851f42d4c957f2dULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cloudwf::util
