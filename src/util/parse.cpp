#include "util/parse.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string>

namespace cloudwf::util {

namespace {
[[noreturn]] void fail(std::string_view flag, std::string_view text,
                       const std::string& expected) {
  throw std::invalid_argument(std::string(flag) + " expects " + expected +
                              ", got '" + std::string(text) + "'");
}
}  // namespace

std::uint64_t parse_u64(std::string_view text, std::string_view flag,
                        std::uint64_t min, std::uint64_t max) {
  const bool open_max = max == std::numeric_limits<std::uint64_t>::max();
  const std::string range =
      min == 0 && open_max ? "an unsigned integer"
      : open_max           ? "an integer >= " + std::to_string(min)
                           : "an integer in [" + std::to_string(min) + ", " +
                                 std::to_string(max) + "]";
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty())
    fail(flag, text, range);
  if (value < min || value > max) fail(flag, text, range);
  return value;
}

std::size_t parse_size(std::string_view text, std::string_view flag,
                       std::size_t min, std::size_t max) {
  return static_cast<std::size_t>(parse_u64(text, flag, min, max));
}

std::uint16_t parse_u16(std::string_view text, std::string_view flag,
                        std::uint16_t min, std::uint16_t max) {
  return static_cast<std::uint16_t>(parse_u64(text, flag, min, max));
}

double parse_double(std::string_view text, std::string_view flag, double min,
                    double max) {
  const bool open_min = min == std::numeric_limits<double>::lowest();
  const bool open_max = max == std::numeric_limits<double>::max();
  const std::string range =
      open_min && open_max ? "a number"
      : open_max           ? "a number >= " + std::to_string(min)
                           : "a number in [" + std::to_string(min) + ", " +
                                 std::to_string(max) + "]";
  double value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty())
    fail(flag, text, range);
  if (!std::isfinite(value) || value < min || value > max)
    fail(flag, text, range);
  return value;
}

}  // namespace cloudwf::util
