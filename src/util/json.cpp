#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cloudwf::util {

void Json::push_back(Json v) {
  if (!is_array()) throw std::logic_error("Json::push_back on non-array");
  std::get<Array>(value_).push_back(std::move(v));
}

Json& Json::operator[](const std::string& key) {
  if (!is_object()) throw std::logic_error("Json::operator[] on non-object");
  return std::get<Object>(value_)[key];
}

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char raw : s) {
    const auto ch = static_cast<unsigned char>(raw);
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const double* d = std::get_if<double>(&value_)) {
    if (!std::isfinite(*d)) {
      out += "null";  // JSON has no NaN/Inf
    } else if (*d == static_cast<double>(static_cast<std::int64_t>(*d)) &&
               std::abs(*d) < 9.0e15) {
      out += std::to_string(static_cast<std::int64_t>(*d));
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.12g", *d);
      out += buf;
    }
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    out += '"';
    out += escape(*s);
    out += '"';
  } else if (const Array* a = std::get_if<Array>(&value_)) {
    out += '[';
    for (std::size_t i = 0; i < a->size(); ++i) {
      if (i != 0) out += ',';
      (*a)[i].dump_to(out);
    }
    out += ']';
  } else if (const Object* o = std::get_if<Object>(&value_)) {
    out += '{';
    bool first = true;
    for (const auto& [key, value] : *o) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += escape(key);
      out += "\":";
      value.dump_to(out);
    }
    out += '}';
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace cloudwf::util
