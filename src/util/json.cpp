#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cloudwf::util {

void Json::push_back(Json v) {
  if (!is_array()) throw std::logic_error("Json::push_back on non-array");
  std::get<Array>(value_).push_back(std::move(v));
}

Json& Json::operator[](const std::string& key) {
  if (!is_object()) throw std::logic_error("Json::operator[] on non-object");
  return std::get<Object>(value_)[key];
}

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  throw std::logic_error("Json::as_bool on non-bool");
}

double Json::as_number() const {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  throw std::logic_error("Json::as_number on non-number");
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  throw std::logic_error("Json::as_string on non-string");
}

const Json::Array& Json::as_array() const {
  if (const Array* a = std::get_if<Array>(&value_)) return *a;
  throw std::logic_error("Json::as_array on non-array");
}

const Json::Object& Json::as_object() const {
  if (const Object* o = std::get_if<Object>(&value_)) return *o;
  throw std::logic_error("Json::as_object on non-object");
}

const Json* Json::find(const std::string& key) const noexcept {
  const Object* o = std::get_if<Object>(&value_);
  if (!o) return nullptr;
  const auto it = o->find(key);
  return it == o->end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent parser over a string_view, tracking the byte offset of
/// every failure. Depth-limited so adversarial payloads cannot blow the
/// stack (the service front end feeds it network input).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    skip_ws();
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size())
      fail("trailing characters after JSON value");
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(pos_, message);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_ws() noexcept {
    while (!eof()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      fail("invalid literal (expected '" + std::string(word) + "')");
    pos_ += word.size();
  }

  Json parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 128 levels");
    if (eof()) fail("unexpected end of input (expected a value)");
    switch (peek()) {
      case 'n':
        expect_literal("null");
        return Json(nullptr);
      case 't':
        expect_literal("true");
        return Json(true);
      case 'f':
        expect_literal("false");
        return Json(false);
      case '"':
        return Json(parse_string());
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  Json parse_array(std::size_t depth) {
    ++pos_;  // consume '['
    Json::Array out;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Json(std::move(out));
    }
    for (;;) {
      skip_ws();
      out.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array (expected ',' or ']')");
      const char c = text_[pos_];
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(out));
      }
      fail("expected ',' or ']' in array");
    }
  }

  Json parse_object(std::size_t depth) {
    ++pos_;  // consume '{'
    Json::Object out;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Json(std::move(out));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected string object key");
      std::string key = parse_string();
      skip_ws();
      if (eof() || peek() != ':') fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      out[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      if (eof()) fail("unterminated object (expected ',' or '}')");
      const char c = text_[pos_];
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(out));
      }
      fail("expected ',' or '}' in object");
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_];
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail("invalid hex digit in \\u escape");
      ++pos_;
    }
    return value;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    ++pos_;  // consume opening quote
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // consume backslash
      if (eof()) fail("truncated escape sequence");
      const char esc = text_[pos_];
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("high surrogate not followed by low surrogate");
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF)
              fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unexpected low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_digits = digits();
    if (int_digits == 0) {
      pos_ = start;
      fail("invalid character (expected a JSON value)");
    }
    // Reject leading zeros ("007"): strict RFC 8259 numbers.
    if (int_digits > 1) {
      std::size_t first = start;
      if (text_[first] == '-') ++first;
      if (text_[first] == '0') {
        pos_ = first;
        fail("leading zero in number");
      }
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (digits() == 0) fail("expected digits after decimal point");
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (digits() == 0) fail("expected digits in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    // strtod saturates "1e999" to +-inf, which has no JSON representation —
    // storing it would make dump() emit null and silently change the value.
    // Report it at the number's first byte instead. (Underflow to 0.0 or a
    // denormal is fine: the result is still a faithful nearest double.)
    if (!std::isfinite(value)) {
      pos_ = start;
      fail("number overflows double range");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).run(); }

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char raw : s) {
    const auto ch = static_cast<unsigned char>(raw);
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const double* d = std::get_if<double>(&value_)) {
    if (!std::isfinite(*d)) {
      out += "null";  // JSON has no NaN/Inf
    } else if (*d == static_cast<double>(static_cast<std::int64_t>(*d)) &&
               std::abs(*d) < 9.0e15 && !(*d == 0.0 && std::signbit(*d))) {
      // Negative zero is excluded: int64(-0.0) == 0 would print "0" and the
      // sign bit would not survive a round-trip. %g prints "-0" below.
      out += std::to_string(static_cast<std::int64_t>(*d));
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.12g", *d);
      out += buf;
    }
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    out += '"';
    out += escape(*s);
    out += '"';
  } else if (const Array* a = std::get_if<Array>(&value_)) {
    out += '[';
    for (std::size_t i = 0; i < a->size(); ++i) {
      if (i != 0) out += ',';
      (*a)[i].dump_to(out);
    }
    out += ']';
  } else if (const Object* o = std::get_if<Object>(&value_)) {
    out += '{';
    bool first = true;
    for (const auto& [key, value] : *o) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += escape(key);
      out += "\":";
      value.dump_to(out);
    }
    out += '}';
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace cloudwf::util
