// Small descriptive-statistics toolkit used by the workload generators and
// the experiment reports (CDFs, spreads, heterogeneity measures).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cloudwf::util {

struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;  ///< population standard deviation
  double median = 0;
};

/// Computes a five-number-ish summary. Empty input yields a zeroed Summary.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// p-th percentile (p in [0,100]) by linear interpolation on the sorted data.
/// Requires a non-empty input.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Coefficient of variation (stddev/mean); 0 for empty input or zero mean.
/// The paper's "heterogeneity of the execution times" is measured with this.
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0;
  double cumulative_probability = 0;
};

/// Empirical CDF evaluated at `points` equally spaced values spanning
/// [min, max] of the data. Requires non-empty input and points >= 2.
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::span<const double> xs,
                                                  std::size_t points);

}  // namespace cloudwf::util
