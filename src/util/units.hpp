// Unit conventions used across cloudwf.
//
// All durations are in seconds (double), all data sizes in gigabytes (double),
// all bandwidths in gigabits per second (double). Money is the only quantity
// with a dedicated type (util::Money, integer micro-dollars) because billing
// arithmetic must be exact.
#pragma once

namespace cloudwf::util {

/// Duration in seconds.
using Seconds = double;

/// Data size in gigabytes (10^9 bytes, matching EC2 egress billing).
using Gigabytes = double;

/// Bandwidth in gigabits per second.
using GbitPerSec = double;

/// One Billing Time Unit, the paper's (and EC2 2012's) hourly quantum.
inline constexpr Seconds kBtu = 3600.0;

/// Comparison slack for schedule times. Schedules are built from sums of
/// task runtimes and transfer times; 1 microsecond absorbs double rounding
/// while remaining far below any meaningful duration in the model.
inline constexpr Seconds kTimeEpsilon = 1e-6;

/// Returns true when |a - b| is within the schedule-time slack.
[[nodiscard]] constexpr bool time_eq(Seconds a, Seconds b) noexcept {
  const Seconds d = a - b;
  return (d < 0 ? -d : d) <= kTimeEpsilon;
}

/// Returns true when a is strictly greater than b beyond the slack.
[[nodiscard]] constexpr bool time_gt(Seconds a, Seconds b) noexcept {
  return a - b > kTimeEpsilon;
}

/// Returns true when a <= b within the slack.
[[nodiscard]] constexpr bool time_le(Seconds a, Seconds b) noexcept {
  return !time_gt(a, b);
}

}  // namespace cloudwf::util
