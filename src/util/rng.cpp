#include "util/rng.hpp"

namespace cloudwf::util {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire-style rejection: accept only draws from the largest multiple of n.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

}  // namespace cloudwf::util
