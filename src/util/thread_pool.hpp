// Fixed-size worker thread pool with future-based job submission.
//
// Jobs are queued FIFO and executed by a fixed set of workers; submit()
// returns a std::future that carries the job's result or its exception
// (std::packaged_task semantics), so errors inside workers propagate to
// whoever joins the future. A pool constructed with zero workers runs every
// job inline on the submitting thread — the degenerate case keeps callers
// free of "is it parallel?" branches. Destruction drains the queue: every
// job submitted before ~ThreadPool runs to completion, so no future is ever
// abandoned with a broken promise.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace cloudwf::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues `f` and returns the future for its result. If the pool has no
  /// workers the job runs inline, on the calling thread, before returning.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F&>> submit(F f) {
    using R = std::invoke_result_t<F&>;
    // shared_ptr because std::function requires copyable callables and
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> result = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return result;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      jobs_.emplace([task] { (*task)(); });
    }
    ready_.notify_one();
    return result;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
};

}  // namespace cloudwf::util
