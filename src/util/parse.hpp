// Strict numeric parsing for command-line flags.
//
// std::stoul and friends accept junk ("12abc" parses as 12, "  7" skips the
// whitespace), silently wrap out-of-range values through exceptions whose
// messages name the C++ function instead of the flag the user typed, and
// terminate the process when no handler is installed. Every numeric flag in
// the tools goes through these helpers instead: the full string must be
// consumed, the value must fit the requested range, and a failure throws
// std::invalid_argument whose message names the offending flag — the tools'
// top-level handler turns that into exit code 1 with a readable error.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace cloudwf::util {

/// Parses `text` as an unsigned integer in [min, max]. Throws
/// std::invalid_argument naming `flag` when `text` is not a number, has
/// trailing junk, or is out of range.
[[nodiscard]] std::uint64_t parse_u64(
    std::string_view text, std::string_view flag, std::uint64_t min = 0,
    std::uint64_t max = std::numeric_limits<std::uint64_t>::max());

/// parse_u64 narrowed to std::size_t.
[[nodiscard]] std::size_t parse_size(
    std::string_view text, std::string_view flag, std::size_t min = 0,
    std::size_t max = std::numeric_limits<std::size_t>::max());

/// parse_u64 narrowed to a TCP port (1-65535 by default; pass min = 0 to
/// allow the "ephemeral pick" port).
[[nodiscard]] std::uint16_t parse_u16(std::string_view text,
                                      std::string_view flag,
                                      std::uint16_t min = 0,
                                      std::uint16_t max = 65535);

/// Parses `text` as a finite double in [min, max]; same strictness.
[[nodiscard]] double parse_double(
    std::string_view text, std::string_view flag,
    double min = std::numeric_limits<double>::lowest(),
    double max = std::numeric_limits<double>::max());

}  // namespace cloudwf::util
