// The pull-mode worker loop behind `cloudwf worker`.
//
// A worker connects to a CoordinatorServer, leases shards
// (POST /v1/shard/lease), executes them with exp::run_shard — the exact
// serial code path, so every row it streams back is bit-identical to the
// coordinator running the cell itself — and reports rows as binary
// shard_response frames (POST /v1/shard/result). 503 means back off and
// retry; 204 means the sweep is finished and the worker exits.
//
// Fault-injection knobs for the failure/straggler tests and the CI smoke:
// `delay_per_shard` sleeps before reporting (a straggler the coordinator
// must speculate around) and `max_shards` exits the loop mid-sweep (a
// killed worker whose lease must expire and be re-issued).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "cloud/platform.hpp"

namespace cloudwf::dist {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::chrono::milliseconds poll_interval{50};  ///< back-off after a 503
  std::chrono::milliseconds delay_per_shard{0};  ///< straggler injection
  std::size_t max_shards = static_cast<std::size_t>(-1);  ///< exit after N
  std::size_t connect_retries = 40;  ///< coordinator-not-up-yet grace
};

struct WorkerReport {
  std::size_t shards_completed = 0;  ///< results the coordinator accepted
  std::size_t shards_duplicate = 0;  ///< results it discarded (lost a race)
  std::size_t shards_failed = 0;     ///< local execution errors (lease lost)
  bool finished = false;  ///< saw the coordinator's 204 (sweep complete)
};

/// Runs the pull loop until the coordinator reports the sweep done, the
/// shard budget is exhausted, or the coordinator becomes unreachable.
[[nodiscard]] WorkerReport run_worker(
    const WorkerOptions& options,
    const cloud::Platform& platform = cloud::Platform::ec2());

}  // namespace cloudwf::dist
