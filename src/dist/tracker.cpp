#include "dist/tracker.hpp"

#include <stdexcept>

namespace cloudwf::dist {

ShardTracker::ShardTracker(std::vector<exp::ShardSpec> shards,
                           TrackerConfig config)
    : config_(config), shards_(std::move(shards)) {
  if (shards_.empty())
    throw std::invalid_argument("ShardTracker needs at least one shard");
  if (config_.max_attempts == 0)
    throw std::invalid_argument("ShardTracker needs max_attempts >= 1");
  entries_.resize(shards_.size());
}

void ShardTracker::refresh_locked(std::chrono::steady_clock::time_point now) {
  for (Entry& entry : entries_) {
    if (entry.state != State::leased) continue;
    if (entry.live_leases > 0 && now >= entry.deadline) entry.live_leases = 0;
    if (entry.live_leases == 0 && entry.attempts >= config_.max_attempts)
      dead_ = true;
  }
}

Acquired ShardTracker::acquire_locked(
    std::chrono::steady_clock::time_point now) {
  Acquired result;
  if (done_count_ == entries_.size() || dead_) {
    result.status = AcquireStatus::done;
    return result;
  }

  const auto grant = [&](std::size_t i) {
    Entry& entry = entries_[i];
    entry.state = State::leased;
    entry.attempts += 1;
    entry.live_leases += 1;
    if (entry.live_leases == 1) entry.oldest_lease = now;
    const auto deadline = now + config_.lease_timeout;
    if (entry.live_leases == 1 || deadline > entry.deadline)
      entry.deadline = deadline;
    stats_.leases_granted += 1;
    result.status = AcquireStatus::granted;
    result.shard = shards_[i];
  };

  // 1. Oldest pending shard.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (entry.state == State::pending && entry.attempts < config_.max_attempts) {
      grant(i);
      return result;
    }
  }
  // 2. A shard whose every lease expired (lost worker).
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (entry.state == State::leased && entry.live_leases == 0 &&
        entry.attempts < config_.max_attempts) {
      grant(i);
      stats_.reissues_expired += 1;
      return result;
    }
  }
  // 3. Speculation: double-run the longest-outstanding single lease once it
  // has consumed at least half its lease window (a straggler, not a shard
  // that was just handed out).
  if (config_.speculative) {
    std::size_t best = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& entry = entries_[i];
      if (entry.state != State::leased || entry.live_leases != 1 ||
          entry.attempts >= config_.max_attempts)
        continue;
      if (now - entry.oldest_lease < config_.lease_timeout / 2) continue;
      if (best == entries_.size() ||
          entry.oldest_lease < entries_[best].oldest_lease)
        best = i;
    }
    if (best != entries_.size()) {
      grant(best);
      stats_.reissues_speculative += 1;
      return result;
    }
  }
  result.status = AcquireStatus::wait;
  return result;
}

Acquired ShardTracker::acquire() {
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);
  refresh_locked(now);
  return acquire_locked(now);
}

Acquired ShardTracker::acquire_blocking() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    refresh_locked(now);
    Acquired result = acquire_locked(now);
    if (result.status != AcquireStatus::wait) return result;
    // Lease expiries and speculation windows are time-driven, not
    // event-driven — poll on a short clock alongside the cv.
    changed_.wait_for(lock, std::chrono::milliseconds(20));
  }
}

bool ShardTracker::complete(std::uint64_t shard_id,
                            std::vector<exp::SweepRow> rows) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (shard_id >= entries_.size()) return false;
  Entry& entry = entries_[shard_id];
  if (entry.state == State::done) {
    stats_.duplicates_discarded += 1;
    return false;
  }
  entry.state = State::done;
  entry.live_leases = 0;
  entry.rows = std::move(rows);
  done_count_ += 1;
  stats_.completions += 1;
  changed_.notify_all();
  return true;
}

void ShardTracker::fail(std::uint64_t shard_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (shard_id >= entries_.size()) return;
  Entry& entry = entries_[shard_id];
  if (entry.state == State::done) return;
  stats_.failures_reported += 1;
  if (entry.live_leases > 0) entry.live_leases -= 1;
  if (entry.live_leases == 0) {
    if (entry.attempts >= config_.max_attempts)
      dead_ = true;
    else
      entry.state = State::pending;
  }
  changed_.notify_all();
}

bool ShardTracker::all_done() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_count_ == entries_.size();
}

bool ShardTracker::dead() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dead_;
}

void ShardTracker::wait_finished() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    refresh_locked(now);
    if (done_count_ == entries_.size() || dead_) return;
    changed_.wait_for(lock, std::chrono::milliseconds(20));
  }
}

std::vector<std::vector<exp::SweepRow>> ShardTracker::results() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (done_count_ != entries_.size())
    throw std::logic_error("ShardTracker::results before all shards done");
  std::vector<std::vector<exp::SweepRow>> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.rows);
  return out;
}

TrackerStats ShardTracker::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace cloudwf::dist
