// The coordinator side of the distributed sweep fabric.
//
// Two driving modes, one tracker:
//
//   Push — run_distributed() partitions the grid, then one coordinator
//   thread per worker leases shards from a ShardTracker and executes them
//   through a ShardTransport (HttpShardTransport POSTs /v1/shard to a
//   `cloudwf serve` instance; tests inject failing/slow fakes). A transport
//   failure fails the lease and the shard is re-issued to another worker.
//
//   Pull — CoordinatorServer listens on loopback and lets `cloudwf worker`
//   processes drive themselves: POST /v1/shard/lease hands out a spec
//   (204 once the sweep is finished, 503 when the worker should back off
//   and retry), POST /v1/shard/result reports rows (binary shard_response
//   frame or the JSON shard body). Lost workers are simply leases that
//   expire.
//
// Either way the merged result is exp::merge_shards over the tracker's
// rows — canonical grid order, certified bit-identical to the serial sweep
// by the differential tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cloud/platform.hpp"
#include "dist/tracker.hpp"
#include "exp/sweep_grid.hpp"
#include "svc/http.hpp"

namespace cloudwf::dist {

/// How a coordinator executes one shard on one worker. Implementations
/// block until the shard finishes; nullopt means the worker is lost or the
/// response was unusable (the caller fails the lease).
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;
  [[nodiscard]] virtual std::optional<std::vector<exp::SweepRow>> execute(
      const exp::ShardSpec& shard) = 0;
};

/// Push-mode transport: POST /v1/shard against a `cloudwf serve` instance.
class HttpShardTransport : public ShardTransport {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    bool binary = true;       ///< binproto frames; false = JSON bodies
    std::string auth_token;   ///< sent as X-Auth-Token when non-empty
  };

  explicit HttpShardTransport(Options options) : options_(std::move(options)) {}

  [[nodiscard]] std::optional<std::vector<exp::SweepRow>> execute(
      const exp::ShardSpec& shard) override;

 private:
  Options options_;
  svc::HttpClient client_;
};

struct CoordinatorOptions {
  /// Shards per worker: more shards than workers keeps everyone busy when
  /// shard runtimes vary, and bounds the work lost to a failure.
  std::size_t shards_per_worker = 4;
  TrackerConfig tracker;
};

/// A finished sweep: merged rows in canonical grid order plus the fabric's
/// bookkeeping (re-issues, duplicates, ...).
struct SweepOutcome {
  std::vector<exp::SweepRow> rows;
  TrackerStats stats;
  std::size_t shard_count = 0;
};

/// Push mode end to end: partition, drive every transport until the grid
/// completes, merge. Throws std::runtime_error when a shard exhausts its
/// attempts (every worker that tried it died).
[[nodiscard]] SweepOutcome run_distributed(
    const exp::SweepGridSpec& grid,
    const std::vector<std::shared_ptr<ShardTransport>>& workers,
    const CoordinatorOptions& options = {});

/// Pull-mode coordinator: a minimal blocking HTTP listener over the same
/// tracker. Binds loopback only (workers on other machines connect to a
/// `cloudwf serve` fleet in push mode instead — that path has the auth
/// token).
class CoordinatorServer {
 public:
  struct Config {
    std::uint16_t port = 0;  ///< 0 = ephemeral; see port()
    TrackerConfig tracker;
  };

  CoordinatorServer(std::vector<exp::ShardSpec> shards, Config config);
  ~CoordinatorServer();

  CoordinatorServer(const CoordinatorServer&) = delete;
  CoordinatorServer& operator=(const CoordinatorServer&) = delete;

  void start();
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks until every shard completed (or the sweep died), stops the
  /// listener and returns the merged sweep. Throws std::runtime_error on a
  /// dead sweep.
  [[nodiscard]] SweepOutcome finish();

  void stop();

  [[nodiscard]] const ShardTracker& tracker() const noexcept {
    return tracker_;
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  [[nodiscard]] svc::HttpResponse handle(const svc::HttpRequest& request);

  std::vector<exp::ShardSpec> shards_;
  ShardTracker tracker_;
  Config config_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::thread acceptor_;
  std::mutex conns_mutex_;
  std::vector<std::thread> conns_;
};

}  // namespace cloudwf::dist
