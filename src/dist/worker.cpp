#include "dist/worker.hpp"

#include <thread>
#include <variant>
#include <vector>

#include "exp/sweep_grid.hpp"
#include "svc/binproto.hpp"
#include "svc/http.hpp"
#include "svc/protocol.hpp"
#include "util/json.hpp"

namespace cloudwf::dist {

WorkerReport run_worker(const WorkerOptions& options,
                        const cloud::Platform& platform) {
  WorkerReport report;
  svc::HttpClient client;

  // The coordinator may come up after the worker (CI starts both at once) —
  // retry the first connect on a short clock before giving up.
  std::size_t connect_attempts = 0;
  while (!client.connect(options.host, options.port)) {
    if (++connect_attempts > options.connect_retries) return report;
    std::this_thread::sleep_for(options.poll_interval);
  }

  while (report.shards_completed < options.max_shards) {
    const std::optional<svc::HttpResponse> lease =
        client.request("POST", "/v1/shard/lease");
    if (!lease) return report;  // coordinator gone
    if (lease->status == 204) {
      report.finished = true;
      return report;
    }
    if (lease->status == 503) {
      std::this_thread::sleep_for(options.poll_interval);
      continue;
    }
    if (lease->status != 200) return report;

    exp::ShardSpec shard;
    std::vector<exp::SweepRow> rows;
    try {
      shard = svc::decode_shard(util::Json::parse(lease->body));
      svc::validate_shard(shard);
      rows = exp::run_shard(shard, platform);
    } catch (const std::exception&) {
      // Unusable spec or a local execution error: drop the lease (the
      // coordinator re-issues it after the timeout) and keep serving.
      report.shards_failed += 1;
      continue;
    }

    if (options.delay_per_shard.count() > 0)
      std::this_thread::sleep_for(options.delay_per_shard);

    svc::BinShardResponse result;
    result.shard_id = shard.shard_id;
    result.rows.reserve(rows.size());
    for (const exp::SweepRow& row : rows)
      result.rows.push_back(svc::bin_sweep_row(row));
    const std::optional<svc::HttpResponse> posted =
        client.request("POST", "/v1/shard/result",
                       svc::encode_frame(std::move(result)), {},
                       svc::kBinaryContentType);
    if (!posted) return report;
    if (posted->status != 200) {
      report.shards_failed += 1;
      continue;
    }
    try {
      const util::Json body = util::Json::parse(posted->body);
      const util::Json* accepted = body.find("accepted");
      if (accepted != nullptr && accepted->is_bool() && accepted->as_bool())
        report.shards_completed += 1;
      else
        report.shards_duplicate += 1;
    } catch (const std::exception&) {
      report.shards_failed += 1;
    }
  }
  return report;
}

}  // namespace cloudwf::dist
