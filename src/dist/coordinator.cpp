#include "dist/coordinator.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <variant>

#include "svc/binproto.hpp"
#include "svc/protocol.hpp"
#include "util/json.hpp"

namespace cloudwf::dist {

std::optional<std::vector<exp::SweepRow>> HttpShardTransport::execute(
    const exp::ShardSpec& shard) {
  if (!client_.connected() &&
      !client_.connect(options_.host, options_.port))
    return std::nullopt;

  std::vector<std::pair<std::string, std::string>> headers;
  if (!options_.auth_token.empty())
    headers.emplace_back("X-Auth-Token", options_.auth_token);

  std::optional<svc::HttpResponse> response;
  if (options_.binary) {
    response = client_.request("POST", "/v1/shard",
                               svc::encode_frame(shard), headers,
                               svc::kBinaryContentType);
  } else {
    response = client_.request("POST", "/v1/shard",
                               svc::shard_request_body(shard), headers);
  }
  if (!response || response->status != 200) return std::nullopt;

  try {
    if (options_.binary) {
      const svc::BinFrame frame = svc::decode_frame(response->body);
      const auto* decoded = std::get_if<svc::BinShardResponse>(&frame);
      if (decoded == nullptr || decoded->shard_id != shard.shard_id)
        return std::nullopt;
      std::vector<exp::SweepRow> rows;
      rows.reserve(decoded->rows.size());
      for (const svc::BinResultRow& row : decoded->rows)
        rows.push_back(svc::sweep_row_of(row));
      return rows;
    }
    const svc::ShardResult result =
        svc::decode_shard_result(util::Json::parse(response->body));
    if (result.shard_id != shard.shard_id) return std::nullopt;
    return result.rows;
  } catch (const std::exception&) {
    return std::nullopt;  // undecodable answer == lost worker
  }
}

SweepOutcome run_distributed(
    const exp::SweepGridSpec& grid,
    const std::vector<std::shared_ptr<ShardTransport>>& workers,
    const CoordinatorOptions& options) {
  if (workers.empty())
    throw std::invalid_argument("run_distributed needs at least one worker");
  const std::size_t shard_count = std::max<std::size_t>(
      1, workers.size() * std::max<std::size_t>(1, options.shards_per_worker));
  std::vector<exp::ShardSpec> shards = exp::partition_grid(grid, shard_count);
  ShardTracker tracker(shards, options.tracker);

  // One driver thread per worker: lease, execute, report, repeat. A failed
  // execute fails the lease so the tracker re-issues immediately instead of
  // waiting out the lease clock.
  std::vector<std::thread> drivers;
  drivers.reserve(workers.size());
  for (const std::shared_ptr<ShardTransport>& worker : workers) {
    drivers.emplace_back([&tracker, worker] {
      for (;;) {
        const Acquired lease = tracker.acquire_blocking();
        if (lease.status == AcquireStatus::done) return;
        std::optional<std::vector<exp::SweepRow>> rows =
            worker->execute(lease.shard);
        if (rows)
          tracker.complete(lease.shard.shard_id, std::move(*rows));
        else
          tracker.fail(lease.shard.shard_id);
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();

  if (tracker.dead())
    throw std::runtime_error(
        "distributed sweep failed: a shard exhausted its attempts (every "
        "worker that tried it was lost)");

  SweepOutcome outcome;
  outcome.rows = exp::merge_shards(shards, tracker.results());
  outcome.stats = tracker.stats();
  outcome.shard_count = shards.size();
  return outcome;
}

// --- pull-mode coordinator ---------------------------------------------

CoordinatorServer::CoordinatorServer(std::vector<exp::ShardSpec> shards,
                                     Config config)
    : shards_(std::move(shards)),
      tracker_(shards_, config.tracker),
      config_(config) {}

CoordinatorServer::~CoordinatorServer() { stop(); }

void CoordinatorServer::start() {
  if (started_) throw std::logic_error("CoordinatorServer::start called twice");

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("coordinator bind/listen: " + err);
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void CoordinatorServer::accept_loop() {
  // Blocking accept; shutdown() on the listen fd from stop() wakes it with
  // an error. Workers are few (a fleet, not the public internet), so one
  // thread per connection is the simplest correct shape.
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void CoordinatorServer::serve_connection(int fd) {
  // Idle connections close after a short receive timeout instead of parking
  // this thread forever (stop() joins every connection thread; a silent
  // peer must not be able to wedge it). Workers reconnect transparently —
  // HttpClient retries once on a dropped keep-alive connection.
  timeval timeout{};
  timeout.tv_sec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  std::string carry;
  for (;;) {
    const svc::ReadResult read = svc::read_http_request(fd, carry);
    if (read.status != svc::ReadStatus::ok) break;
    svc::HttpResponse response = handle(read.request);
    response.close_connection =
        response.close_connection || !read.request.keep_alive();
    if (!svc::write_all(fd, svc::serialize_response(response))) break;
    if (response.close_connection) break;
  }
  ::close(fd);
}

svc::HttpResponse CoordinatorServer::handle(const svc::HttpRequest& request) {
  svc::HttpResponse response;

  if (request.target == "/v1/shard/lease") {
    if (request.method != "POST") {
      response.status = 405;
      response.body = svc::error_body("use POST for /v1/shard/lease");
      return response;
    }
    const Acquired lease = tracker_.acquire();
    switch (lease.status) {
      case AcquireStatus::granted:
        response.body = svc::shard_request_body(lease.shard);
        return response;
      case AcquireStatus::wait:
        response.status = 503;
        response.body = svc::error_body("no shard available — retry");
        return response;
      case AcquireStatus::done:
        response.status = 204;  // sweep finished: the worker may exit
        return response;
    }
  }

  if (request.target == "/v1/shard/result") {
    if (request.method != "POST") {
      response.status = 405;
      response.body = svc::error_body("use POST for /v1/shard/result");
      return response;
    }
    try {
      std::uint64_t shard_id = 0;
      std::vector<exp::SweepRow> rows;
      if (request.header("content-type") == svc::kBinaryContentType) {
        const svc::BinFrame frame = svc::decode_frame(request.body);
        const auto* decoded = std::get_if<svc::BinShardResponse>(&frame);
        if (decoded == nullptr)
          throw svc::BadRequest("expected a shard_response frame");
        shard_id = decoded->shard_id;
        rows.reserve(decoded->rows.size());
        for (const svc::BinResultRow& row : decoded->rows)
          rows.push_back(svc::sweep_row_of(row));
      } else {
        svc::ShardResult result =
            svc::decode_shard_result(util::Json::parse(request.body));
        shard_id = result.shard_id;
        rows = std::move(result.rows);
      }
      const bool accepted = tracker_.complete(shard_id, std::move(rows));
      util::Json body = util::Json::object();
      body["accepted"] = accepted;
      if (!accepted) body["reason"] = "duplicate or unknown shard";
      response.body = body.dump();
      return response;
    } catch (const std::exception& e) {
      response.status = 400;
      response.body = svc::error_body(e.what());
      return response;
    }
  }

  response.status = 404;
  response.body = svc::error_body("unknown endpoint '" + request.target +
                                  "' (/v1/shard/lease, /v1/shard/result)");
  return response;
}

SweepOutcome CoordinatorServer::finish() {
  tracker_.wait_finished();
  const bool was_dead = tracker_.dead();
  stop();
  if (was_dead)
    throw std::runtime_error(
        "distributed sweep failed: a shard exhausted its attempts");

  SweepOutcome outcome;
  outcome.rows = exp::merge_shards(shards_, tracker_.results());
  outcome.stats = tracker_.stats();
  outcome.shard_count = shards_.size();
  return outcome;
}

void CoordinatorServer::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> conns;
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (std::thread& conn : conns)
    if (conn.joinable()) conn.join();
}

}  // namespace cloudwf::dist
