// Shard lease bookkeeping for the distributed sweep fabric.
//
// A ShardTracker owns the fixed shard list a coordinator produced with
// exp::partition_grid and hands shards out under time-limited leases:
//
//   - acquire() grants the oldest pending shard, else re-issues a shard
//     whose lease expired, else (speculation) re-issues the
//     longest-outstanding live lease so a straggler cannot stall the tail
//     of the sweep.
//   - complete() is first-completion-wins: the first rows reported for a
//     shard id are stored, every later report is discarded as a duplicate
//     (re-issued shards race by design; both answers are bit-identical, so
//     dropping the loser is safe).
//   - fail() requeues a shard immediately when a transport reports a dead
//     worker, without waiting for the lease clock.
//
// Each grant consumes one of `max_attempts` attempts; a shard whose
// attempts are exhausted and whose leases have all expired marks the sweep
// dead (`dead()`) rather than looping forever on a poisoned shard.
//
// All methods are thread-safe; workers (threads or HTTP handlers) share
// one tracker.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "exp/sweep_grid.hpp"

namespace cloudwf::dist {

struct TrackerConfig {
  /// A lease older than this is considered lost and the shard re-issuable.
  std::chrono::milliseconds lease_timeout{30000};
  /// Total grants per shard (first lease + re-issues). Exhausting this
  /// without a completion marks the sweep dead.
  std::size_t max_attempts = 4;
  /// Re-issue the longest-outstanding live lease when nothing else is
  /// available (straggler speculation). At most one speculative copy runs
  /// per shard: only shards with a single live lease are eligible.
  bool speculative = true;
};

/// Monotonic counters, readable while the sweep runs.
struct TrackerStats {
  std::uint64_t leases_granted = 0;
  std::uint64_t reissues_expired = 0;      ///< grants after a lease timed out
  std::uint64_t reissues_speculative = 0;  ///< straggler double-runs
  std::uint64_t duplicates_discarded = 0;  ///< complete() after first winner
  std::uint64_t failures_reported = 0;     ///< fail() calls
  std::uint64_t completions = 0;           ///< first completions accepted
};

/// Outcome of one acquire() call.
enum class AcquireStatus : std::uint8_t {
  granted,  ///< `shard` holds the lease
  wait,     ///< nothing to hand out now, but the sweep is still running
  done,     ///< every shard completed — or the sweep is dead (check dead())
};

struct Acquired {
  AcquireStatus status = AcquireStatus::wait;
  exp::ShardSpec shard;  ///< valid when status == granted
};

class ShardTracker {
 public:
  explicit ShardTracker(std::vector<exp::ShardSpec> shards,
                        TrackerConfig config = {});

  /// Non-blocking grant (see the header comment for the preference order).
  [[nodiscard]] Acquired acquire();

  /// Blocks until a shard can be granted or the sweep finishes/dies.
  [[nodiscard]] Acquired acquire_blocking();

  /// Reports a shard's rows. Returns true when this call won (rows stored),
  /// false for a duplicate or unknown shard id (rows discarded).
  bool complete(std::uint64_t shard_id, std::vector<exp::SweepRow> rows);

  /// Requeues a shard after a transport failure. No-op once completed.
  void fail(std::uint64_t shard_id);

  /// True when every shard has accepted rows.
  [[nodiscard]] bool all_done() const;

  /// True when some shard exhausted max_attempts with every lease expired —
  /// the sweep cannot complete.
  [[nodiscard]] bool dead() const;

  /// Blocks until all_done() or dead().
  void wait_finished();

  [[nodiscard]] const std::vector<exp::ShardSpec>& shards() const noexcept {
    return shards_;
  }

  /// Per-shard rows in shard order. Throws std::logic_error unless
  /// all_done().
  [[nodiscard]] std::vector<std::vector<exp::SweepRow>> results() const;

  [[nodiscard]] TrackerStats stats() const;

 private:
  enum class State : std::uint8_t { pending, leased, done };
  struct Entry {
    State state = State::pending;
    std::size_t attempts = 0;     ///< grants so far
    std::size_t live_leases = 0;  ///< grants whose deadline has not passed
    std::chrono::steady_clock::time_point oldest_lease;  ///< earliest live
    std::chrono::steady_clock::time_point deadline;      ///< latest expiry
    std::vector<exp::SweepRow> rows;
  };

  [[nodiscard]] Acquired acquire_locked(
      std::chrono::steady_clock::time_point now);
  void refresh_locked(std::chrono::steady_clock::time_point now);

  const TrackerConfig config_;
  std::vector<exp::ShardSpec> shards_;

  mutable std::mutex mutex_;
  std::condition_variable changed_;
  std::vector<Entry> entries_;
  std::size_t done_count_ = 0;
  bool dead_ = false;
  TrackerStats stats_;
};

}  // namespace cloudwf::dist
