#include "tenant/billing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cloudwf::tenant {

BillingBreakdown attribute_billing(
    const cloud::VmPool& pool, std::span<const cloud::Region> regions,
    const TenantRegistry& registry,
    const std::function<TenantId(dag::TaskId)>& tenant_of) {
  if (registry.empty())
    throw std::invalid_argument("attribute_billing: empty tenant registry");

  BillingBreakdown out;
  out.bills.resize(registry.size());
  for (TenantId tid = 0; tid < registry.size(); ++tid)
    out.bills[tid].tenant = tid;

  std::vector<util::Seconds> busy_on_vm(registry.size(), 0.0);
  std::vector<TenantId> participants;  // sorted ascending, per VM
  for (const cloud::Vm& vm : pool.vms()) {
    if (vm.placements().empty()) continue;  // unused: zero cost, nothing owed

    participants.clear();
    for (const cloud::Placement& p : vm.placements()) {
      const TenantId tid = tenant_of(p.task);
      if (tid >= registry.size())
        throw std::invalid_argument(
            "attribute_billing: tenant_of returned an unregistered id");
      if (busy_on_vm[tid] == 0.0 &&
          std::find(participants.begin(), participants.end(), tid) ==
              participants.end())
        participants.push_back(tid);
      busy_on_vm[tid] += p.end - p.start;
    }
    std::sort(participants.begin(), participants.end());

    const cloud::Region& region = regions[vm.region()];
    const std::int64_t total_micros = vm.cost(region).micros();
    const util::Seconds idle = vm.idle_time();
    double weight_sum = 0.0;
    for (const TenantId tid : participants)
      weight_sum += registry.spec(tid).weight;

    double total_share = 0.0;
    for (const TenantId tid : participants)
      total_share +=
          busy_on_vm[tid] + idle * (registry.spec(tid).weight / weight_sum);

    // Telescoping cumulative split of the integer cost: monotone partial
    // sums, last participant pinned to the full amount, so the per-VM
    // bills sum exactly to the VM's cost by construction. Shares are
    // positive on any used VM; the equal-by-count fallback only covers the
    // degenerate all-zero-duration timeline.
    const std::size_t n = participants.size();
    double cum_share = 0.0;
    std::int64_t prev = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const TenantId tid = participants[k];
      const double idle_k = idle * (registry.spec(tid).weight / weight_sum);
      out.bills[tid].busy += busy_on_vm[tid];
      out.bills[tid].idle_share += idle_k;
      ++out.bills[tid].vms_touched;
      cum_share += busy_on_vm[tid] + idle_k;

      std::int64_t cum;
      if (k + 1 == n) {
        cum = total_micros;
      } else {
        const double fraction =
            total_share > 0.0
                ? cum_share / total_share
                : static_cast<double>(k + 1) / static_cast<double>(n);
        cum = std::clamp<std::int64_t>(
            std::llround(static_cast<double>(total_micros) * fraction), prev,
            total_micros);
      }
      out.bills[tid].cost =
          out.bills[tid].cost + util::Money::from_micros(cum - prev);
      prev = cum;
      busy_on_vm[tid] = 0.0;  // reset the scratch slot for the next VM
    }
  }

  for (const TenantBill& b : out.bills) out.total = out.total + b.cost;
  return out;
}

}  // namespace cloudwf::tenant
