#include "tenant/tenant.hpp"

#include <cmath>
#include <stdexcept>

namespace cloudwf::tenant {

std::optional<SharingPolicy> parse_policy(std::string_view name) noexcept {
  for (const SharingPolicy p : kAllSharingPolicies)
    if (name == name_of(p)) return p;
  return std::nullopt;
}

TenantId TenantRegistry::add(TenantSpec spec) {
  if (spec.name.empty())
    throw std::invalid_argument("TenantRegistry::add: empty tenant name");
  if (find(spec.name))
    throw std::invalid_argument("TenantRegistry::add: duplicate tenant name '" +
                                spec.name + "'");
  if (!(spec.weight > 0.0) || !std::isfinite(spec.weight))
    throw std::invalid_argument(
        "TenantRegistry::add: weight must be positive and finite");
  if (spec.max_running == 0)
    throw std::invalid_argument("TenantRegistry::add: zero quota");
  tenants_.push_back(std::move(spec));
  return static_cast<TenantId>(tenants_.size() - 1);
}

const TenantSpec& TenantRegistry::spec(TenantId id) const {
  if (id >= tenants_.size())
    throw std::out_of_range("TenantRegistry::spec: bad id");
  return tenants_[id];
}

std::optional<TenantId> TenantRegistry::find(std::string_view name) const {
  for (std::size_t i = 0; i < tenants_.size(); ++i)
    if (tenants_[i].name == name) return static_cast<TenantId>(i);
  return std::nullopt;
}

}  // namespace cloudwf::tenant
