#include "tenant/shared_pool.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "cloud/billing.hpp"
#include "dag/structure_cache.hpp"
#include "sim/online.hpp"

namespace cloudwf::tenant {

namespace {

struct Event {
  enum Kind : std::uint8_t { ready = 0, completion = 1 };
  util::Seconds time = 0;
  std::uint32_t job = 0;
  dag::TaskId task = dag::kInvalidTask;
  Kind kind = ready;

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.job != b.job) return a.job > b.job;
    if (a.task != b.task) return a.task > b.task;
    return a.kind > b.kind;
  }
};

struct QueuedTask {
  std::uint32_t job = 0;
  dag::TaskId task = dag::kInvalidTask;
};

/// The whole simulation state; run() drives it to completion.
class Simulator {
 public:
  Simulator(const TenantRegistry& registry, std::span<const JobSpec> jobs,
            const cloud::Platform& platform, const SimConfig& cfg)
      : registry_(registry),
        jobs_(jobs),
        platform_(platform),
        cfg_(cfg),
        boot_(platform.boot_time()),
        region_(platform.default_region_id()) {}

  MultiTenantResult run();

 private:
  [[nodiscard]] util::Seconds exec_est(std::uint32_t j, dag::TaskId t,
                                       cloud::InstanceSize s) const {
    return cloud::exec_time(structure_[j]->works()[t], s);
  }

  /// Earliest start of (j, t) on `vm`: the same max-fold as
  /// PlacementContext::est_on over the job's own predecessors.
  [[nodiscard]] util::Seconds est_on(std::uint32_t j, dag::TaskId t,
                                     const cloud::Vm& vm) const {
    util::Seconds est = std::max(vm.available_from(), boot_);
    const dag::StructureCache& sc = *structure_[j];
    const std::span<const dag::TaskId> preds = sc.preds(t);
    const std::span<const util::Gigabytes> data = sc.pred_data(t);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      const sim::Assignment& pa = result_.jobs[j].tasks[preds[i]];
      const util::Seconds transfer =
          pa.vm == vm.id()
              ? 0.0
              : platform_.transfer_time(data[i], result_.pool.vm(pa.vm), vm);
      est = std::max(est, pa.end + transfer);
    }
    return est;
  }

  [[nodiscard]] bool allowed(cloud::VmId vm, TenantId tenant) const {
    return cfg_.policy != SharingPolicy::exclusive ||
           result_.vm_owner[vm] == tenant;
  }

  cloud::VmId rent(TenantId tenant) {
    const cloud::VmId id =
        result_.pool.rent(cfg_.vm_size, region_).id();
    result_.vm_owner.push_back(tenant);
    return id;
  }

  /// Mirrors the provisioning policy's choose_vm restricted to the VMs the
  /// sharing policy lets `tenant` touch.
  cloud::VmId choose_vm(std::uint32_t j, dag::TaskId t, TenantId tenant) {
    using provisioning::ProvisioningKind;
    if (cfg_.provisioning == ProvisioningKind::one_vm_per_task)
      return rent(tenant);

    // StartPar[Not]Exceed. Entry tasks each get their own VM.
    if (structure_[j]->preds(t).empty()) return rent(tenant);
    const cloud::Vm* candidate = nullptr;
    for (const cloud::VmId id : result_.pool.reuse_order()) {
      if (!allowed(id, tenant)) continue;
      candidate = &std::as_const(result_.pool).vm(id);
      break;
    }
    if (candidate == nullptr) return rent(tenant);
    if (cfg_.provisioning == ProvisioningKind::start_par_not_exceed) {
      const util::Seconds est =
          std::max(est_on(j, t, *candidate), now_);
      const util::Seconds eft = est + exec_est(j, t, candidate->size());
      if (candidate->placement_adds_btu(est, eft)) return rent(tenant);
    }
    return candidate->id();
  }

  void dispatch_one(const QueuedTask& head, TenantId tenant) {
    const std::uint32_t j = head.job;
    const dag::TaskId t = head.task;
    const cloud::VmId vm_id = choose_vm(j, t, tenant);
    const cloud::Vm& vm = std::as_const(result_.pool).vm(vm_id);
    // A dispatch decided at now_ cannot start in the past: a quota-deferred
    // task starts no earlier than the instant its slot freed. Without
    // deferral est >= now_ already (run_online equivalence).
    const util::Seconds est = std::max(est_on(j, t, vm), now_);
    const util::Seconds actual_end =
        est + cloud::exec_time(result_.jobs[j].actual_works[t], vm.size());
    result_.pool.place(vm_id, result_.task_base[j] + t, est, actual_end);
    result_.jobs[j].tasks[t] = sim::Assignment{vm_id, est, actual_end};
    ++running_[tenant];
    ++result_.dispatched;
    events_.push(Event{actual_end, j, t, Event::completion});
  }

  /// Deficit-weighted round-robin over the tenant queues at sim time now_.
  /// Each round credits quantum x weight; a queue head is dispatched while
  /// affordable and under quota. Quota-blocked queues keep their deficit
  /// and wait for a completion; under-funded heads accumulate deficit
  /// across rounds until affordable.
  void dispatch_all() {
    const std::size_t n = registry_.size();
    for (;;) {
      bool progress = false;
      bool starved = false;
      for (TenantId tid = 0; tid < n; ++tid) {
        std::deque<QueuedTask>& q = queues_[tid];
        if (q.empty()) {
          deficit_[tid] = 0.0;  // classic DRR: no hoarding while idle
          continue;
        }
        deficit_[tid] += cfg_.drr_quantum * weight_[tid];
        while (!q.empty()) {
          const QueuedTask head = q.front();
          if (running_[tid] >= registry_.spec(tid).max_running) {
            ++result_.tenants[tid].quota_deferrals;
            break;
          }
          const util::Seconds cost = exec_est(head.job, head.task, cfg_.vm_size);
          if (deficit_[tid] < cost) {
            starved = true;
            break;
          }
          dispatch_one(head, tid);
          q.pop_front();
          deficit_[tid] -= cost;
          progress = true;
        }
        if (q.empty()) deficit_[tid] = 0.0;
      }
      if (!progress && !starved) break;
    }
  }

  const TenantRegistry& registry_;
  std::span<const JobSpec> jobs_;
  const cloud::Platform& platform_;
  const SimConfig& cfg_;
  util::Seconds boot_;
  cloud::RegionId region_;
  util::Seconds now_ = 0;

  MultiTenantResult result_;
  std::vector<std::shared_ptr<const dag::StructureCache>> structure_;
  std::vector<std::vector<std::size_t>> waiting_;    // per job, per task
  std::vector<std::vector<util::Seconds>> ready_at_;  // per job, per task
  std::vector<std::deque<QueuedTask>> queues_;        // per tenant
  std::vector<double> deficit_;                       // per tenant
  std::vector<double> weight_;                        // per tenant
  std::vector<std::size_t> running_;                  // per tenant
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
};

MultiTenantResult Simulator::run() {
  using provisioning::ProvisioningKind;
  if (registry_.empty())
    throw std::invalid_argument("run_shared_pool: empty tenant registry");
  if (cfg_.provisioning == ProvisioningKind::all_par_not_exceed ||
      cfg_.provisioning == ProvisioningKind::all_par_exceed)
    throw std::invalid_argument(
        "run_shared_pool: AllPar level exclusivity is undefined across "
        "concurrent workflows; use a StartPar or OneVMperTask kind");
  if (!(cfg_.drr_quantum > 0.0))
    throw std::invalid_argument("run_shared_pool: non-positive DRR quantum");
  if (jobs_.empty())
    throw std::invalid_argument("run_shared_pool: empty job list");

  const std::size_t n_jobs = jobs_.size();
  result_.config = cfg_;
  result_.jobs.resize(n_jobs);
  result_.tenants.resize(registry_.size());
  result_.task_base.resize(n_jobs);
  structure_.resize(n_jobs);
  waiting_.resize(n_jobs);
  ready_at_.resize(n_jobs);
  queues_.resize(registry_.size());
  deficit_.assign(registry_.size(), 0.0);
  running_.assign(registry_.size(), 0);
  weight_.resize(registry_.size());
  for (TenantId tid = 0; tid < registry_.size(); ++tid)
    weight_[tid] = cfg_.policy == SharingPolicy::weighted_fair
                       ? registry_.spec(tid).weight
                       : 1.0;

  // Per-job setup: validation, global task-id bases, actual runtimes
  // (split per job so draws are independent of job order), entry events.
  util::Rng actuals_root(cfg_.actuals_seed);
  const sim::RuntimeErrorModel error{cfg_.sigma};
  dag::TaskId base = 0;
  for (std::size_t j = 0; j < n_jobs; ++j) {
    const JobSpec& spec = jobs_[j];
    if (spec.tenant >= registry_.size())
      throw std::invalid_argument("run_shared_pool: job " + std::to_string(j) +
                                  " names an unknown tenant");
    if (spec.arrival < 0)
      throw std::invalid_argument("run_shared_pool: negative arrival");
    spec.workflow.validate();
    result_.task_base[j] = base;
    base += static_cast<dag::TaskId>(spec.workflow.task_count());

    structure_[j] = spec.workflow.structure();
    util::Rng job_rng = actuals_root.split();
    result_.jobs[j].actual_works =
        error.sample_actual_works(spec.workflow, job_rng);
    result_.jobs[j].tasks.assign(spec.workflow.task_count(), sim::Assignment{});

    const util::Seconds release = std::max(spec.arrival, boot_);
    waiting_[j].resize(spec.workflow.task_count());
    ready_at_[j].assign(spec.workflow.task_count(), release);
    for (const dag::Task& t : spec.workflow.tasks()) {
      waiting_[j][t.id] = structure_[j]->preds(t.id).size();
      if (waiting_[j][t.id] == 0)
        events_.push(Event{release, static_cast<std::uint32_t>(j), t.id,
                           Event::ready});
    }
  }

  // Event loop: drain every event at one instant (completions free quota
  // slots and release successors; ready events surface queued tasks), then
  // run the dispatcher. Newly-ready tasks are appended sorted by
  // (job, task) so FIFO order within a tenant equals run_online's
  // (time, task) dispatch order.
  std::vector<QueuedTask> fresh;
  while (!events_.empty()) {
    now_ = events_.top().time;
    fresh.clear();
    while (!events_.empty() && events_.top().time == now_) {
      const Event e = events_.top();
      events_.pop();
      if (e.kind == Event::ready) {
        fresh.push_back(QueuedTask{e.job, e.task});
        continue;
      }
      const TenantId tid = jobs_[e.job].tenant;
      --running_[tid];
      const util::Seconds end = result_.jobs[e.job].tasks[e.task].end;
      for (const dag::TaskId s : structure_[e.job]->succs(e.task)) {
        ready_at_[e.job][s] = std::max(ready_at_[e.job][s], end);
        if (--waiting_[e.job][s] == 0)
          events_.push(Event{ready_at_[e.job][s], e.job, s, Event::ready});
      }
    }
    std::sort(fresh.begin(), fresh.end(),
              [](const QueuedTask& a, const QueuedTask& b) {
                if (a.job != b.job) return a.job < b.job;
                return a.task < b.task;
              });
    for (const QueuedTask& item : fresh)
      queues_[jobs_[item.job].tenant].push_back(item);
    dispatch_all();
  }

  for (const std::deque<QueuedTask>& q : queues_)
    if (!q.empty())
      throw std::logic_error(
          "run_shared_pool: tasks left undispatched (quota deadlock?)");

  // Post-pass aggregates: per-job completions, per-tenant stats.
  for (std::size_t j = 0; j < n_jobs; ++j) {
    JobResult& job = result_.jobs[j];
    TenantStats& stats = result_.tenants[jobs_[j].tenant];
    util::Seconds completion = jobs_[j].arrival;
    for (const sim::Assignment& a : job.tasks) {
      completion = std::max(completion, a.end);
      stats.busy += a.duration();
      ++stats.tasks;
    }
    job.completion = completion;
    result_.makespan = std::max(result_.makespan, completion);
    ++stats.jobs;
    stats.total_flow += completion - jobs_[j].arrival;
  }
  for (const TenantId owner : result_.vm_owner)
    ++result_.tenants[owner].vms_rented;
  return std::move(result_);
}

}  // namespace

std::size_t MultiTenantResult::job_of(dag::TaskId global) const {
  const auto it =
      std::upper_bound(task_base.begin(), task_base.end(), global);
  if (it == task_base.begin())
    throw std::out_of_range("MultiTenantResult::job_of: bad global id");
  return static_cast<std::size_t>(it - task_base.begin()) - 1;
}

TenantId MultiTenantResult::tenant_of(dag::TaskId global,
                                      std::span<const JobSpec> jobs_in) const {
  return jobs_in[job_of(global)].tenant;
}

MultiTenantResult run_shared_pool(const TenantRegistry& registry,
                                  std::span<const JobSpec> jobs,
                                  const cloud::Platform& platform,
                                  const SimConfig& cfg) {
  return Simulator(registry, jobs, platform, cfg).run();
}

std::vector<util::Seconds> poisson_arrivals(std::size_t count, double lambda,
                                            util::Rng& rng) {
  if (!(lambda > 0.0))
    throw std::invalid_argument("poisson_arrivals: non-positive rate");
  std::vector<util::Seconds> out;
  out.reserve(count);
  util::Seconds t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    // Inverse-CDF exponential draw; uniform() < 1 so the log argument > 0.
    t += -std::log(1.0 - rng.uniform()) / lambda;
    out.push_back(t);
  }
  return out;
}

}  // namespace cloudwf::tenant
