// SharedPoolSimulator: N tenants' workflow arrivals dispatched online
// against ONE cloud::VmPool under a resource-sharing policy.
//
// This is the multi-tenant counterpart of scheduling::run_online. Jobs
// (tenant, workflow, arrival time) release their entry tasks at
// max(arrival, boot); ready tasks wait in per-tenant FIFO queues ordered by
// (ready time, job, task); a deficit-weighted round-robin dispatcher picks
// across tenants (quantum x weight budget per round, estimated execution
// seconds as the per-task cost, quota-blocked queues skip without losing
// deficit); and VM choice mirrors the StartPar/OneVMperTask provisioning
// policies restricted to the VMs the sharing policy allows the tenant to
// touch. Estimates drive every decision; execution takes the actual
// (error-perturbed) runtime, exactly like run_online.
//
// With a single tenant, a single job arriving at 0 and no quota pressure,
// the produced placements are bit-identical to run_online with the same
// provisioning kind — pinned by tests/tenant/shared_pool_test.cpp.
//
// The AllPar kinds are rejected: their level-exclusivity rule is defined
// against one DAG's level structure and has no meaning across concurrently
// running workflows that interleave on the pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cloud/platform.hpp"
#include "cloud/vm.hpp"
#include "dag/workflow.hpp"
#include "provisioning/policy.hpp"
#include "sim/schedule.hpp"
#include "tenant/tenant.hpp"
#include "util/rng.hpp"

namespace cloudwf::tenant {

/// One workflow instance owned by one tenant, arriving at `arrival`.
/// The workflow's task works must already be materialized (scenario
/// applied); they are the dispatcher's runtime estimates.
struct JobSpec {
  TenantId tenant = kInvalidTenant;
  dag::Workflow workflow;
  util::Seconds arrival = 0.0;
};

struct SimConfig {
  SharingPolicy policy = SharingPolicy::shared;
  /// VM rent-or-reuse rule. Only one_vm_per_task and the two StartPar kinds
  /// are accepted (see the header comment).
  provisioning::ProvisioningKind provisioning =
      provisioning::ProvisioningKind::start_par_not_exceed;
  cloud::InstanceSize vm_size = cloud::InstanceSize::small;
  /// Deficit-round-robin quantum in estimated-execution seconds credited
  /// per tenant per dispatch round (scaled by weight under weighted_fair).
  util::Seconds drr_quantum = 3600.0;
  /// Runtime-estimate error (sim::RuntimeErrorModel's sigma); 0 = actual
  /// runtimes equal the estimates.
  double sigma = 0.0;
  /// Seed for the per-job actual-runtime draws (split per job, so a job's
  /// actuals do not depend on how many jobs precede it).
  std::uint64_t actuals_seed = 0x7e2013;
};

struct JobResult {
  /// Per-task placements, indexed by the job's local task ids.
  std::vector<sim::Assignment> tasks;
  /// The actual (error-perturbed) reference works execution used.
  std::vector<util::Seconds> actual_works;
  /// Latest task finish (>= arrival).
  util::Seconds completion = 0.0;
};

struct TenantStats {
  std::size_t jobs = 0;
  std::size_t tasks = 0;
  std::size_t vms_rented = 0;
  /// Dispatch attempts deferred because the tenant sat at its quota.
  std::size_t quota_deferrals = 0;
  /// Task-occupied seconds across the pool.
  util::Seconds busy = 0.0;
  /// Sum over jobs of (completion - arrival) — per-tenant flow time.
  util::Seconds total_flow = 0.0;
};

struct MultiTenantResult {
  SimConfig config;
  cloud::VmPool pool;
  std::vector<JobResult> jobs;          ///< parallel to the input span
  std::vector<TenantStats> tenants;     ///< indexed by TenantId
  std::vector<TenantId> vm_owner;       ///< renting tenant per VmId
  /// Global task-id base per job: pool placements carry base[j] + local id,
  /// so concurrent jobs never collide on the shared timeline.
  std::vector<dag::TaskId> task_base;
  util::Seconds makespan = 0.0;
  std::size_t dispatched = 0;

  /// Job index owning a pool placement's global task id.
  [[nodiscard]] std::size_t job_of(dag::TaskId global) const;
  /// The tenant owning that global task id (via the job).
  [[nodiscard]] TenantId tenant_of(dag::TaskId global,
                                   std::span<const JobSpec> jobs_in) const;
};

/// Runs the shared-pool simulation to completion. Deterministic in
/// (registry, jobs, platform, cfg). Throws std::invalid_argument on an
/// AllPar provisioning kind, an empty registry/job list, an unknown tenant
/// id, a negative arrival, a non-positive quantum, or an invalid workflow.
[[nodiscard]] MultiTenantResult run_shared_pool(const TenantRegistry& registry,
                                                std::span<const JobSpec> jobs,
                                                const cloud::Platform& platform,
                                                const SimConfig& cfg);

/// Exponential inter-arrival times with rate `lambda` per second: `count`
/// arrival instants, strictly increasing from 0. Deterministic in `rng`.
[[nodiscard]] std::vector<util::Seconds> poisson_arrivals(std::size_t count,
                                                          double lambda,
                                                          util::Rng& rng);

}  // namespace cloudwf::tenant
