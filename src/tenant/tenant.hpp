// TenantRegistry: the multi-tenant platform's account book — tenant ids,
// fair-share weights and concurrency quotas — plus the resource-sharing
// policy menu the shared-pool simulator runs under.
//
// The paper evaluates provisioning strategies for a single workflow owner;
// the multi-tenant layer runs N tenants' workflow arrivals against ONE
// cloud::VmPool (Hilman et al.'s Workflow-as-a-Service regime, PAPERS.md).
// A tenant is a stable id with a human-readable unique name, a weight used
// by the deficit-weighted round-robin dispatcher, and a quota capping how
// many of its tasks may run concurrently (== VMs it occupies at once).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cloudwf::tenant {

using TenantId = std::uint32_t;
inline constexpr TenantId kInvalidTenant =
    std::numeric_limits<TenantId>::max();

/// How the shared VM pool is carved up between tenants:
///   exclusive     — partitioned baseline: a tenant only ever reuses VMs it
///                   rented itself (no cross-tenant reuse); weights ignored;
///   shared        — cross-tenant idle-VM reuse: any tenant may append to
///                   any VM (the warm-pool win); weights ignored;
///   weighted_fair — cross-tenant reuse + deficit-weighted round-robin
///                   dispatch by registry weight, with per-tenant
///                   concurrency quotas as the fairness backstop.
enum class SharingPolicy : std::uint8_t {
  exclusive = 0,
  shared = 1,
  weighted_fair = 2,
};

inline constexpr std::array<SharingPolicy, 3> kAllSharingPolicies = {
    SharingPolicy::exclusive, SharingPolicy::shared,
    SharingPolicy::weighted_fair};

[[nodiscard]] constexpr std::string_view name_of(SharingPolicy p) noexcept {
  constexpr std::array<std::string_view, 3> names = {"exclusive", "shared",
                                                     "weighted-fair"};
  return names[static_cast<std::size_t>(p)];
}

/// Parses a policy name as printed by name_of; nullopt on anything else.
[[nodiscard]] std::optional<SharingPolicy> parse_policy(
    std::string_view name) noexcept;

struct TenantSpec {
  std::string name;
  /// Fair-share weight (> 0) for the weighted_fair dispatcher.
  double weight = 1.0;
  /// Max tasks of this tenant running at any instant (>= 1); each running
  /// task occupies one VM, so this is also the tenant's concurrency cap on
  /// the shared pool. Unlimited by default.
  std::size_t max_running = std::numeric_limits<std::size_t>::max();
};

class TenantRegistry {
 public:
  /// Registers a tenant and returns its id (== registration order).
  /// Throws std::invalid_argument on an empty or duplicate name, a
  /// non-positive/non-finite weight, or a zero quota.
  TenantId add(TenantSpec spec);

  [[nodiscard]] std::size_t size() const noexcept { return tenants_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tenants_.empty(); }

  /// Throws std::out_of_range on an unknown id.
  [[nodiscard]] const TenantSpec& spec(TenantId id) const;

  /// Id for a registered name; nullopt when absent.
  [[nodiscard]] std::optional<TenantId> find(std::string_view name) const;

  [[nodiscard]] const std::vector<TenantSpec>& specs() const noexcept {
    return tenants_;
  }

 private:
  std::vector<TenantSpec> tenants_;
};

}  // namespace cloudwf::tenant
