// BillingAttributor: splits a shared pool's BTU rental charges across the
// tenants that used it, in integer micro-dollars, such that the per-tenant
// bills recompose bitwise to cloud::VmPool::rental_cost.
//
// Each used VM's cost is apportioned independently:
//   - direct usage: every tenant's busy seconds on the VM (from the
//     placement timeline, mapped to tenants by global task id);
//   - idle apportionment: the VM's paid-but-idle seconds are shared among
//     the tenants that touched the VM, proportionally to their registry
//     weights (the tenants keeping the VM warm split the slack).
// A tenant's share of the VM is busy + idle * w/W; the VM's integer cost
// is split by telescoping cumulative rounding (bill_k = round(C * cum_k) -
// round(C * cum_{k-1})), with the last participant's cumulative pinned to
// the full cost — so per-VM bills sum EXACTLY to the VM's cost and the
// grand total recomposes exactly, never "approximately", to the pool's.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "cloud/platform.hpp"
#include "cloud/vm.hpp"
#include "tenant/tenant.hpp"
#include "util/money.hpp"

namespace cloudwf::tenant {

struct TenantBill {
  TenantId tenant = kInvalidTenant;
  /// Exact share of the pool's rental cost, in integer micros.
  util::Money cost;
  /// Task-occupied seconds this tenant ran across the pool.
  util::Seconds busy = 0.0;
  /// Weighted share of paid-but-idle seconds apportioned to this tenant.
  util::Seconds idle_share = 0.0;
  /// Used VMs this tenant had at least one placement on.
  std::size_t vms_touched = 0;
};

struct BillingBreakdown {
  /// One bill per registered tenant (zero bills included), by TenantId.
  std::vector<TenantBill> bills;
  /// Sum of bills; bitwise equal to pool.rental_cost(regions).
  util::Money total;
};

/// Attributes the pool's rental charges. `tenant_of` maps a placement's
/// (global) task id to the owning tenant; it must return a registered id
/// for every task placed on a used VM. Throws std::invalid_argument on an
/// empty registry or an out-of-range tenant id.
[[nodiscard]] BillingBreakdown attribute_billing(
    const cloud::VmPool& pool, std::span<const cloud::Region> regions,
    const TenantRegistry& registry,
    const std::function<TenantId(dag::TaskId)>& tenant_of);

}  // namespace cloudwf::tenant
