// Workflow: a validated directed acyclic graph of Tasks with data-sized edges.
//
// This is the substrate every scheduler operates on. The paper's workflows
// (Montage, CSTEM, MapReduce, Sequential — Fig. 2) are instances built in
// dag/builders.hpp; random instances come from dag/generators.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dag/task.hpp"
#include "util/units.hpp"

namespace cloudwf::dag {

class StructureCache;

namespace detail {

/// Copyable, thread-safe holder for a workflow's lazily built
/// StructureCache. Copies share the built cache (the structure is equal by
/// construction); resetting one holder never disturbs another's pointer.
class StructureCacheSlot {
 public:
  StructureCacheSlot() = default;
  StructureCacheSlot(const StructureCacheSlot& other) : ptr_(other.get()) {}
  StructureCacheSlot(StructureCacheSlot&& other) noexcept : ptr_(other.get()) {}
  StructureCacheSlot& operator=(const StructureCacheSlot& other) {
    auto p = other.get();  // lock ordering: never hold both mutexes
    std::scoped_lock lock(mu_);
    ptr_ = std::move(p);
    return *this;
  }
  StructureCacheSlot& operator=(StructureCacheSlot&& other) noexcept {
    if (this != &other) *this = other;
    return *this;
  }

  [[nodiscard]] std::shared_ptr<const StructureCache> get() const {
    std::scoped_lock lock(mu_);
    return ptr_;
  }

  /// First builder wins: stores `built` only if the slot is empty, and
  /// returns whatever the slot now holds.
  std::shared_ptr<const StructureCache> set_if_empty(
      std::shared_ptr<const StructureCache> built) const {
    std::scoped_lock lock(mu_);
    if (!ptr_) ptr_ = std::move(built);
    return ptr_;
  }

  void reset() noexcept {
    std::scoped_lock lock(mu_);
    ptr_.reset();
  }

 private:
  mutable std::mutex mu_;
  mutable std::shared_ptr<const StructureCache> ptr_;
};

}  // namespace detail

struct Edge {
  TaskId from = kInvalidTask;
  TaskId to = kInvalidTask;

  /// Data shipped from `from` to `to` in GB. Negative means "inherit the
  /// producer task's output_data" (the common case).
  util::Gigabytes data = -1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Workflow {
 public:
  Workflow() = default;
  explicit Workflow(std::string name) : name_(std::move(name)) {}

  /// Adds a task and returns its id. Names must be unique and non-empty;
  /// work must be positive.
  TaskId add_task(std::string name, util::Seconds work = 1.0,
                  util::Gigabytes output_data = 0.0);

  /// Adds a dependency edge. Duplicate edges and self-loops are rejected.
  /// data < 0 means the edge carries task(from).output_data.
  void add_edge(TaskId from, TaskId to, util::Gigabytes data = -1.0);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] std::size_t task_count() const noexcept { return tasks_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] Task& task(TaskId id);
  [[nodiscard]] std::span<const Task> tasks() const noexcept { return tasks_; }
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  /// Task id by unique name; throws std::out_of_range if absent.
  [[nodiscard]] TaskId task_by_name(std::string_view name) const;

  [[nodiscard]] const std::vector<TaskId>& successors(TaskId id) const;
  [[nodiscard]] const std::vector<TaskId>& predecessors(TaskId id) const;

  [[nodiscard]] bool has_edge(TaskId from, TaskId to) const;

  /// Effective data carried on edge (from,to) in GB: the per-edge override
  /// if set, otherwise the producer's output_data. Throws if no such edge.
  [[nodiscard]] util::Gigabytes edge_data(TaskId from, TaskId to) const;

  /// Tasks with no predecessors, ascending by id. Non-empty for a valid DAG.
  [[nodiscard]] std::vector<TaskId> entry_tasks() const;

  /// Tasks with no successors, ascending by id.
  [[nodiscard]] std::vector<TaskId> exit_tasks() const;

  /// Sum of all task works (reference seconds) — the sequential lower bound
  /// on total compute.
  [[nodiscard]] util::Seconds total_work() const noexcept;

  /// True iff the edge relation is acyclic (it is, by construction: add_edge
  /// rejects cycle-creating edges); exposed for tests and deserialization.
  [[nodiscard]] bool is_acyclic() const;

  /// Throws std::logic_error describing the first structural defect found
  /// (empty graph, unnamed/duplicate-named tasks, non-positive work, cycle).
  void validate() const;

  /// The structure-derived tables (adjacency CSR, topo order, levels, HEFT
  /// rank memos — see dag/structure_cache.hpp), built lazily on first call
  /// and shared by every scheduler that runs on this workflow. Invalidated
  /// by add_task/add_edge and by the mutable task() accessor (task works
  /// feed the cached largest-predecessor and rank tables). Throws on cyclic
  /// graphs, like topological_order.
  [[nodiscard]] std::shared_ptr<const StructureCache> structure() const;

 private:
  void check_task(TaskId id) const;
  [[nodiscard]] static std::uint64_t edge_key(TaskId from, TaskId to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  std::string name_ = "workflow";
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<TaskId>> succ_;
  std::vector<std::vector<TaskId>> pred_;
  std::unordered_map<std::uint64_t, std::size_t> edge_index_;
  std::unordered_map<std::string, TaskId> name_index_;
  // While every edge goes from a lower to a higher id, adding another such
  // edge cannot create a cycle, so the O(V+E) reachability check is skipped.
  // This keeps generator-scale construction (10^4+ tasks) linear.
  bool all_edges_forward_ = true;
  detail::StructureCacheSlot structure_cache_;
};

}  // namespace cloudwf::dag
