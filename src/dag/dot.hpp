// Graphviz DOT export for workflows (debugging aid + example output).
#pragma once

#include <string>

#include "dag/workflow.hpp"

namespace cloudwf::dag {

struct DotOptions {
  bool show_work = true;       ///< annotate nodes with reference runtimes
  bool show_data = false;      ///< annotate edges with data sizes (GB)
  bool rank_by_level = true;   ///< same-level tasks on the same rank
};

/// Renders the workflow as a `digraph` in Graphviz DOT syntax.
[[nodiscard]] std::string to_dot(const Workflow& wf, const DotOptions& opts = {});

}  // namespace cloudwf::dag
