// Task: one node of a workflow DAG.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "util/units.hpp"

namespace cloudwf::dag {

/// Dense task index within one Workflow. Tasks are never removed, so a
/// TaskId is stable for the lifetime of its workflow.
using TaskId = std::uint32_t;

inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

struct Task {
  TaskId id = kInvalidTask;

  /// Human-readable name (e.g. "mProjectPP_3"); unique within a workflow.
  std::string name;

  /// Reference execution time: seconds on the baseline small instance
  /// (speed-up 1.0). An instance with speed-up s runs the task in work/s.
  util::Seconds work = 1.0;

  /// Size of this task's output available to each successor, in GB.
  /// Per-edge overrides take precedence (see Workflow::add_edge).
  util::Gigabytes output_data = 0.0;
};

}  // namespace cloudwf::dag
