#include "dag/builders.hpp"

#include <stdexcept>
#include <string>

namespace cloudwf::dag::builders {

Workflow montage(std::size_t projections) {
  if (projections < 4 || projections % 2 != 0)
    throw std::invalid_argument("montage: projections must be even and >= 4");
  const std::size_t n = projections;
  Workflow wf("montage");

  // Level 0: parallel reprojections.
  std::vector<TaskId> project(n);
  for (std::size_t i = 0; i < n; ++i)
    project[i] = wf.add_task("mProjectPP_" + std::to_string(i));

  // Level 1: difference fits over pairs of overlapping projections — the
  // ring of neighbours plus the diagonal chords, giving the intermingled
  // dependency pattern Montage is known for (n + n/2 of them).
  std::vector<TaskId> diff;
  diff.reserve(n + n / 2);
  auto add_diff = [&](std::size_t a, std::size_t b) {
    const TaskId d = wf.add_task("mDiffFit_" + std::to_string(diff.size()));
    wf.add_edge(project[a], d);
    wf.add_edge(project[b], d);
    diff.push_back(d);
  };
  for (std::size_t i = 0; i < n; ++i) add_diff(i, (i + 1) % n);  // ring
  for (std::size_t i = 0; i < n / 2; ++i) add_diff(i, i + n / 2);  // chords

  // Level 2-3: global fit and background model (sequential bottleneck).
  const TaskId concat = wf.add_task("mConcatFit");
  for (TaskId d : diff) wf.add_edge(d, concat);
  const TaskId bg_model = wf.add_task("mBgModel");
  wf.add_edge(concat, bg_model);

  // Level 4: parallel background corrections; each needs the model and its
  // original projection (a cross-level dependency).
  std::vector<TaskId> background(n);
  for (std::size_t i = 0; i < n; ++i) {
    background[i] = wf.add_task("mBackground_" + std::to_string(i));
    wf.add_edge(bg_model, background[i]);
    wf.add_edge(project[i], background[i]);
  }

  // Level 5: final co-addition (the mImgTbl step is folded into mAdd at
  // these workflow sizes, keeping the paper's 24-task count at n = 6).
  const TaskId add = wf.add_task("mAdd");
  for (TaskId b : background) wf.add_edge(b, add);

  wf.validate();
  return wf;
}

Workflow montage24() {
  Workflow wf = montage(6);
  if (wf.task_count() != 24)
    throw std::logic_error("montage24: expected 24 tasks");
  return wf;
}

Workflow cstem() {
  Workflow wf("cstem");

  // The Fig. 1 sub-workflow: one initial task and six subsequent tasks.
  const TaskId init = wf.add_task("init");
  TaskId fan[6];
  for (int i = 0; i < 6; ++i) {
    fan[i] = wf.add_task("setup_" + std::to_string(i));
    wf.add_edge(init, fan[i]);
  }

  // Sequential spine: the fan-out joins into a solver chain.
  const TaskId assemble = wf.add_task("assemble");
  for (int i = 0; i < 6; ++i) wf.add_edge(fan[i], assemble);
  const TaskId solve = wf.add_task("solve");
  wf.add_edge(assemble, solve);

  // A small 3-wide parallel analysis branch...
  TaskId analysis[3];
  for (int i = 0; i < 3; ++i) {
    analysis[i] = wf.add_task("analyze_" + std::to_string(i));
    wf.add_edge(solve, analysis[i]);
  }

  // ...then a short sequential post-processing step and several final tasks
  // ("several final tasks" is the property the paper calls out).
  const TaskId post = wf.add_task("postprocess");
  for (int i = 0; i < 3; ++i) wf.add_edge(analysis[i], post);
  for (int i = 0; i < 2; ++i) {
    const TaskId out = wf.add_task("output_" + std::to_string(i));
    wf.add_edge(post, out);
  }
  // A report task depending directly on solve adds a cross-level dependency
  // and a third sink ("several final tasks").
  const TaskId report = wf.add_task("report");
  wf.add_edge(solve, report);

  wf.validate();
  if (wf.task_count() != 16) throw std::logic_error("cstem: expected 16 tasks");
  return wf;
}

Workflow map_reduce(std::size_t maps, std::size_t reducers) {
  if (maps == 0 || reducers == 0)
    throw std::invalid_argument("map_reduce: maps and reducers must be positive");
  Workflow wf("mapreduce");

  const TaskId split = wf.add_task("split");
  std::vector<TaskId> map1(maps);
  std::vector<TaskId> map2(maps);
  for (std::size_t i = 0; i < maps; ++i) {
    map1[i] = wf.add_task("map1_" + std::to_string(i));
    wf.add_edge(split, map1[i]);
  }
  // Second sequential map phase (Fig. 2c shows two).
  for (std::size_t i = 0; i < maps; ++i) {
    map2[i] = wf.add_task("map2_" + std::to_string(i));
    wf.add_edge(map1[i], map2[i]);
  }
  // Shuffle: all-to-all into the reducers.
  std::vector<TaskId> reduce(reducers);
  for (std::size_t r = 0; r < reducers; ++r) {
    reduce[r] = wf.add_task("reduce_" + std::to_string(r));
    for (std::size_t i = 0; i < maps; ++i) wf.add_edge(map2[i], reduce[r]);
  }
  const TaskId merge = wf.add_task("merge");
  for (std::size_t r = 0; r < reducers; ++r) wf.add_edge(reduce[r], merge);

  wf.validate();
  return wf;
}

Workflow sequential_chain(std::size_t length) {
  if (length == 0)
    throw std::invalid_argument("sequential_chain: length must be positive");
  Workflow wf("sequential");
  TaskId prev = wf.add_task("stage_0");
  for (std::size_t i = 1; i < length; ++i) {
    const TaskId cur = wf.add_task("stage_" + std::to_string(i));
    wf.add_edge(prev, cur);
    prev = cur;
  }
  wf.validate();
  return wf;
}

}  // namespace cloudwf::dag::builders
