#include "dag/workflow.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "dag/structure_cache.hpp"

namespace cloudwf::dag {

TaskId Workflow::add_task(std::string name, util::Seconds work,
                          util::Gigabytes output_data) {
  if (name.empty()) throw std::invalid_argument("add_task: empty name");
  if (!(work > 0)) throw std::invalid_argument("add_task: work must be positive");
  if (output_data < 0)
    throw std::invalid_argument("add_task: negative output_data");
  if (name_index_.contains(name))
    throw std::invalid_argument("add_task: duplicate task name '" + name + "'");

  const auto id = static_cast<TaskId>(tasks_.size());
  name_index_.emplace(name, id);
  tasks_.push_back(Task{id, std::move(name), work, output_data});
  succ_.emplace_back();
  pred_.emplace_back();
  structure_cache_.reset();
  return id;
}

void Workflow::add_edge(TaskId from, TaskId to, util::Gigabytes data) {
  check_task(from);
  check_task(to);
  if (from == to) throw std::invalid_argument("add_edge: self loop");
  if (has_edge(from, to)) throw std::invalid_argument("add_edge: duplicate edge");

  // Reject edges that would create a cycle: `to` must not already reach
  // `from`. If all edges so far (and this one) point from a lower id to a
  // higher id, no cycle is possible and the DFS is skipped.
  if (!(all_edges_forward_ && from < to)) {
    std::vector<TaskId> stack{to};
    std::vector<bool> seen(tasks_.size(), false);
    while (!stack.empty()) {
      const TaskId cur = stack.back();
      stack.pop_back();
      if (cur == from) throw std::invalid_argument("add_edge: would create a cycle");
      if (seen[cur]) continue;
      seen[cur] = true;
      for (TaskId s : succ_[cur]) stack.push_back(s);
    }
    if (from >= to) all_edges_forward_ = false;
  }

  edge_index_.emplace(edge_key(from, to), edges_.size());
  edges_.push_back(Edge{from, to, data});
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  structure_cache_.reset();
}

const Task& Workflow::task(TaskId id) const {
  check_task(id);
  return tasks_[id];
}

Task& Workflow::task(TaskId id) {
  check_task(id);
  // Handing out a mutable Task lets callers change work/output_data, which
  // feed the cached largest-predecessor, rank and edge-data tables.
  structure_cache_.reset();
  return tasks_[id];
}

std::shared_ptr<const StructureCache> Workflow::structure() const {
  if (auto cached = structure_cache_.get()) return cached;
  return structure_cache_.set_if_empty(
      std::make_shared<const StructureCache>(*this));
}

TaskId Workflow::task_by_name(std::string_view name) const {
  const auto it = name_index_.find(std::string(name));
  if (it == name_index_.end())
    throw std::out_of_range("task_by_name: no task named '" + std::string(name) + "'");
  return it->second;
}

const std::vector<TaskId>& Workflow::successors(TaskId id) const {
  check_task(id);
  return succ_[id];
}

const std::vector<TaskId>& Workflow::predecessors(TaskId id) const {
  check_task(id);
  return pred_[id];
}

bool Workflow::has_edge(TaskId from, TaskId to) const {
  check_task(from);
  check_task(to);
  return edge_index_.contains(edge_key(from, to));
}

util::Gigabytes Workflow::edge_data(TaskId from, TaskId to) const {
  check_task(from);
  check_task(to);
  const auto it = edge_index_.find(edge_key(from, to));
  if (it == edge_index_.end()) throw std::out_of_range("edge_data: no such edge");
  const Edge& e = edges_[it->second];
  return e.data >= 0 ? e.data : tasks_[from].output_data;
}

std::vector<TaskId> Workflow::entry_tasks() const {
  std::vector<TaskId> out;
  for (const Task& t : tasks_)
    if (pred_[t.id].empty()) out.push_back(t.id);
  return out;
}

std::vector<TaskId> Workflow::exit_tasks() const {
  std::vector<TaskId> out;
  for (const Task& t : tasks_)
    if (succ_[t.id].empty()) out.push_back(t.id);
  return out;
}

util::Seconds Workflow::total_work() const noexcept {
  util::Seconds sum = 0;
  for (const Task& t : tasks_) sum += t.work;
  return sum;
}

bool Workflow::is_acyclic() const {
  // Kahn's algorithm; acyclic iff all tasks get popped.
  std::vector<std::size_t> indeg(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) indeg[i] = pred_[i].size();
  std::vector<TaskId> queue;
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    if (indeg[i] == 0) queue.push_back(static_cast<TaskId>(i));
  std::size_t popped = 0;
  while (!queue.empty()) {
    const TaskId cur = queue.back();
    queue.pop_back();
    ++popped;
    for (TaskId s : succ_[cur])
      if (--indeg[s] == 0) queue.push_back(s);
  }
  return popped == tasks_.size();
}

void Workflow::validate() const {
  if (tasks_.empty()) throw std::logic_error("workflow '" + name_ + "' is empty");
  std::unordered_set<std::string> names;
  for (const Task& t : tasks_) {
    if (t.name.empty())
      throw std::logic_error("workflow '" + name_ + "': unnamed task");
    if (!(t.work > 0))
      throw std::logic_error("workflow '" + name_ + "': task '" + t.name +
                             "' has non-positive work");
    if (!names.insert(t.name).second)
      throw std::logic_error("workflow '" + name_ + "': duplicate task name '" +
                             t.name + "'");
  }
  if (!is_acyclic()) throw std::logic_error("workflow '" + name_ + "' has a cycle");
}

void Workflow::check_task(TaskId id) const {
  if (id >= tasks_.size()) throw std::out_of_range("invalid TaskId");
}

}  // namespace cloudwf::dag
