// Parameterized random DAG generators.
//
// These serve two purposes: (1) property-based tests sweep schedulers over
// thousands of structurally diverse DAGs; (2) the paper's future-work item —
// "custom workflows ... with various properties" — is directly runnable.
#pragma once

#include <cstddef>

#include "dag/workflow.hpp"
#include "util/rng.hpp"

namespace cloudwf::dag::generators {

struct LayeredConfig {
  std::size_t levels = 5;          ///< number of layers (>= 1)
  std::size_t min_width = 1;       ///< min tasks per layer (>= 1)
  std::size_t max_width = 6;       ///< max tasks per layer (>= min_width)
  double edge_density = 0.5;       ///< probability of an edge layer k -> k+1
  bool allow_skip_edges = true;    ///< also allow edges jumping over layers
  double skip_density = 0.1;       ///< probability of a skip edge
};

/// Random layered DAG: tasks arranged in layers, edges forward between
/// layers. Every non-entry task is guaranteed at least one predecessor from
/// an earlier layer, so the layer structure is also the level structure's
/// upper bound and the graph is connected enough to be a workflow.
[[nodiscard]] Workflow random_layered(const LayeredConfig& cfg, util::Rng& rng);

/// Shape knobs for the exact-count layered generator. Unlike LayeredConfig,
/// the task count is a hard target, not an emergent property.
struct CountConfig {
  std::size_t tasks = 1000;        ///< exact task count of the instance (>= 1)
  std::size_t levels = 0;          ///< 0 = pick ~sqrt(tasks) levels from rng
  double edge_density = 0.5;       ///< probability of an edge layer k -> k+1
  bool allow_skip_edges = true;    ///< also allow edges jumping over layers
  double skip_density = 0.02;     ///< probability of a skip edge (per pair)
};

/// Random layered DAG with exactly cfg.tasks tasks: one task is pinned to
/// every level (so level count is exact too), the rest are spread uniformly,
/// and edges are wired like random_layered — every non-entry task keeps at
/// least one predecessor in the previous layer. Deterministic in (cfg, rng
/// state). Skip-edge sampling is budgeted (expected skip_density fraction of
/// adjacent-pair count) so generation stays near-linear at 10^4+ tasks.
[[nodiscard]] Workflow random_layered_count(const CountConfig& cfg, util::Rng& rng);

/// Fork-join: entry -> width parallel tasks -> join, repeated `stages` times.
/// width = 1 degenerates to a sequential chain.
[[nodiscard]] Workflow fork_join(std::size_t stages, std::size_t width);

/// Out-tree (diamond-free fan-out): a rooted tree where each task has
/// `branching` children, `depth` levels. Models divide-style workflows.
[[nodiscard]] Workflow out_tree(std::size_t depth, std::size_t branching);

/// In-tree: mirror of out_tree; models reduction-style workflows.
[[nodiscard]] Workflow in_tree(std::size_t depth, std::size_t branching);

}  // namespace cloudwf::dag::generators
