// A minimal line-oriented text format for workflows, so experiments can be
// run on externally supplied DAGs (the paper's future-work "custom
// workflows ... from different workloads").
//
// Format (comments start with '#', blank lines ignored):
//   workflow <name>
//   task <name> <work-seconds> [output-gb]
//   edge <from-name> <to-name> [data-gb]
#pragma once

#include <iosfwd>
#include <string>

#include "dag/workflow.hpp"

namespace cloudwf::dag {

/// Serializes to the text format above (round-trips with parse_workflow).
[[nodiscard]] std::string serialize_workflow(const Workflow& wf);

/// Parses the text format; throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] Workflow parse_workflow(std::istream& in);
[[nodiscard]] Workflow parse_workflow_string(const std::string& text);

/// Convenience file helpers.
void save_workflow(const Workflow& wf, const std::string& path);
[[nodiscard]] Workflow load_workflow(const std::string& path);

}  // namespace cloudwf::dag
