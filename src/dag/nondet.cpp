#include "dag/nondet.hpp"

#include <stdexcept>
#include <unordered_map>

namespace cloudwf::dag::nondet {

namespace {
enum class Kind { task, sequence, parallel, choice, loop };
}  // namespace

class Node {
 public:
  Kind kind = Kind::task;

  // task
  std::string name;
  util::Seconds work = 1.0;
  util::Gigabytes output_data = 0.0;

  // sequence / parallel
  std::vector<NodePtr> children;

  // choice
  std::vector<WeightedBranch> branches;

  // loop
  NodePtr body;
  std::size_t min_iterations = 0;
  std::size_t max_iterations = 0;
};

NodePtr task(std::string name, util::Seconds work, util::Gigabytes output_data) {
  if (name.empty()) throw std::invalid_argument("nondet::task: empty name");
  if (!(work > 0)) throw std::invalid_argument("nondet::task: work must be positive");
  auto n = std::make_shared<Node>();
  n->kind = Kind::task;
  n->name = std::move(name);
  n->work = work;
  n->output_data = output_data;
  return n;
}

NodePtr sequence(std::vector<NodePtr> children) {
  if (children.empty()) throw std::invalid_argument("nondet::sequence: empty");
  for (const NodePtr& c : children)
    if (!c) throw std::invalid_argument("nondet::sequence: null child");
  auto n = std::make_shared<Node>();
  n->kind = Kind::sequence;
  n->children = std::move(children);
  return n;
}

NodePtr parallel(std::vector<NodePtr> children) {
  if (children.empty()) throw std::invalid_argument("nondet::parallel: empty");
  for (const NodePtr& c : children)
    if (!c) throw std::invalid_argument("nondet::parallel: null child");
  auto n = std::make_shared<Node>();
  n->kind = Kind::parallel;
  n->children = std::move(children);
  return n;
}

NodePtr choice(std::vector<WeightedBranch> branches) {
  if (branches.empty()) throw std::invalid_argument("nondet::choice: empty");
  for (const WeightedBranch& b : branches) {
    if (!b.child) throw std::invalid_argument("nondet::choice: null branch");
    if (!(b.weight > 0))
      throw std::invalid_argument("nondet::choice: weights must be positive");
  }
  auto n = std::make_shared<Node>();
  n->kind = Kind::choice;
  n->branches = std::move(branches);
  return n;
}

NodePtr loop(NodePtr body, std::size_t min_iterations, std::size_t max_iterations) {
  if (!body) throw std::invalid_argument("nondet::loop: null body");
  if (min_iterations > max_iterations)
    throw std::invalid_argument("nondet::loop: min > max");
  auto n = std::make_shared<Node>();
  n->kind = Kind::loop;
  n->body = std::move(body);
  n->min_iterations = min_iterations;
  n->max_iterations = max_iterations;
  return n;
}

namespace {

/// A fragment of the workflow under construction: the tasks with no
/// predecessor inside the fragment (entries) and no successor inside it
/// (exits). Empty fragments (zero-iteration loops) have both lists empty.
struct Fragment {
  std::vector<TaskId> entries;
  std::vector<TaskId> exits;

  [[nodiscard]] bool empty() const noexcept { return entries.empty(); }
};

class Unroller {
 public:
  Unroller(Workflow& wf, util::Rng& rng) : wf_(&wf), rng_(&rng) {}

  Fragment expand(const Node& node) {
    switch (node.kind) {
      case Kind::task: {
        const TaskId id = wf_->add_task(unique_name(node.name), node.work,
                                        node.output_data);
        return {{id}, {id}};
      }
      case Kind::sequence: {
        Fragment acc;
        for (const NodePtr& child : node.children)
          acc = connect_sequential(acc, expand(*child));
        return acc;
      }
      case Kind::parallel: {
        Fragment merged;
        for (const NodePtr& child : node.children) {
          const Fragment f = expand(*child);
          merged.entries.insert(merged.entries.end(), f.entries.begin(),
                                f.entries.end());
          merged.exits.insert(merged.exits.end(), f.exits.begin(), f.exits.end());
        }
        return merged;
      }
      case Kind::choice: {
        double total = 0;
        for (const WeightedBranch& b : node.branches) total += b.weight;
        double draw = rng_->uniform() * total;
        for (const WeightedBranch& b : node.branches) {
          draw -= b.weight;
          if (draw < 0) return expand(*b.child);
        }
        return expand(*node.branches.back().child);  // float-edge fallback
      }
      case Kind::loop: {
        const std::size_t iterations = static_cast<std::size_t>(rng_->between(
            static_cast<std::int64_t>(node.min_iterations),
            static_cast<std::int64_t>(node.max_iterations)));
        Fragment acc;
        for (std::size_t i = 0; i < iterations; ++i)
          acc = connect_sequential(acc, expand(*node.body));
        return acc;
      }
    }
    throw std::logic_error("nondet::unroll: unknown node kind");
  }

 private:
  Fragment connect_sequential(Fragment first, Fragment second) {
    if (first.empty()) return second;
    if (second.empty()) return first;
    for (TaskId from : first.exits)
      for (TaskId to : second.entries) wf_->add_edge(from, to);
    return {std::move(first.entries), std::move(second.exits)};
  }

  std::string unique_name(const std::string& base) {
    const std::size_t n = occurrences_[base]++;
    return n == 0 ? base : base + "#" + std::to_string(n);
  }

  Workflow* wf_;
  util::Rng* rng_;
  std::unordered_map<std::string, std::size_t> occurrences_;
};

}  // namespace

Workflow unroll(const NodePtr& root, util::Rng& rng, std::string workflow_name) {
  if (!root) throw std::invalid_argument("nondet::unroll: null root");
  Workflow wf(std::move(workflow_name));
  Unroller unroller(wf, rng);
  const Fragment f = unroller.expand(*root);
  if (f.empty()) (void)wf.add_task("noop", 1e-9);
  wf.validate();
  return wf;
}

double expected_tasks(const NodePtr& root) {
  if (!root) throw std::invalid_argument("nondet::expected_tasks: null root");
  const Node& n = *root;
  switch (n.kind) {
    case Kind::task:
      return 1.0;
    case Kind::sequence:
    case Kind::parallel: {
      double sum = 0;
      for (const NodePtr& c : n.children) sum += expected_tasks(c);
      return sum;
    }
    case Kind::choice: {
      double total = 0;
      double acc = 0;
      for (const WeightedBranch& b : n.branches) total += b.weight;
      for (const WeightedBranch& b : n.branches)
        acc += b.weight / total * expected_tasks(b.child);
      return acc;
    }
    case Kind::loop: {
      const double mean_iters =
          (static_cast<double>(n.min_iterations) +
           static_cast<double>(n.max_iterations)) /
          2.0;
      return mean_iters * expected_tasks(n.body);
    }
  }
  throw std::logic_error("nondet::expected_tasks: unknown node kind");
}

}  // namespace cloudwf::dag::nondet
