#include "dag/dot.hpp"

#include <sstream>

#include "dag/graph_algo.hpp"
#include "util/strings.hpp"

namespace cloudwf::dag {

namespace {
std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string to_dot(const Workflow& wf, const DotOptions& opts) {
  std::ostringstream os;
  os << "digraph " << quote(wf.name()) << " {\n";
  os << "  rankdir=TB;\n  node [shape=box, style=rounded];\n";

  for (const Task& t : wf.tasks()) {
    os << "  t" << t.id << " [label=" << quote(
        opts.show_work ? t.name + "\\n" + util::format_double(t.work, 1) + "s"
                       : t.name)
       << "];\n";
  }

  if (opts.rank_by_level) {
    for (const auto& group : level_groups(wf)) {
      if (group.size() < 2) continue;
      os << "  { rank=same;";
      for (TaskId t : group) os << " t" << t << ';';
      os << " }\n";
    }
  }

  for (const Edge& e : wf.edges()) {
    os << "  t" << e.from << " -> t" << e.to;
    if (opts.show_data) {
      os << " [label=" << quote(util::format_double(wf.edge_data(e.from, e.to), 3) + "GB")
         << "]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace cloudwf::dag
