#include "dag/graph_algo.hpp"

#include <algorithm>
#include <stdexcept>

#include "dag/structure_cache.hpp"

namespace cloudwf::dag {

// The structural queries delegate to the workflow's lazily built
// StructureCache (one Kahn pass per workflow instance, shared by every
// strategy and seed). The cache builders replicate the historical loops
// exactly, so results are bit-identical to the pre-cache implementations.

std::vector<TaskId> topological_order(const Workflow& wf) {
  return wf.structure()->topo_order();
}

std::vector<int> task_levels(const Workflow& wf) {
  return wf.structure()->levels();
}

std::vector<std::vector<TaskId>> level_groups(const Workflow& wf) {
  return wf.structure()->level_groups();
}

std::size_t max_width(const Workflow& wf) { return wf.structure()->max_width(); }

std::vector<double> upward_rank(const Workflow& wf, const ExecTimeFn& exec,
                                const CommTimeFn& comm) {
  const auto sc = wf.structure();
  std::vector<double> rank(wf.task_count(), 0.0);
  const std::vector<TaskId>& order = sc->topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double best = 0.0;
    for (TaskId s : sc->succs(t))
      best = std::max(best, comm(t, s) + rank[s]);
    rank[t] = exec(t) + best;
  }
  return rank;
}

std::vector<double> downward_rank(const Workflow& wf, const ExecTimeFn& exec,
                                  const CommTimeFn& comm) {
  const auto sc = wf.structure();
  std::vector<double> rank(wf.task_count(), 0.0);
  for (TaskId t : sc->topo_order()) {
    double best = 0.0;
    for (TaskId p : sc->preds(t))
      best = std::max(best, rank[p] + exec(p) + comm(p, t));
    rank[t] = best;
  }
  return rank;
}

std::vector<TaskId> heft_order(const Workflow& wf, const ExecTimeFn& exec,
                               const CommTimeFn& comm) {
  const std::vector<double> rank = upward_rank(wf, exec, comm);
  std::vector<TaskId> order(wf.task_count());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<TaskId>(i);
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return a < b;
  });
  return order;
}

std::vector<TaskId> critical_path(const Workflow& wf, const ExecTimeFn& exec,
                                  const CommTimeFn& comm) {
  const std::vector<double> up = upward_rank(wf, exec, comm);
  // Start from the entry with the largest upward rank; at each step follow the
  // successor that realizes rank(t) = exec(t) + comm(t,s) + rank(s).
  const std::vector<TaskId> entries = wf.entry_tasks();
  if (entries.empty()) return {};
  TaskId cur = entries.front();
  for (TaskId e : entries)
    if (up[e] > up[cur]) cur = e;

  std::vector<TaskId> path{cur};
  while (!wf.successors(cur).empty()) {
    // Follow the successor realizing rank(t) = exec(t) + max(comm(t,s) + rank(s));
    // lowest id wins floating-point ties, keeping the path deterministic.
    TaskId next = kInvalidTask;
    double best = -1.0;
    for (TaskId s : wf.successors(cur)) {
      const double via = comm(cur, s) + up[s];
      if (via > best + util::kTimeEpsilon) {
        best = via;
        next = s;
      }
    }
    path.push_back(next);
    cur = next;
  }
  return path;
}

util::Seconds critical_path_length(const Workflow& wf, const ExecTimeFn& exec,
                                   const CommTimeFn& comm) {
  const std::vector<double> up = upward_rank(wf, exec, comm);
  double best = 0.0;
  for (TaskId e : wf.entry_tasks()) best = std::max(best, up[e]);
  return best;
}

bool reachable(const Workflow& wf, TaskId from, TaskId to) {
  std::vector<TaskId> stack{from};
  std::vector<bool> seen(wf.task_count(), false);
  while (!stack.empty()) {
    const TaskId cur = stack.back();
    stack.pop_back();
    if (cur == to) return true;
    if (seen[cur]) continue;
    seen[cur] = true;
    for (TaskId s : wf.successors(cur)) stack.push_back(s);
  }
  return false;
}

std::vector<Edge> transitively_redundant_edges(const Workflow& wf) {
  std::vector<Edge> redundant;
  for (const Edge& e : wf.edges()) {
    // e is redundant iff `to` is reachable from `from` via some other path:
    // check reachability from every other successor of `from`.
    for (TaskId s : wf.successors(e.from)) {
      if (s == e.to) continue;
      if (reachable(wf, s, e.to)) {
        redundant.push_back(e);
        break;
      }
    }
  }
  return redundant;
}

}  // namespace cloudwf::dag
