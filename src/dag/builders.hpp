// Builders for the four workflow shapes of the paper (Fig. 2).
//
// Structure only: every task gets work = 1 s and output_data = 0 GB here;
// the workload scenarios (workload/scenario.hpp) overwrite works and data
// sizes according to the Pareto / best-case / worst-case models.
#pragma once

#include <cstddef>

#include "dag/workflow.hpp"

namespace cloudwf::dag::builders {

/// Montage astronomical-mosaic workflow, 24 tasks (Fig. 2a).
///
/// Shape (matching the Pegasus Montage generator at this size):
///   6 mProjectPP  -> 9 mDiffFit (each consuming two overlapping projections)
///   -> mConcatFit -> mBgModel -> 6 mBackground (also fed by their projection)
///   -> mAdd.
/// Wide parallel levels with intermingled cross-level dependencies — the
/// paper's "much parallelism + many interdependencies" case.
[[nodiscard]] Workflow montage24();

/// Parameterized Montage ("its size varying depending on the dimension of
/// the studied sky region"): `projections` mProjectPP tasks in a ring,
/// 1.5x as many mDiffFit tasks (ring pairs + diagonal chords), mConcatFit,
/// mBgModel, one mBackground per projection, mAdd. projections must be
/// even and >= 4; total task count is 3.5*projections + 3.
/// montage(6) is exactly montage24().
[[nodiscard]] Workflow montage(std::size_t projections);

/// CSTEM circumstellar-disk simulation workflow, 16 tasks (Fig. 2b).
///
/// One entry task fanning out to six parallel tasks (the exact sub-workflow
/// used in the paper's Fig. 1 provisioning example), then a mostly sequential
/// spine with a small 3-wide branch and three terminal sink tasks — the
/// paper's "some parallelism, relatively sequential, several final tasks"
/// case. The exact Dogan–Ozguner instance is not published; this builder
/// reproduces the structural properties the evaluation depends on.
[[nodiscard]] Workflow cstem();

/// MapReduce workflow with two sequential map phases (Fig. 2c):
///   split -> maps x map1 -> maps x map2 -> reducers x reduce -> merge.
/// Every map2 output feeds every reducer (the shuffle). Defaults give the
/// paper-scale instance: 1 + 8 + 8 + 4 + 1 = 22 tasks.
[[nodiscard]] Workflow map_reduce(std::size_t maps = 8, std::size_t reducers = 4);

/// Sequential chain of n tasks (Fig. 2d), the makefile-style serial case.
[[nodiscard]] Workflow sequential_chain(std::size_t length = 10);

}  // namespace cloudwf::dag::builders
