// Task is a plain aggregate; this translation unit exists so the target has a
// stable home for future non-inline Task helpers and to anchor the header.
#include "dag/task.hpp"

namespace cloudwf::dag {

static_assert(kInvalidTask == 0xffffffffu);

}  // namespace cloudwf::dag
