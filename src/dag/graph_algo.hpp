// Graph algorithms over Workflow: topological order, level decomposition
// (the paper's "level ranking"), HEFT's upward rank ("priority ranking"),
// critical path extraction (for CPA-Eager) and structural queries.
#pragma once

#include <functional>
#include <vector>

#include "dag/workflow.hpp"

namespace cloudwf::dag {

/// Execution-time estimate for a task, in seconds (on whatever platform the
/// caller has in mind — schedulers bind this to an instance type).
using ExecTimeFn = std::function<util::Seconds(TaskId)>;

/// Communication-time estimate for an edge, in seconds. Schedulers bind this
/// to the average/bound transfer time between VMs.
using CommTimeFn = std::function<util::Seconds(TaskId from, TaskId to)>;

/// Deterministic topological order (Kahn's algorithm with a min-id tie-break,
/// so equal inputs always yield identical schedules).
[[nodiscard]] std::vector<TaskId> topological_order(const Workflow& wf);

/// Level of each task: length (in hops) of the longest path from any entry
/// task; entries are level 0. This is the paper's level ranking.
[[nodiscard]] std::vector<int> task_levels(const Workflow& wf);

/// Tasks grouped by level, levels ascending, ids ascending inside a level.
/// All tasks within one group are pairwise independent ("parallel tasks").
[[nodiscard]] std::vector<std::vector<TaskId>> level_groups(const Workflow& wf);

/// Maximum number of tasks in any level — the workflow's parallelism width.
[[nodiscard]] std::size_t max_width(const Workflow& wf);

/// HEFT upward rank: rank(t) = exec(t) + max over successors s of
/// (comm(t,s) + rank(s)); exit tasks have rank = exec.
[[nodiscard]] std::vector<double> upward_rank(const Workflow& wf,
                                              const ExecTimeFn& exec,
                                              const CommTimeFn& comm);

/// Downward rank: rank(t) = max over predecessors p of
/// (rank(p) + exec(p) + comm(p,t)); entry tasks have rank 0.
[[nodiscard]] std::vector<double> downward_rank(const Workflow& wf,
                                                const ExecTimeFn& exec,
                                                const CommTimeFn& comm);

/// Task ids sorted by descending upward rank (HEFT's scheduling order).
/// Ties break on ascending id for determinism. The result is a valid
/// topological order (a property tests rely on).
[[nodiscard]] std::vector<TaskId> heft_order(const Workflow& wf,
                                             const ExecTimeFn& exec,
                                             const CommTimeFn& comm);

/// One critical path from an entry to an exit: the chain realizing the
/// maximum of exec+comm path length. Used by CPA-Eager.
[[nodiscard]] std::vector<TaskId> critical_path(const Workflow& wf,
                                                const ExecTimeFn& exec,
                                                const CommTimeFn& comm);

/// Length (seconds) of the critical path under exec/comm.
[[nodiscard]] util::Seconds critical_path_length(const Workflow& wf,
                                                 const ExecTimeFn& exec,
                                                 const CommTimeFn& comm);

/// True iff `to` is reachable from `from` following edges.
[[nodiscard]] bool reachable(const Workflow& wf, TaskId from, TaskId to);

/// Edges that are transitively redundant (removable without changing
/// reachability). Reported, not removed — callers decide.
[[nodiscard]] std::vector<Edge> transitively_redundant_edges(const Workflow& wf);

}  // namespace cloudwf::dag
