#include "dag/io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace cloudwf::dag {

std::string serialize_workflow(const Workflow& wf) {
  std::ostringstream os;
  os << "workflow " << wf.name() << '\n';
  for (const Task& t : wf.tasks()) {
    os << "task " << t.name << ' ' << util::format_double(t.work, 6);
    if (t.output_data > 0) os << ' ' << util::format_double(t.output_data, 6);
    os << '\n';
  }
  for (const Edge& e : wf.edges()) {
    os << "edge " << wf.task(e.from).name << ' ' << wf.task(e.to).name;
    if (e.data >= 0) os << ' ' << util::format_double(e.data, 6);
    os << '\n';
  }
  return os.str();
}

namespace {
[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("workflow parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

double parse_number(std::size_t line_no, const std::string& token) {
  // stod accepts "inf", "nan" and hex floats; none of them are numbers a
  // workflow file may carry (inf work passes add_task's work > 0 check and
  // then poisons every downstream time computation), so restrict the
  // alphabet to plain decimal/scientific notation before converting.
  for (const char c : token) {
    const bool plain = (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                       c == '+' || c == 'e' || c == 'E';
    if (!plain) fail(line_no, "bad number '" + token + "'");
  }
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) fail(line_no, "trailing characters in number '" + token + "'");
    if (!std::isfinite(v)) fail(line_no, "number out of range '" + token + "'");
    return v;
  } catch (const std::logic_error&) {
    fail(line_no, "bad number '" + token + "'");
  }
}
}  // namespace

Workflow parse_workflow(std::istream& in) {
  Workflow wf;
  bool named = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = util::trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;

    std::istringstream ls{std::string(stripped)};
    std::string kw;
    ls >> kw;
    if (kw == "workflow") {
      std::string nm;
      ls >> nm;
      if (nm.empty()) fail(line_no, "workflow needs a name");
      wf.set_name(nm);
      named = true;
    } else if (kw == "task") {
      std::string nm;
      std::string work_tok;
      std::string data_tok;
      ls >> nm >> work_tok;
      if (nm.empty() || work_tok.empty()) fail(line_no, "task needs <name> <work>");
      double data = 0;
      if (ls >> data_tok) data = parse_number(line_no, data_tok);
      try {
        wf.add_task(nm, parse_number(line_no, work_tok), data);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else if (kw == "edge") {
      std::string from;
      std::string to;
      std::string data_tok;
      ls >> from >> to;
      if (from.empty() || to.empty()) fail(line_no, "edge needs <from> <to>");
      double data = -1;
      if (ls >> data_tok) {
        data = parse_number(line_no, data_tok);
        // An explicit negative would silently flip to "inherit the
        // producer's output_data" (the in-memory sentinel); a file that
        // writes one almost certainly meant something else.
        if (data < 0) fail(line_no, "edge data must be >= 0");
      }
      try {
        wf.add_edge(wf.task_by_name(from), wf.task_by_name(to), data);
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown keyword '" + kw + "'");
    }
  }
  if (!named) throw std::runtime_error("workflow parse error: missing 'workflow' line");
  try {
    wf.validate();
  } catch (const std::logic_error& e) {
    // validate() throws logic_error (e.g. "workflow is empty"); the parser's
    // contract is runtime_error — don't leak the internal exception type.
    throw std::runtime_error(std::string("workflow parse error: ") + e.what());
  }
  return wf;
}

Workflow parse_workflow_string(const std::string& text) {
  std::istringstream is(text);
  return parse_workflow(is);
}

void save_workflow(const Workflow& wf, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_workflow: cannot open " + path);
  out << serialize_workflow(wf);
}

Workflow load_workflow(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_workflow: cannot open " + path);
  return parse_workflow(in);
}

}  // namespace cloudwf::dag
