// Tiny edge-list DSL for quick workflow construction in tests, examples
// and the CLI:
//
//   "a -> b; a -> c; b, c -> d"
//
// Statements separated by ';' or newlines; each statement is
// `<sources> -> <targets>` with comma-separated task names on either side
// (every source gains an edge to every target). Tasks are created on first
// mention with work = 1 s; annotate work by suffixing a name with
// ':<seconds>' at its first mention (e.g. "a:600 -> b:120").
#pragma once

#include <string>
#include <string_view>

#include "dag/workflow.hpp"

namespace cloudwf::dag {

/// Parses the DSL; throws std::runtime_error describing the offending
/// statement on malformed input. The result is validated.
[[nodiscard]] Workflow parse_edge_dsl(std::string_view text,
                                      std::string workflow_name = "dsl");

}  // namespace cloudwf::dag
