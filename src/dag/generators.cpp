#include "dag/generators.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace cloudwf::dag::generators {

Workflow random_layered(const LayeredConfig& cfg, util::Rng& rng) {
  if (cfg.levels == 0) throw std::invalid_argument("random_layered: levels == 0");
  if (cfg.min_width == 0 || cfg.min_width > cfg.max_width)
    throw std::invalid_argument("random_layered: bad width range");
  if (cfg.edge_density < 0 || cfg.edge_density > 1 || cfg.skip_density < 0 ||
      cfg.skip_density > 1)
    throw std::invalid_argument("random_layered: densities must be in [0,1]");

  Workflow wf("layered");
  std::vector<std::vector<TaskId>> layers(cfg.levels);
  for (std::size_t l = 0; l < cfg.levels; ++l) {
    const auto w = static_cast<std::size_t>(rng.between(
        static_cast<std::int64_t>(cfg.min_width),
        static_cast<std::int64_t>(cfg.max_width)));
    for (std::size_t i = 0; i < w; ++i)
      layers[l].push_back(
          wf.add_task("L" + std::to_string(l) + "_" + std::to_string(i)));
  }

  for (std::size_t l = 1; l < cfg.levels; ++l) {
    for (TaskId t : layers[l]) {
      bool has_pred = false;
      for (TaskId p : layers[l - 1]) {
        if (rng.chance(cfg.edge_density)) {
          wf.add_edge(p, t);
          has_pred = true;
        }
      }
      if (cfg.allow_skip_edges && l >= 2) {
        for (std::size_t from_layer = 0; from_layer + 1 < l; ++from_layer) {
          for (TaskId p : layers[from_layer]) {
            if (rng.chance(cfg.skip_density)) {
              wf.add_edge(p, t);
              has_pred = true;
            }
          }
        }
      }
      if (!has_pred) {
        // Guarantee connectivity: pick one random predecessor from layer l-1.
        const auto& prev = layers[l - 1];
        wf.add_edge(prev[rng.below(prev.size())], t);
      }
    }
  }
  wf.validate();
  return wf;
}

Workflow random_layered_count(const CountConfig& cfg, util::Rng& rng) {
  if (cfg.tasks == 0)
    throw std::invalid_argument("random_layered_count: tasks == 0");
  if (cfg.levels > cfg.tasks)
    throw std::invalid_argument("random_layered_count: more levels than tasks");
  if (cfg.edge_density < 0 || cfg.edge_density > 1 || cfg.skip_density < 0 ||
      cfg.skip_density > 1)
    throw std::invalid_argument("random_layered_count: densities must be in [0,1]");

  const std::size_t n = cfg.tasks;
  std::size_t levels = cfg.levels;
  if (levels == 0) {
    // ~sqrt(n) levels, jittered 0.5x-1.5x, keeps both dimensions growing
    // with n so neither the width nor the depth regime degenerates.
    std::size_t base = 1;
    while ((base + 1) * (base + 1) <= n) ++base;
    const std::size_t lo = base / 2 + 1;
    const std::size_t hi = base + base / 2 + 1;
    levels = static_cast<std::size_t>(rng.between(
        static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
    if (levels > n) levels = n;
  }

  // Exact-count widths: one task pinned per level, the rest spread uniformly.
  std::vector<std::size_t> width(levels, 1);
  for (std::size_t extra = n - levels; extra > 0; --extra)
    ++width[rng.below(levels)];

  Workflow wf("layered");
  std::vector<std::vector<TaskId>> layers(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    layers[l].reserve(width[l]);
    for (std::size_t i = 0; i < width[l]; ++i)
      layers[l].push_back(
          wf.add_task("L" + std::to_string(l) + "_" + std::to_string(i)));
  }

  // Adjacent-layer wiring, same scheme as random_layered: density edges plus
  // a guaranteed predecessor for connectivity.
  for (std::size_t l = 1; l < levels; ++l) {
    for (TaskId t : layers[l]) {
      bool has_pred = false;
      for (TaskId p : layers[l - 1]) {
        if (rng.chance(cfg.edge_density)) {
          wf.add_edge(p, t);
          has_pred = true;
        }
      }
      if (!has_pred) {
        const auto& prev = layers[l - 1];
        wf.add_edge(prev[rng.below(prev.size())], t);
      }
    }
  }

  // Budgeted skip edges: instead of a coin per (earlier task, task) pair —
  // quadratic at 10^4 tasks — draw skip_density * n random candidate pairs
  // spanning at least two levels and add the ones that are new.
  if (cfg.allow_skip_edges && levels >= 3 && cfg.skip_density > 0) {
    const auto budget =
        static_cast<std::size_t>(cfg.skip_density * static_cast<double>(n));
    for (std::size_t k = 0; k < budget; ++k) {
      const std::size_t to_layer =
          2 + rng.below(levels - 2);  // in [2, levels)
      const std::size_t from_layer = rng.below(to_layer - 1);  // skips >= 1
      const TaskId from = layers[from_layer][rng.below(width[from_layer])];
      const TaskId to = layers[to_layer][rng.below(width[to_layer])];
      if (!wf.has_edge(from, to)) wf.add_edge(from, to);
    }
  }

  wf.validate();
  return wf;
}

Workflow fork_join(std::size_t stages, std::size_t width) {
  if (stages == 0 || width == 0)
    throw std::invalid_argument("fork_join: stages and width must be positive");
  Workflow wf("forkjoin");
  TaskId prev = wf.add_task("source");
  for (std::size_t s = 0; s < stages; ++s) {
    std::vector<TaskId> par(width);
    for (std::size_t i = 0; i < width; ++i) {
      par[i] = wf.add_task("fork" + std::to_string(s) + "_" + std::to_string(i));
      wf.add_edge(prev, par[i]);
    }
    const TaskId join = wf.add_task("join" + std::to_string(s));
    for (TaskId t : par) wf.add_edge(t, join);
    prev = join;
  }
  wf.validate();
  return wf;
}

Workflow out_tree(std::size_t depth, std::size_t branching) {
  if (depth == 0 || branching == 0)
    throw std::invalid_argument("out_tree: depth and branching must be positive");
  Workflow wf("outtree");
  std::vector<TaskId> frontier{wf.add_task("n0")};
  std::size_t next_id = 1;
  for (std::size_t d = 1; d < depth; ++d) {
    std::vector<TaskId> next;
    next.reserve(frontier.size() * branching);
    for (TaskId parent : frontier) {
      for (std::size_t b = 0; b < branching; ++b) {
        const TaskId child = wf.add_task("n" + std::to_string(next_id++));
        wf.add_edge(parent, child);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  wf.validate();
  return wf;
}

Workflow in_tree(std::size_t depth, std::size_t branching) {
  if (depth == 0 || branching == 0)
    throw std::invalid_argument("in_tree: depth and branching must be positive");
  Workflow wf("intree");
  // Build leaves-first: level d has branching^(depth-1-d) nodes... simpler to
  // construct the widest level first and reduce towards one sink.
  std::size_t width = 1;
  for (std::size_t d = 1; d < depth; ++d) width *= branching;

  std::size_t next_id = 0;
  std::vector<TaskId> frontier;
  frontier.reserve(width);
  for (std::size_t i = 0; i < width; ++i)
    frontier.push_back(wf.add_task("n" + std::to_string(next_id++)));
  while (frontier.size() > 1) {
    std::vector<TaskId> next;
    next.reserve(frontier.size() / branching);
    for (std::size_t i = 0; i < frontier.size(); i += branching) {
      const TaskId parent = wf.add_task("n" + std::to_string(next_id++));
      for (std::size_t b = 0; b < branching && i + b < frontier.size(); ++b)
        wf.add_edge(frontier[i + b], parent);
      next.push_back(parent);
    }
    frontier = std::move(next);
  }
  wf.validate();
  return wf;
}

}  // namespace cloudwf::dag::generators
