#include "dag/compose.hpp"

#include <stdexcept>

namespace cloudwf::dag {

std::vector<TaskId> append_workflow(Workflow& dst, const Workflow& src,
                                    const std::string& prefix) {
  src.validate();
  std::vector<TaskId> mapping(src.task_count());
  for (const Task& t : src.tasks())
    mapping[t.id] = dst.add_task(prefix + t.name, t.work, t.output_data);
  for (const Edge& e : src.edges())
    dst.add_edge(mapping[e.from], mapping[e.to], e.data);
  return mapping;
}

Workflow in_series(const Workflow& first, const Workflow& second,
                   util::Gigabytes link_data) {
  if (link_data < 0) throw std::invalid_argument("in_series: negative link data");
  Workflow out(first.name() + "+" + second.name());
  const std::vector<TaskId> a = append_workflow(out, first, "1.");
  const std::vector<TaskId> b = append_workflow(out, second, "2.");
  for (TaskId exit : first.exit_tasks())
    for (TaskId entry : second.entry_tasks())
      out.add_edge(a[exit], b[entry], link_data);
  out.validate();
  return out;
}

Workflow in_parallel(const Workflow& a, const Workflow& b) {
  Workflow out(a.name() + "|" + b.name());
  (void)append_workflow(out, a, "1.");
  (void)append_workflow(out, b, "2.");
  out.validate();
  return out;
}

Workflow replicate_parallel(const Workflow& wf, std::size_t n) {
  if (n == 0) throw std::invalid_argument("replicate_parallel: n must be >= 1");
  Workflow out(wf.name() + "x" + std::to_string(n));
  for (std::size_t i = 0; i < n; ++i)
    (void)append_workflow(out, wf, std::to_string(i + 1) + ".");
  out.validate();
  return out;
}

}  // namespace cloudwf::dag
