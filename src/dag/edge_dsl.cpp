#include "dag/edge_dsl.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/strings.hpp"

namespace cloudwf::dag {

namespace {
[[noreturn]] void fail(std::string_view statement, const std::string& what) {
  throw std::runtime_error("edge DSL error in '" + std::string(statement) +
                           "': " + what);
}

struct NameRef {
  std::string name;
  double work = 1.0;
  bool has_work = false;
};

NameRef parse_name(std::string_view statement, std::string_view token) {
  const std::string_view stripped = util::trim(token);
  if (stripped.empty()) fail(statement, "empty task name");
  NameRef ref;
  const std::size_t colon = stripped.find(':');
  if (colon == std::string_view::npos) {
    ref.name = std::string(stripped);
    return ref;
  }
  ref.name = std::string(util::trim(stripped.substr(0, colon)));
  if (ref.name.empty()) fail(statement, "empty task name before ':'");
  const std::string work_str{util::trim(stripped.substr(colon + 1))};
  try {
    std::size_t pos = 0;
    ref.work = std::stod(work_str, &pos);
    if (pos != work_str.size()) throw std::invalid_argument("trailing");
  } catch (const std::logic_error&) {
    fail(statement, "bad work annotation '" + work_str + "'");
  }
  if (!(ref.work > 0)) fail(statement, "work must be positive");
  ref.has_work = true;
  return ref;
}
}  // namespace

Workflow parse_edge_dsl(std::string_view text, std::string workflow_name) {
  Workflow wf(std::move(workflow_name));
  std::unordered_map<std::string, TaskId> ids;

  auto resolve = [&](std::string_view statement,
                     std::string_view token) -> TaskId {
    const NameRef ref = parse_name(statement, token);
    const auto it = ids.find(ref.name);
    if (it != ids.end()) {
      if (ref.has_work) fail(statement, "work annotation on existing task '" +
                                            ref.name + "'");
      return it->second;
    }
    const TaskId id = wf.add_task(ref.name, ref.work);
    ids.emplace(ref.name, id);
    return id;
  };

  // Normalize newlines to ';' then split statements.
  std::string normalized(text);
  for (char& ch : normalized)
    if (ch == '\n') ch = ';';

  for (const std::string& raw : util::split(normalized, ';')) {
    const std::string_view statement = util::trim(raw);
    if (statement.empty() || statement.front() == '#') continue;

    const std::size_t arrow = statement.find("->");
    if (arrow == std::string_view::npos) {
      // A bare statement declares tasks without edges ("a:600").
      for (const std::string& tok :
           util::split(std::string(statement), ','))
        (void)resolve(statement, tok);
      continue;
    }

    std::vector<TaskId> sources;
    for (const std::string& tok :
         util::split(std::string(statement.substr(0, arrow)), ','))
      sources.push_back(resolve(statement, tok));
    std::vector<TaskId> targets;
    for (const std::string& tok :
         util::split(std::string(statement.substr(arrow + 2)), ','))
      targets.push_back(resolve(statement, tok));
    if (sources.empty() || targets.empty())
      fail(statement, "both sides of '->' need at least one task");

    for (TaskId from : sources) {
      for (TaskId to : targets) {
        try {
          wf.add_edge(from, to);
        } catch (const std::invalid_argument& e) {
          fail(statement, e.what());
        }
      }
    }
  }
  wf.validate();
  return wf;
}

}  // namespace cloudwf::dag
