#include "dag/science.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "dag/builders.hpp"

namespace cloudwf::dag::science {

Workflow epigenomics(std::size_t chunks) {
  if (chunks == 0) throw std::invalid_argument("epigenomics: chunks must be >= 1");
  Workflow wf("epigenomics");

  const TaskId split = wf.add_task("fastqSplit");
  std::vector<TaskId> maps(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::string sfx = "_" + std::to_string(c);
    const TaskId filter = wf.add_task("filterContams" + sfx);
    wf.add_edge(split, filter);
    const TaskId sol = wf.add_task("sol2sanger" + sfx);
    wf.add_edge(filter, sol);
    const TaskId bfq = wf.add_task("fastq2bfq" + sfx);
    wf.add_edge(sol, bfq);
    maps[c] = wf.add_task("map" + sfx);
    wf.add_edge(bfq, maps[c]);
  }
  const TaskId merge = wf.add_task("mapMerge");
  for (TaskId m : maps) wf.add_edge(m, merge);
  const TaskId index = wf.add_task("maqIndex");
  wf.add_edge(merge, index);
  const TaskId pileup = wf.add_task("pileup");
  wf.add_edge(index, pileup);

  wf.validate();
  return wf;
}

Workflow cybershake(std::size_t sites, std::size_t synths_per_site) {
  if (sites == 0 || synths_per_site == 0)
    throw std::invalid_argument("cybershake: sites and synths must be >= 1");
  Workflow out("cybershake");
  std::vector<TaskId> synths;
  std::vector<TaskId> peaks;
  for (std::size_t s = 0; s < sites; ++s) {
    const TaskId extract = out.add_task("ExtractSGT_" + std::to_string(s));
    for (std::size_t k = 0; k < synths_per_site; ++k) {
      const std::string sfx = "_" + std::to_string(s) + "_" + std::to_string(k);
      const TaskId synth = out.add_task("SeismogramSynthesis" + sfx);
      out.add_edge(extract, synth);
      synths.push_back(synth);
      const TaskId peak = out.add_task("PeakValCalc" + sfx);
      out.add_edge(synth, peak);
      peaks.push_back(peak);
    }
  }
  const TaskId zs = out.add_task("ZipSeis");
  for (TaskId s : synths) out.add_edge(s, zs);
  const TaskId zp = out.add_task("ZipPSA");
  for (TaskId p : peaks) out.add_edge(p, zp);

  out.validate();
  return out;
}

Workflow ligo(std::size_t groups, std::size_t group_size) {
  if (groups == 0 || group_size == 0)
    throw std::invalid_argument("ligo: groups and group_size must be >= 1");
  Workflow wf("ligo");

  std::vector<TaskId> trigbanks(groups);
  std::vector<std::vector<TaskId>> inspiral2(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    std::vector<TaskId> inspirals(group_size);
    for (std::size_t i = 0; i < group_size; ++i) {
      const std::string sfx = "_" + std::to_string(g) + "_" + std::to_string(i);
      const TaskId bank = wf.add_task("TmpltBank" + sfx);
      inspirals[i] = wf.add_task("Inspiral" + sfx);
      wf.add_edge(bank, inspirals[i]);
    }
    const TaskId thinca = wf.add_task("Thinca_" + std::to_string(g));
    for (TaskId i : inspirals) wf.add_edge(i, thinca);
    trigbanks[g] = wf.add_task("TrigBank_" + std::to_string(g));
    wf.add_edge(thinca, trigbanks[g]);
    inspiral2[g].resize(group_size);
    for (std::size_t i = 0; i < group_size; ++i) {
      inspiral2[g][i] = wf.add_task("Inspiral2_" + std::to_string(g) + "_" +
                                    std::to_string(i));
      wf.add_edge(trigbanks[g], inspiral2[g][i]);
    }
  }
  const TaskId final_thinca = wf.add_task("Thinca2");
  for (std::size_t g = 0; g < groups; ++g)
    for (TaskId i : inspiral2[g]) wf.add_edge(i, final_thinca);

  wf.validate();
  return wf;
}

Workflow sipht(std::size_t patsers) {
  if (patsers == 0) throw std::invalid_argument("sipht: patsers must be >= 1");
  Workflow wf("sipht");

  std::vector<TaskId> scans(patsers);
  for (std::size_t p = 0; p < patsers; ++p)
    scans[p] = wf.add_task("Patser_" + std::to_string(p));
  const TaskId concat = wf.add_task("PatserConcat");
  for (TaskId s : scans) wf.add_edge(s, concat);

  const TaskId transterm = wf.add_task("Transterm");
  const TaskId findterm = wf.add_task("Findterm");
  const TaskId rnamotif = wf.add_task("RNAMotif");
  const TaskId blast = wf.add_task("Blast");

  const TaskId srna = wf.add_task("SRNA");
  wf.add_edge(concat, srna);
  wf.add_edge(transterm, srna);
  wf.add_edge(findterm, srna);
  wf.add_edge(rnamotif, srna);
  wf.add_edge(blast, srna);

  const TaskId ffn = wf.add_task("FFN_Parse");
  wf.add_edge(srna, ffn);
  const TaskId paralogues = wf.add_task("BlastParalogues");
  wf.add_edge(ffn, paralogues);
  const TaskId annotate = wf.add_task("Annotate");
  wf.add_edge(srna, annotate);
  wf.add_edge(paralogues, annotate);

  wf.validate();
  return wf;
}

Workflow montage(std::size_t projections) { return builders::montage(projections); }

std::string_view name_of(Family f) noexcept {
  constexpr std::array<std::string_view, 5> names = {
      "epigenomics", "cybershake", "ligo", "sipht", "montage"};
  return names[static_cast<std::size_t>(f)];
}

Family family_by_name(std::string_view name) {
  for (Family f : kAllFamilies)
    if (name_of(f) == name) return f;
  throw std::invalid_argument("family_by_name: unknown science family '" +
                              std::string(name) + "'");
}

namespace {

/// Default secondary knobs (the builders' default arguments).
constexpr std::size_t kCybershakeSynths = 4;
constexpr std::size_t kLigoGroupSize = 3;

/// Smallest k >= lo with count(k) >= target, for affine count formulas.
std::size_t smallest_reaching(std::size_t target, std::size_t lo,
                              std::size_t per_unit, std::size_t constant) {
  if (constant + lo * per_unit >= target) return lo;
  // ceil((target - constant) / per_unit), never below lo.
  return (target - constant + per_unit - 1) / per_unit;
}

}  // namespace

ScaledParams scaled_params(Family f, std::size_t target_tasks) {
  if (target_tasks == 0)
    throw std::invalid_argument("scaled_params: target_tasks must be >= 1");
  ScaledParams p;
  p.family = f;
  switch (f) {
    case Family::epigenomics:
      p.primary = smallest_reaching(target_tasks, 1, 4, 4);
      p.tasks = epigenomics_tasks(p.primary);
      break;
    case Family::cybershake:
      p.secondary = kCybershakeSynths;
      p.primary =
          smallest_reaching(target_tasks, 1, 1 + 2 * kCybershakeSynths, 2);
      p.tasks = cybershake_tasks(p.primary, p.secondary);
      break;
    case Family::ligo:
      p.secondary = kLigoGroupSize;
      p.primary = smallest_reaching(target_tasks, 1, 3 * kLigoGroupSize + 2, 1);
      p.tasks = ligo_tasks(p.primary, p.secondary);
      break;
    case Family::sipht:
      p.primary = smallest_reaching(target_tasks, 1, 1, 9);
      p.tasks = sipht_tasks(p.primary);
      break;
    case Family::montage:
      // projections must be even and >= 4: with p = 2h, tasks = 7h + 3.
      p.primary = smallest_reaching(target_tasks, 2, 7, 3) * 2;
      p.tasks = montage_tasks(p.primary);
      break;
  }
  return p;
}

Workflow scaled(Family f, std::size_t target_tasks) {
  const ScaledParams p = scaled_params(f, target_tasks);
  switch (f) {
    case Family::epigenomics:
      return epigenomics(p.primary);
    case Family::cybershake:
      return cybershake(p.primary, p.secondary);
    case Family::ligo:
      return ligo(p.primary, p.secondary);
    case Family::sipht:
      return sipht(p.primary);
    case Family::montage:
      return montage(p.primary);
  }
  throw std::invalid_argument("scaled: unknown family");
}

ShapeInvariants expected_invariants(const ScaledParams& p) {
  ShapeInvariants inv;
  inv.tasks = p.tasks;
  switch (p.family) {
    case Family::epigenomics:
      // split / filter / sol / bfq / map / merge / index / pileup.
      inv.levels = 8;
      inv.max_width = p.primary;
      inv.entries = 1;
      inv.exits = 1;
      break;
    case Family::cybershake:
      // extracts / synths / (peaks + ZipSeis) / ZipPSA; ZipSeis shares the
      // peaks' level because both hang off the synth level.
      inv.levels = 4;
      inv.max_width = p.primary * p.secondary + 1;
      inv.entries = p.primary;
      inv.exits = 2;
      break;
    case Family::ligo:
      // banks / inspirals / thinca / trigbank / inspiral2 / thinca2.
      inv.levels = 6;
      inv.max_width = p.primary * p.secondary;
      inv.entries = p.primary * p.secondary;
      inv.exits = 1;
      break;
    case Family::sipht:
      // (patsers + 4 analyses) / concat / srna / ffn / paralogues / annotate.
      inv.levels = 6;
      inv.max_width = p.primary + 4;
      inv.entries = p.primary + 4;
      inv.exits = 1;
      break;
    case Family::montage:
      // projections / diffs / concat / bgmodel / backgrounds / add.
      inv.levels = 6;
      inv.max_width = p.primary + p.primary / 2;
      inv.entries = p.primary;
      inv.exits = 1;
      break;
  }
  return inv;
}

}  // namespace cloudwf::dag::science
