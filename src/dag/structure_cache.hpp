// StructureCache: every structure-derived quantity the schedulers need,
// computed once per Workflow instance and shared across strategies, seeds
// and threads (the flat-core optimisation layer).
//
// A workflow's structure is immutable while schedulers run, yet the naive
// code paths recompute topological order, levels, level groups and HEFT
// ranks per run — 19 times per sweep cell, once per seed. The cache folds
// all of that into one build: CSR predecessor/successor adjacency with the
// per-edge data sizes already resolved (no more edge_index_ hash lookups in
// est_on), the deterministic Kahn topological order, the paper's level
// ranking with per-level sizes and groups, the largest predecessor of every
// task, and key-addressed memo tables for HEFT upward ranks / orders so a
// strategy family that shares a cost model ranks the DAG exactly once.
//
// Every value is bit-identical to the uncached algorithm it replaces: the
// builders run the same loops in the same order. Tests in
// tests/dag/structure_cache_test.cpp assert this equivalence property for
// the paper workflows and randomized DAGs.
//
// Thread safety: the eager fields are immutable after construction; the
// memo tables are guarded by a mutex and store into node-stable std::map
// entries, so returned references stay valid for the cache's lifetime.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "dag/graph_algo.hpp"
#include "dag/workflow.hpp"

namespace cloudwf::dag {

class StructureCache {
 public:
  /// Builds every eager table in one pass. Throws (like topological_order)
  /// if the graph has a cycle.
  explicit StructureCache(const Workflow& wf);

  [[nodiscard]] std::size_t task_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return pred_flat_.size();
  }

  /// Predecessors / successors of `t` in insertion order (identical to
  /// Workflow::predecessors / successors).
  [[nodiscard]] std::span<const TaskId> preds(TaskId t) const noexcept {
    return {pred_flat_.data() + pred_off_[t], pred_off_[t + 1] - pred_off_[t]};
  }
  [[nodiscard]] std::span<const TaskId> succs(TaskId t) const noexcept {
    return {succ_flat_.data() + succ_off_[t], succ_off_[t + 1] - succ_off_[t]};
  }

  /// Resolved data (GB) carried by the i-th incoming / outgoing edge of `t`,
  /// aligned with preds(t) / succs(t): the per-edge override when set,
  /// otherwise the producer's output_data (== Workflow::edge_data).
  [[nodiscard]] std::span<const util::Gigabytes> pred_data(TaskId t) const noexcept {
    return {pred_data_.data() + pred_off_[t], pred_off_[t + 1] - pred_off_[t]};
  }
  [[nodiscard]] std::span<const util::Gigabytes> succ_data(TaskId t) const noexcept {
    return {succ_data_.data() + succ_off_[t], succ_off_[t + 1] - succ_off_[t]};
  }

  /// Dense id of `t`'s i-th incoming edge in [0, edge_count()) — the slot
  /// base callers use to index flat per-edge memo tables.
  [[nodiscard]] std::size_t pred_edge_slot(TaskId t) const noexcept {
    return pred_off_[t];
  }

  /// Deterministic Kahn order (min-id tie-break), == dag::topological_order.
  [[nodiscard]] const std::vector<TaskId>& topo_order() const noexcept {
    return topo_;
  }

  /// Level of each task (longest-hop distance from an entry), == task_levels.
  [[nodiscard]] const std::vector<int>& levels() const noexcept { return levels_; }

  /// Number of tasks per level.
  [[nodiscard]] const std::vector<std::size_t>& level_sizes() const noexcept {
    return level_sizes_;
  }

  /// Tasks grouped by level, ids ascending inside a level, == level_groups.
  [[nodiscard]] const std::vector<std::vector<TaskId>>& level_groups() const noexcept {
    return groups_;
  }

  [[nodiscard]] std::size_t max_width() const noexcept { return max_width_; }

  /// True iff `t` shares its level with at least one other task.
  [[nodiscard]] bool is_parallel(TaskId t) const noexcept {
    return level_sizes_[static_cast<std::size_t>(levels_[t])] > 1;
  }

  /// Predecessor of `t` with the largest work — lowest id on work ties —
  /// or kInvalidTask for entry tasks (PlacementContext::largest_predecessor).
  [[nodiscard]] TaskId largest_pred(TaskId t) const noexcept {
    return largest_pred_[t];
  }

  /// Task work snapshot taken at build time (invalidation on Workflow
  /// mutation guarantees it is current).
  [[nodiscard]] const std::vector<util::Seconds>& works() const noexcept {
    return works_;
  }

  /// Each level's tasks ordered by work descending, id ascending on ties —
  /// the order LevelScheduler and the AllPar1LnS packers place in. Built
  /// lazily, once.
  [[nodiscard]] const std::vector<std::vector<TaskId>>& levels_by_work_desc() const;

  /// Memoized HEFT upward rank / order for one cost model. `key` must
  /// uniquely identify the (exec, comm) model — callers hash the instance
  /// size and transfer parameters — and exec/comm are only invoked on a
  /// miss. Bit-identical to dag::upward_rank / dag::heft_order.
  [[nodiscard]] const std::vector<double>& upward_rank_memo(
      std::uint64_t key, const ExecTimeFn& exec, const CommTimeFn& comm) const;
  [[nodiscard]] const std::vector<TaskId>& heft_order_memo(
      std::uint64_t key, const ExecTimeFn& exec, const CommTimeFn& comm) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> pred_off_, succ_off_;  // CSR offsets, size n_+1
  std::vector<TaskId> pred_flat_, succ_flat_;
  std::vector<util::Gigabytes> pred_data_, succ_data_;
  std::vector<TaskId> topo_;
  std::vector<int> levels_;
  std::vector<std::size_t> level_sizes_;
  std::vector<std::vector<TaskId>> groups_;
  std::vector<TaskId> largest_pred_;
  std::vector<util::Seconds> works_;
  std::size_t max_width_ = 0;

  mutable std::mutex memo_mu_;
  mutable std::vector<std::vector<TaskId>> work_desc_;  // empty until built
  mutable std::map<std::uint64_t, std::vector<double>> rank_memo_;
  mutable std::map<std::uint64_t, std::vector<TaskId>> order_memo_;
};

}  // namespace cloudwf::dag
