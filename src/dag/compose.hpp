// Workflow composition: build larger applications from smaller workflows
// (series, parallel, replication). Supports the paper's future-work item of
// studying "custom workflows ... with various properties" by assembling
// them from the validated building blocks instead of hand-writing DAGs.
#pragma once

#include <string>

#include "dag/workflow.hpp"

namespace cloudwf::dag {

/// Copies every task/edge of `src` into `dst`, prefixing task names with
/// `prefix` (use distinct prefixes to avoid collisions). Returns the id of
/// each copied task, indexed by its id in `src`.
std::vector<TaskId> append_workflow(Workflow& dst, const Workflow& src,
                                    const std::string& prefix);

/// `first` then `second`: every exit of `first` feeds every entry of
/// `second`, carrying `link_data` GB (0 = control dependency only).
[[nodiscard]] Workflow in_series(const Workflow& first, const Workflow& second,
                                 util::Gigabytes link_data = 0.0);

/// Disjoint union: both run side by side (the result has the union of
/// entries and exits).
[[nodiscard]] Workflow in_parallel(const Workflow& a, const Workflow& b);

/// n independent copies of `wf` side by side (n >= 1).
[[nodiscard]] Workflow replicate_parallel(const Workflow& wf, std::size_t n);

}  // namespace cloudwf::dag
