// Non-deterministic workflows.
//
// The paper's introduction distinguishes deterministic DAG workflows from
// non-deterministic ones "determined at runtime [consisting] of loop, split
// and join constructs" (its ref [1], Caron et al., budget-constrained
// allocation for non-deterministic workflows). This module provides those
// constructs as a structured combinator tree; `unroll` samples the runtime
// choices and produces an ordinary deterministic Workflow instance that the
// whole scheduling stack consumes unchanged — so every strategy can be
// evaluated on distributions of instances.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dag/workflow.hpp"
#include "util/rng.hpp"

namespace cloudwf::dag::nondet {

class Node;
using NodePtr = std::shared_ptr<const Node>;

/// One atomic task (leaf).
[[nodiscard]] NodePtr task(std::string name, util::Seconds work = 1.0,
                           util::Gigabytes output_data = 0.0);

/// Children executed one after another.
[[nodiscard]] NodePtr sequence(std::vector<NodePtr> children);

/// AND split/join: children run in parallel between a fork and a join.
[[nodiscard]] NodePtr parallel(std::vector<NodePtr> children);

/// XOR split: exactly one child executes, drawn by weight (> 0 each).
struct WeightedBranch {
  double weight = 1.0;
  NodePtr child;
};
[[nodiscard]] NodePtr choice(std::vector<WeightedBranch> branches);

/// Loop: the body executes k times sequentially, k uniform in
/// [min_iterations, max_iterations] (0 allowed: body may vanish).
[[nodiscard]] NodePtr loop(NodePtr body, std::size_t min_iterations,
                           std::size_t max_iterations);

/// Samples all choices/loop counts and expands the tree into a Workflow.
/// Task instance names are suffixed with their occurrence index so repeated
/// bodies stay uniquely named. An unrolled empty structure (e.g. a loop
/// with zero iterations at top level) yields a single no-op task so the
/// result is always a valid workflow.
[[nodiscard]] Workflow unroll(const NodePtr& root, util::Rng& rng,
                              std::string workflow_name = "nondet");

/// Expected number of task instances (loops at their mean iteration count,
/// choices weighted) — useful for sizing experiments.
[[nodiscard]] double expected_tasks(const NodePtr& root);

}  // namespace cloudwf::dag::nondet
