#include "dag/structure_cache.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace cloudwf::dag {

StructureCache::StructureCache(const Workflow& wf) : n_(wf.task_count()) {
  pred_off_.assign(n_ + 1, 0);
  succ_off_.assign(n_ + 1, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto t = static_cast<TaskId>(i);
    pred_off_[i + 1] = pred_off_[i] + wf.predecessors(t).size();
    succ_off_[i + 1] = succ_off_[i] + wf.successors(t).size();
  }
  pred_flat_.reserve(pred_off_[n_]);
  pred_data_.reserve(pred_off_[n_]);
  succ_flat_.reserve(succ_off_[n_]);
  succ_data_.reserve(succ_off_[n_]);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto t = static_cast<TaskId>(i);
    for (TaskId p : wf.predecessors(t)) {
      pred_flat_.push_back(p);
      pred_data_.push_back(wf.edge_data(p, t));
    }
    for (TaskId s : wf.successors(t)) {
      succ_flat_.push_back(s);
      succ_data_.push_back(wf.edge_data(t, s));
    }
  }

  // Kahn with a min-id heap — the same algorithm as the historical
  // dag::topological_order, so the order (and everything derived from it)
  // is bit-identical.
  {
    std::vector<std::size_t> indeg(n_);
    for (std::size_t i = 0; i < n_; ++i)
      indeg[i] = pred_off_[i + 1] - pred_off_[i];
    std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
    for (std::size_t i = 0; i < n_; ++i)
      if (indeg[i] == 0) ready.push(static_cast<TaskId>(i));
    topo_.reserve(n_);
    while (!ready.empty()) {
      const TaskId cur = ready.top();
      ready.pop();
      topo_.push_back(cur);
      for (TaskId s : succs(cur))
        if (--indeg[s] == 0) ready.push(s);
    }
    if (topo_.size() != n_)
      throw std::logic_error("topological_order: graph has a cycle");
  }

  levels_.assign(n_, 0);
  for (TaskId t : topo_)
    for (TaskId p : preds(t)) levels_[t] = std::max(levels_[t], levels_[p] + 1);

  const int max_level =
      levels_.empty() ? -1 : *std::max_element(levels_.begin(), levels_.end());
  level_sizes_.assign(static_cast<std::size_t>(max_level + 1), 0);
  for (int l : levels_) ++level_sizes_[static_cast<std::size_t>(l)];
  groups_.resize(level_sizes_.size());
  for (std::size_t l = 0; l < level_sizes_.size(); ++l)
    groups_[l].reserve(level_sizes_[l]);
  for (std::size_t i = 0; i < n_; ++i)
    groups_[static_cast<std::size_t>(levels_[i])].push_back(
        static_cast<TaskId>(i));  // ids ascend within a level because i ascends
  for (const auto& g : groups_) max_width_ = std::max(max_width_, g.size());

  works_.reserve(n_);
  for (const Task& t : wf.tasks()) works_.push_back(t.work);

  largest_pred_.assign(n_, kInvalidTask);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto ps = preds(static_cast<TaskId>(i));
    if (ps.empty()) continue;
    TaskId best = ps.front();
    for (TaskId p : ps) {
      if (works_[p] > works_[best] || (works_[p] == works_[best] && p < best))
        best = p;
    }
    largest_pred_[i] = best;
  }
}

const std::vector<std::vector<TaskId>>& StructureCache::levels_by_work_desc() const {
  std::scoped_lock lock(memo_mu_);
  if (work_desc_.empty() && !groups_.empty()) {
    work_desc_ = groups_;
    for (auto& level : work_desc_) {
      std::sort(level.begin(), level.end(), [&](TaskId x, TaskId y) {
        if (works_[x] != works_[y]) return works_[x] > works_[y];
        return x < y;
      });
    }
  }
  return work_desc_;
}

const std::vector<double>& StructureCache::upward_rank_memo(
    std::uint64_t key, const ExecTimeFn& exec, const CommTimeFn& comm) const {
  {
    std::scoped_lock lock(memo_mu_);
    const auto it = rank_memo_.find(key);
    if (it != rank_memo_.end()) return it->second;
  }
  // Compute outside the lock: exec/comm are caller callbacks. Two threads
  // racing on one key produce the same deterministic vector; try_emplace
  // keeps the first.
  std::vector<double> rank(n_, 0.0);
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const TaskId t = *it;
    double best = 0.0;
    for (TaskId s : succs(t)) best = std::max(best, comm(t, s) + rank[s]);
    rank[t] = exec(t) + best;
  }
  std::scoped_lock lock(memo_mu_);
  return rank_memo_.try_emplace(key, std::move(rank)).first->second;
}

const std::vector<TaskId>& StructureCache::heft_order_memo(
    std::uint64_t key, const ExecTimeFn& exec, const CommTimeFn& comm) const {
  {
    std::scoped_lock lock(memo_mu_);
    const auto it = order_memo_.find(key);
    if (it != order_memo_.end()) return it->second;
  }
  const std::vector<double>& rank = upward_rank_memo(key, exec, comm);
  std::vector<TaskId> order(n_);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<TaskId>(i);
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return a < b;
  });
  std::scoped_lock lock(memo_mu_);
  return order_memo_.try_emplace(key, std::move(order)).first->second;
}

}  // namespace cloudwf::dag
