// The standard scientific-workflow benchmark shapes (Bharathi/Juve et al.'s
// characterization, the de-facto suite in the workflow-scheduling
// literature the paper belongs to). These extend the paper's four workflows
// for its future-work item: "custom workflows ... with various properties
// from different workloads".
//
// Structure only (works = 1 s); apply a workload scenario before running.
#pragma once

#include <cstddef>

#include "dag/workflow.hpp"

namespace cloudwf::dag::science {

/// Epigenomics (genome sequencing): fastqSplit fans a lane into `chunks`
/// four-stage pipelines (filterContams -> sol2sanger -> fastq2bfq -> map),
/// re-merged by mapMerge, then maqIndex -> pileup.
/// Tasks: 1 + 4*chunks + 3. Deep parallel chains, single merge point.
[[nodiscard]] Workflow epigenomics(std::size_t chunks = 4);

/// CyberShake (seismic hazard): `sites` ExtractSGT roots each feed
/// `synths_per_site` SeismogramSynthesis tasks; every synthesis feeds one
/// PeakValCalc; all syntheses zip into ZipSeis and all peak values into
/// ZipPSA. Tasks: sites + 2*sites*synths_per_site + 2. Wide and shallow
/// with two aggregation sinks.
[[nodiscard]] Workflow cybershake(std::size_t sites = 2,
                                  std::size_t synths_per_site = 4);

/// LIGO Inspiral (gravitational waves): `groups` x `group_size` TmpltBank
/// tasks, each feeding its own Inspiral; per group a Thinca coincidence
/// joins them, a TrigBank refans into group_size Inspiral2 tasks, and a
/// final Thinca2 joins everything. Tasks:
/// 2*groups*group_size (banks+inspirals) + groups (thinca) + groups
/// (trigbank) + groups*group_size (inspiral2) + 1. Fan-in/fan-out waves.
[[nodiscard]] Workflow ligo(std::size_t groups = 2, std::size_t group_size = 3);

/// SIPHT (sRNA prediction): `patsers` parallel Patser scans concatenated
/// by PatserConcat; four independent analyses (Transterm, Findterm,
/// RNAMotif, Blast) join with the concat into SRNA; SRNA feeds
/// FFN_Parse -> BlastParalogues and, together with the paralogue blast,
/// the final Annotate. Tasks: patsers + 1 + 4 + 1 + 2 + 1. Mostly a wide
/// first level with a sequential analysis tail.
[[nodiscard]] Workflow sipht(std::size_t patsers = 8);

}  // namespace cloudwf::dag::science
