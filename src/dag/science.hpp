// The standard scientific-workflow benchmark shapes (Bharathi/Juve et al.'s
// characterization, the de-facto suite in the workflow-scheduling
// literature the paper belongs to). These extend the paper's four workflows
// for its future-work item: "custom workflows ... with various properties
// from different workloads".
//
// Structure only (works = 1 s); apply a workload scenario before running.
//
// Every builder is parametric, with a closed-form task-count formula and
// published structural invariants (level count, max width, entry/exit
// counts), so instances can be scaled from the paper's tens of tasks to the
// 10^3-10^4 range the Pegasus literature evaluates. `scaled(family, n)`
// picks the smallest parameters whose instance reaches n tasks.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "dag/workflow.hpp"

namespace cloudwf::dag::science {

/// Epigenomics (genome sequencing): fastqSplit fans a lane into `chunks`
/// four-stage pipelines (filterContams -> sol2sanger -> fastq2bfq -> map),
/// re-merged by mapMerge, then maqIndex -> pileup.
/// Tasks: 1 + 4*chunks + 3. Deep parallel chains, single merge point.
[[nodiscard]] Workflow epigenomics(std::size_t chunks = 4);

/// CyberShake (seismic hazard): `sites` ExtractSGT roots each feed
/// `synths_per_site` SeismogramSynthesis tasks; every synthesis feeds one
/// PeakValCalc; all syntheses zip into ZipSeis and all peak values into
/// ZipPSA. Tasks: sites + 2*sites*synths_per_site + 2. Wide and shallow
/// with two aggregation sinks.
[[nodiscard]] Workflow cybershake(std::size_t sites = 2,
                                  std::size_t synths_per_site = 4);

/// LIGO Inspiral (gravitational waves): `groups` x `group_size` TmpltBank
/// tasks, each feeding its own Inspiral; per group a Thinca coincidence
/// joins them, a TrigBank refans into group_size Inspiral2 tasks, and a
/// final Thinca2 joins everything. Tasks:
/// 2*groups*group_size (banks+inspirals) + groups (thinca) + groups
/// (trigbank) + groups*group_size (inspiral2) + 1. Fan-in/fan-out waves.
[[nodiscard]] Workflow ligo(std::size_t groups = 2, std::size_t group_size = 3);

/// SIPHT (sRNA prediction): `patsers` parallel Patser scans concatenated
/// by PatserConcat; four independent analyses (Transterm, Findterm,
/// RNAMotif, Blast) join with the concat into SRNA; SRNA feeds
/// FFN_Parse -> BlastParalogues and, together with the paralogue blast,
/// the final Annotate. Tasks: patsers + 1 + 4 + 1 + 2 + 1. Mostly a wide
/// first level with a sequential analysis tail.
[[nodiscard]] Workflow sipht(std::size_t patsers = 8);

/// Montage (astronomy mosaics): the paper's Fig. 2a shape at parametric
/// width — `projections` mProjectPP roots, a ring + chords of mDiffFit
/// pairs, the mConcatFit -> mBgModel bottleneck, per-projection
/// mBackground, and the final mAdd. Delegates to dag::builders::montage
/// (montage(6) is the paper's 24-task instance). `projections` must be
/// even and >= 4. Tasks: 3*projections + projections/2 + 3.
[[nodiscard]] Workflow montage(std::size_t projections = 6);

/// The five Pegasus-family shapes, in a fixed presentation order.
enum class Family : unsigned char {
  epigenomics = 0,
  cybershake = 1,
  ligo = 2,
  sipht = 3,
  montage = 4,
};

inline constexpr std::array<Family, 5> kAllFamilies = {
    Family::epigenomics, Family::cybershake, Family::ligo, Family::sipht,
    Family::montage};

[[nodiscard]] std::string_view name_of(Family f) noexcept;

/// Inverse of name_of; throws std::invalid_argument for unknown names.
[[nodiscard]] Family family_by_name(std::string_view name);

/// Exact task counts of the builders above, as closed-form functions of
/// their parameters (asserted by tests/dag/science_test.cpp at many sizes).
[[nodiscard]] constexpr std::size_t epigenomics_tasks(std::size_t chunks) noexcept {
  return 4 * chunks + 4;
}
[[nodiscard]] constexpr std::size_t cybershake_tasks(
    std::size_t sites, std::size_t synths_per_site) noexcept {
  return sites * (1 + 2 * synths_per_site) + 2;
}
[[nodiscard]] constexpr std::size_t ligo_tasks(std::size_t groups,
                                               std::size_t group_size) noexcept {
  return groups * (3 * group_size + 2) + 1;
}
[[nodiscard]] constexpr std::size_t sipht_tasks(std::size_t patsers) noexcept {
  return patsers + 9;
}
[[nodiscard]] constexpr std::size_t montage_tasks(std::size_t projections) noexcept {
  return 3 * projections + projections / 2 + 3;
}

/// The parameters `scaled` chose for a target size: the primary knob is the
/// one that grows (chunks / sites / groups / patsers / projections), the
/// secondary stays at the builder's default (cybershake synths_per_site = 4,
/// ligo group_size = 3; 0 for the single-knob families).
struct ScaledParams {
  Family family = Family::epigenomics;
  std::size_t primary = 1;
  std::size_t secondary = 0;
  std::size_t tasks = 0;  ///< exact task count of the resulting instance
};

/// Smallest parameters whose instance has at least `target_tasks` tasks
/// (`target_tasks` >= 1).
[[nodiscard]] ScaledParams scaled_params(Family f, std::size_t target_tasks);

/// Builds the family at `scaled_params(f, target_tasks)`. The instance name
/// is the family name (workflow names stay scenario-key-stable across sizes).
[[nodiscard]] Workflow scaled(Family f, std::size_t target_tasks);

/// Structural invariants of a family instance — the published shape
/// contract the property tests hold every scaled instance to.
struct ShapeInvariants {
  std::size_t tasks = 0;       ///< == the *_tasks formula
  std::size_t levels = 0;      ///< longest-path level count
  std::size_t max_width = 0;   ///< largest level size
  std::size_t entries = 0;     ///< tasks with no predecessors
  std::size_t exits = 0;       ///< tasks with no successors
};

/// Closed-form invariants for the instance `scaled_params` describes.
[[nodiscard]] ShapeInvariants expected_invariants(const ScaledParams& p);

}  // namespace cloudwf::dag::science
