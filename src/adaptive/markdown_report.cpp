#include "adaptive/markdown_report.hpp"

#include <sstream>

#include "adaptive/advisor.hpp"
#include "exp/fig4.hpp"
#include "exp/fig5.hpp"
#include "exp/pareto_front.hpp"
#include "exp/table3.hpp"
#include "exp/table4.hpp"
#include "exp/table5.hpp"
#include "util/strings.hpp"

namespace cloudwf::adaptive {

std::string markdown_report(const exp::ExperimentRunner& runner,
                            const MarkdownReportOptions& options) {
  std::ostringstream os;
  os << "# cloudwf reproduction report\n\n"
     << "Frincu/Genaud/Gossa, *Comparing Provisioning and Scheduling "
        "Strategies for Workflows on Clouds* (CloudFlow @ IPDPS 2013) — "
        "measured on the cloudwf simulator, seed `"
     << runner.base_config().seed << "`.\n\n";

  if (options.include_fig4) {
    os << "## Fig. 4 — makespan gain vs cost loss\n\n"
       << "Reference `OneVMperTask-s` at the origin; the target square is "
          "gain ≥ 0 with loss ≤ 0.\n\n";
    for (const dag::Workflow& wf : exp::paper_workflows()) {
      const exp::Fig4Panel panel = exp::fig4_panel(runner, wf);
      os << "### " << wf.name() << "\n\n" << exp::fig4_table(panel).to_markdown()
         << '\n';
    }
  }

  if (options.include_fig5) {
    os << "## Fig. 5 — idle time (Pareto scenario)\n\n";
    for (const dag::Workflow& wf : exp::paper_workflows()) {
      const exp::Fig5Panel panel = exp::fig5_panel(runner, wf);
      os << "### " << wf.name() << "\n\n" << exp::fig5_table(panel).to_markdown()
         << '\n';
    }
  }

  if (options.include_tables) {
    os << "## Table III — gain/savings classification\n\n"
       << exp::table3_render(exp::table3_all(runner)).to_markdown() << '\n'
       << "## Table IV — savings fluctuation vs stable gain\n\n"
       << exp::table4_render(exp::table4_all(runner)).to_markdown() << '\n'
       << "## Table V — winners per objective\n\n"
       << exp::table5_render(exp::table5_all(runner)).to_markdown() << '\n';
  }

  if (options.include_pareto_front) {
    os << "## (makespan, cost) Pareto fronts\n\n";
    for (const dag::Workflow& wf : exp::paper_workflows()) {
      const auto results = runner.run_all(wf, workload::ScenarioKind::pareto);
      os << "**" << wf.name() << "**: ";
      bool first = true;
      for (const exp::FrontPoint& p : exp::undominated(exp::pareto_front(results))) {
        os << (first ? "" : " → ") << '`' << p.strategy << '`';
        first = false;
      }
      os << "\n\n";
    }
  }

  if (options.include_advisor) {
    os << "## Adaptive advisor (Table V operationalised)\n\n";
    util::TextTable advice(
        {"workflow", "features", "savings", "gain", "balanced"});
    for (const dag::Workflow& base : exp::paper_workflows()) {
      const dag::Workflow wf =
          runner.materialize(base, workload::ScenarioKind::pareto);
      const WorkflowFeatures f = compute_features(wf);
      advice.add_row(
          {wf.name(), adaptive::describe(f),
           advise(f, Objective::savings).strategy_label,
           advise(f, Objective::gain).strategy_label,
           advise(f, Objective::balanced).strategy_label});
    }
    os << advice.to_markdown() << '\n';
  }
  return os.str();
}

}  // namespace cloudwf::adaptive
