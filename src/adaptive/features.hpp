// Structural and workload features of a workflow — the properties the
// paper's Table V keys its recommendations on: how much parallelism, how
// interdependent the levels are, and how heterogeneous/long execution
// times are.
#pragma once

#include <string>

#include "dag/workflow.hpp"
#include "util/units.hpp"

namespace cloudwf::adaptive {

enum class ParallelismClass {
  sequential,        ///< max level width == 1 (Fig. 2d)
  some_parallelism,  ///< modest average width (CSTEM-like)
  much_parallelism,  ///< wide levels (MapReduce/Montage-like)
};

enum class TaskLengthClass {
  short_tasks,   ///< all tasks fit a BTU comfortably (mean exec <= BTU/4)
  long_tasks,    ///< tasks at or beyond the BTU scale (mean exec >= BTU)
  medium_tasks,  ///< in between
};

struct WorkflowFeatures {
  std::size_t tasks = 0;
  std::size_t edges = 0;
  std::size_t levels = 0;
  std::size_t max_width = 0;
  double avg_width = 0;             ///< tasks / levels
  double interdependency = 0;       ///< fraction of edges skipping >= 2 levels
  double exec_time_cv = 0;          ///< coefficient of variation of works
  util::Seconds mean_exec = 0;      ///< mean reference execution time

  /// Communication-to-computation ratio: total cross-VM transfer time over
  /// 1 Gb links divided by total reference execution time. ~0 for the
  /// paper's CPU-intensive scenarios, >> 0.1 for data-intensive workloads.
  double ccr = 0;

  ParallelismClass parallelism = ParallelismClass::sequential;
  bool many_interdependencies = false;  ///< interdependency > 0.1
  bool heterogeneous_tasks = false;     ///< exec_time_cv > 0.25
  bool data_intensive = false;          ///< ccr > 0.1
  TaskLengthClass task_length = TaskLengthClass::medium_tasks;
};

[[nodiscard]] WorkflowFeatures compute_features(const dag::Workflow& wf);

[[nodiscard]] std::string describe(const WorkflowFeatures& f);

}  // namespace cloudwf::adaptive
