// Single-document report generator: everything the reproduction measures,
// as one self-contained Markdown file (tables in GFM, figures as fenced
// data blocks) — the human-readable companion of exp/artifacts.hpp.
#pragma once

#include <string>

#include "exp/experiment.hpp"

namespace cloudwf::adaptive {

struct MarkdownReportOptions {
  bool include_fig4 = true;
  bool include_fig5 = true;
  bool include_tables = true;       ///< Tables III-V
  bool include_pareto_front = true;
  bool include_advisor = true;
};

/// Builds the full report (runs the whole grid; takes a few seconds).
[[nodiscard]] std::string markdown_report(const exp::ExperimentRunner& runner,
                                          const MarkdownReportOptions& options = {});

}  // namespace cloudwf::adaptive
