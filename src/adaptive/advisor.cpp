#include "adaptive/advisor.hpp"

#include "scheduling/baselines.hpp"

namespace cloudwf::adaptive {

namespace {
Advice make(std::string label, std::string why) {
  return Advice{std::move(label), std::move(why)};
}

Advice advise_sequential(const WorkflowFeatures& f, Objective objective) {
  // Table V row 4: "*-s and AllPar1LnSDyn (+ small & heterogeneous tasks)" /
  // "*-l with heterogeneous tasks" / "*-l with short tasks".
  switch (objective) {
    case Objective::savings:
      if (f.heterogeneous_tasks && f.task_length == TaskLengthClass::short_tasks)
        return make("AllPar1LnSDyn",
                    "sequential + small heterogeneous tasks: the dynamic "
                    "level-budgeted SA saves most (Table V row 4)");
      return make("StartParExceed-s",
                  "sequential workflow: any small-instance strategy minimises "
                  "cost; StartParExceed-s packs the chain on one VM");
    case Objective::gain:
      return make("OneVMperTask-l",
                  "sequential + gain target: only faster (large) instances "
                  "shorten a chain (Table V row 4)");
    case Objective::balanced:
      return make("StartParExceed-l",
                  "sequential + short tasks: large instances balance "
                  "gain/savings on a single reused VM (Table V row 4)");
  }
  return make("OneVMperTask-s", "fallback: the reference strategy");
}

Advice advise_some_parallelism(const WorkflowFeatures& f, Objective objective) {
  // Table V row 3 (CSTEM-like).
  switch (objective) {
    case Objective::savings:
      return make("AllPar1LnSDyn",
                  "some parallelism: AllPar1LnSDyn stays in the target square "
                  "(Table V row 3)");
    case Objective::gain:
      return make("AllParNotExceed-m",
                  "some parallelism + heterogeneous tasks: medium instances "
                  "buy gain cheaply (Table V row 3)");
    case Objective::balanced:
      if (f.task_length == TaskLengthClass::long_tasks)
        return make("StartParNotExceed-s",
                    "some parallelism + long tasks: StartParNotExceed-s "
                    "balances gain and savings (Table V row 3)");
      return make("AllParNotExceed-m",
                  "some parallelism + heterogeneous tasks: "
                  "AllParNotExceed-m balances gain and savings (Table V row 3)");
  }
  return make("OneVMperTask-s", "fallback: the reference strategy");
}

Advice advise_much_parallelism(const WorkflowFeatures& f, Objective objective) {
  if (f.many_interdependencies) {
    // Table V row 2 (Montage-like).
    switch (objective) {
      case Objective::savings:
        return make("AllPar1LnSDyn",
                    "much parallelism + many interdependencies: "
                    "AllPar1LnSDyn saves most (Table V row 2)");
      case Objective::gain:
        if (f.task_length == TaskLengthClass::short_tasks)
          return make("AllParExceed-m",
                      "much parallelism + short tasks: AllPar[Not]Exceed-m "
                      "converts parallelism into gain (Table V row 2)");
        return make("StartParExceed-l",
                    "much parallelism + interdependencies: "
                    "StartPar[Not]Exceed-l buys gain (Table V row 2)");
      case Objective::balanced:
        return make(f.heterogeneous_tasks ? "StartParNotExceed-m"
                                          : "StartParNotExceed-s",
                    "Montage-like: StartParNotExceed-[m|s] balances, medium "
                    "for heterogeneous and small for long tasks (Table V row 2)");
    }
  } else {
    // Table V row 1 (MapReduce-like).
    switch (objective) {
      case Objective::savings:
        return make("AllPar1LnSDyn",
                    "much parallelism: AllPar1LnSDyn saves most (Table V row 1)");
      case Objective::gain:
        return make("AllParExceed-m",
                    "much parallelism + small heterogeneous tasks: "
                    "AllParExceed-m wins gain (Table V row 1)");
      case Objective::balanced:
        return make("AllPar1LnSDyn",
                    "much parallelism + heterogeneous tasks: AllPar1LnSDyn "
                    "balances gain and savings (Table V row 1)");
    }
  }
  return make("OneVMperTask-s", "fallback: the reference strategy");
}
}  // namespace

Advice advise(const WorkflowFeatures& features, Objective objective) {
  // Data-intensive workflows override the CPU-intensive Table V rules:
  // "strategies that tend to allocate more VMs are better suited for tasks
  // with large data dependencies where the VM should be as close as
  // possible to the data" (Sect. III-A) — i.e., locality decides. Path
  // clustering (PCH) removes intra-path transfers entirely and a single
  // reused VM removes all of them.
  if (features.data_intensive &&
      features.parallelism != ParallelismClass::sequential) {
    switch (objective) {
      case Objective::savings:
        return make("StartParExceed-s",
                    "data intensive: one reused VM pays no transfers and the "
                    "fewest BTUs (locality rule, Sect. III-A)");
      case Objective::gain:
        return make("PCH-l",
                    "data intensive + gain: path clustering removes "
                    "intra-path transfers; large instances add speed");
      case Objective::balanced:
        return make("PCH-s",
                    "data intensive: path clustering balances transfer "
                    "avoidance with small-instance prices");
    }
  }
  switch (features.parallelism) {
    case ParallelismClass::sequential:
      return advise_sequential(features, objective);
    case ParallelismClass::some_parallelism:
      return advise_some_parallelism(features, objective);
    case ParallelismClass::much_parallelism:
      return advise_much_parallelism(features, objective);
  }
  return make("OneVMperTask-s", "fallback: the reference strategy");
}

scheduling::Strategy recommend(const dag::Workflow& wf, Objective objective) {
  const Advice a = advise(compute_features(wf), objective);
  return scheduling::strategy_by_any_label(a.strategy_label);
}

}  // namespace cloudwf::adaptive
