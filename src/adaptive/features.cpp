#include "adaptive/features.hpp"

#include <sstream>
#include <vector>

#include "dag/graph_algo.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace cloudwf::adaptive {

WorkflowFeatures compute_features(const dag::Workflow& wf) {
  wf.validate();
  WorkflowFeatures f;
  f.tasks = wf.task_count();
  f.edges = wf.edge_count();

  const std::vector<int> levels = dag::task_levels(wf);
  const auto groups = dag::level_groups(wf);
  f.levels = groups.size();
  for (const auto& g : groups) f.max_width = std::max(f.max_width, g.size());
  f.avg_width = static_cast<double>(f.tasks) / static_cast<double>(f.levels);

  std::size_t skipping = 0;
  for (const dag::Edge& e : wf.edges())
    if (levels[e.to] - levels[e.from] >= 2) ++skipping;
  f.interdependency =
      f.edges == 0 ? 0.0
                   : static_cast<double>(skipping) / static_cast<double>(f.edges);

  std::vector<double> works;
  works.reserve(f.tasks);
  for (const dag::Task& t : wf.tasks()) works.push_back(t.work);
  const util::Summary s = util::summarize(works);
  f.mean_exec = s.mean;
  f.exec_time_cv = util::coefficient_of_variation(works);

  // CCR: transfer seconds at the slow-link bandwidth (1 Gb/s = 0.125 GB/s)
  // over total computation seconds.
  util::Seconds transfer_total = 0;
  for (const dag::Edge& e : wf.edges())
    transfer_total += wf.edge_data(e.from, e.to) / 0.125;
  const util::Seconds work_total = wf.total_work();
  f.ccr = work_total > 0 ? transfer_total / work_total : 0.0;

  // Classification thresholds: calibrated on the paper's four shapes so that
  // montage/mapreduce land in much_parallelism, cstem in some_parallelism
  // and the chain in sequential.
  if (f.max_width <= 1)
    f.parallelism = ParallelismClass::sequential;
  else if (f.avg_width >= 3.0)
    f.parallelism = ParallelismClass::much_parallelism;
  else
    f.parallelism = ParallelismClass::some_parallelism;

  f.many_interdependencies = f.interdependency > 0.1;
  f.heterogeneous_tasks = f.exec_time_cv > 0.25;
  f.data_intensive = f.ccr > 0.1;

  if (f.mean_exec <= util::kBtu / 4)
    f.task_length = TaskLengthClass::short_tasks;
  else if (f.mean_exec >= util::kBtu)
    f.task_length = TaskLengthClass::long_tasks;
  else
    f.task_length = TaskLengthClass::medium_tasks;

  return f;
}

std::string describe(const WorkflowFeatures& f) {
  std::ostringstream os;
  os << f.tasks << " tasks, " << f.edges << " edges, " << f.levels
     << " levels (max width " << f.max_width << ", avg "
     << util::format_double(f.avg_width, 2) << "); ";
  switch (f.parallelism) {
    case ParallelismClass::sequential:
      os << "sequential";
      break;
    case ParallelismClass::some_parallelism:
      os << "some parallelism";
      break;
    case ParallelismClass::much_parallelism:
      os << "much parallelism";
      break;
  }
  if (f.many_interdependencies) os << " + many interdependencies";
  if (f.data_intensive)
    os << "; data intensive (CCR " << util::format_double(f.ccr, 2) << ")";
  os << "; exec times " << (f.heterogeneous_tasks ? "heterogeneous" : "uniform")
     << " (cv " << util::format_double(f.exec_time_cv, 2) << "), ";
  switch (f.task_length) {
    case TaskLengthClass::short_tasks:
      os << "short tasks";
      break;
    case TaskLengthClass::medium_tasks:
      os << "medium tasks";
      break;
    case TaskLengthClass::long_tasks:
      os << "long tasks";
      break;
  }
  return os.str();
}

}  // namespace cloudwf::adaptive
