// Adaptive strategy advisor — the paper's conclusion ("these results open
// the way for adaptive scheduling where the SA can be adjusted based on
// workflow properties and user goals") made executable: Table V as a
// decision procedure over WorkflowFeatures.
#pragma once

#include <string>
#include <vector>

#include "adaptive/features.hpp"
#include "scheduling/factory.hpp"

namespace cloudwf::adaptive {

enum class Objective { savings, gain, balanced };

[[nodiscard]] constexpr std::string_view name_of(Objective o) noexcept {
  switch (o) {
    case Objective::savings:
      return "savings";
    case Objective::gain:
      return "gain";
    case Objective::balanced:
      return "balanced";
  }
  return "?";
}

struct Advice {
  std::string strategy_label;  ///< usable with scheduling::strategy_by_label
  std::string rationale;       ///< which Table V rule fired and why
};

/// Table V, row by (parallelism class, interdependency), column by objective,
/// refined by task-length/heterogeneity the way the paper's cells are.
[[nodiscard]] Advice advise(const WorkflowFeatures& features, Objective objective);

/// Convenience: features + advice + ready-to-run strategy in one call.
[[nodiscard]] scheduling::Strategy recommend(const dag::Workflow& wf,
                                             Objective objective);

}  // namespace cloudwf::adaptive
