#include "sim/event_sim.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "obs/trace.hpp"

namespace cloudwf::sim {

namespace {
struct Event {
  util::Seconds time = 0;
  dag::TaskId task = dag::kInvalidTask;

  // Min-heap on time; task id breaks ties deterministically.
  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.task > b.task;
  }
};
}  // namespace

ReplayResult EventSimulator::replay(const dag::Workflow& wf,
                                    const Schedule& schedule) const {
  if (!schedule.complete())
    throw std::logic_error("EventSimulator::replay: incomplete schedule");

  const std::size_t n = wf.task_count();
  const cloud::VmPool& pool = schedule.pool();

  // Per-VM task order, taken from the static placement sequence.
  std::vector<dag::TaskId> prev_on_vm(n, dag::kInvalidTask);
  for (const cloud::Vm& vm : pool.vms()) {
    const auto& ps = vm.placements();
    for (std::size_t i = 1; i < ps.size(); ++i)
      prev_on_vm[ps[i].task] = ps[i - 1].task;
  }

  // Constraint counting: predecessors + optional same-VM predecessor. A
  // task is never ready before its own VM's boot completes (per-(size,
  // region) under a cold-start model; the flat boot time otherwise).
  std::vector<std::size_t> waiting(n, 0);
  std::vector<util::Seconds> ready_at(n, 0.0);
  for (const dag::Task& t : wf.tasks()) {
    const cloud::Vm& vm = pool.vm(schedule.assignment(t.id).vm);
    ready_at[t.id] = platform_->boot_delay(vm.size(), vm.region());
    waiting[t.id] = wf.predecessors(t.id).size();
    if (prev_on_vm[t.id] != dag::kInvalidTask) ++waiting[t.id];
  }

  ReplayResult result;
  result.tasks.assign(n, ReplayedTask{});

  // Boot events first: every used VM boots over [0, boot_delay), strictly
  // before any of its task starts in both time and stream order.
  if (obs::enabled()) {
    for (const cloud::Vm& vm : pool.vms())
      if (vm.used())
        obs::emit_vm_boot(vm.id(), platform_->boot_delay(vm.size(), vm.region()));
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> finish_events;

  auto start_task = [&](dag::TaskId t) {
    const cloud::Vm& vm = pool.vm(schedule.assignment(t).vm);
    const util::Seconds duration = cloud::exec_time(wf.task(t).work, vm.size());
    result.tasks[t].start = ready_at[t];
    result.tasks[t].end = ready_at[t] + duration;
    obs::emit_task_start(t, vm.id(), result.tasks[t].start);
    finish_events.push(Event{result.tasks[t].end, t});
    obs::note_queue_depth(finish_events.size());
  };

  for (const dag::Task& t : wf.tasks())
    if (waiting[t.id] == 0) start_task(t.id);

  // Successor lists for "next on same VM" constraints.
  std::vector<dag::TaskId> next_on_vm(n, dag::kInvalidTask);
  for (const cloud::Vm& vm : pool.vms()) {
    const auto& ps = vm.placements();
    for (std::size_t i = 1; i < ps.size(); ++i)
      next_on_vm[ps[i - 1].task] = ps[i].task;
  }

  auto post_constraint = [&](dag::TaskId t, util::Seconds available) {
    ready_at[t] = std::max(ready_at[t], available);
    if (--waiting[t] == 0) start_task(t);
  };

  while (!finish_events.empty()) {
    const Event ev = finish_events.top();
    finish_events.pop();
    ++result.events_processed;
    result.makespan = std::max(result.makespan, ev.time);

    const cloud::Vm& from_vm = pool.vm(schedule.assignment(ev.task).vm);
    obs::emit_task_finish(ev.task, from_vm.id(), ev.time);
    for (dag::TaskId s : wf.successors(ev.task)) {
      const cloud::Vm& to_vm = pool.vm(schedule.assignment(s).vm);
      const util::Gigabytes data = wf.edge_data(ev.task, s);
      const util::Seconds transfer =
          platform_->transfer_time(data, from_vm, to_vm);
      obs::emit_transfer(ev.task, s, ev.time, transfer, data);
      post_constraint(s, ev.time + transfer);
    }
    if (next_on_vm[ev.task] != dag::kInvalidTask)
      post_constraint(next_on_vm[ev.task], ev.time);
  }

  // Every task must have run: the schedule's VM orders cannot deadlock with
  // the DAG (the validator checks this statically; belt and braces here).
  for (std::size_t i = 0; i < n; ++i) {
    if (result.tasks[i].end <= 0 && wf.task(static_cast<dag::TaskId>(i)).work > 0 &&
        waiting[i] != 0)
      throw std::logic_error(
          "EventSimulator::replay: deadlock — VM order conflicts with DAG order");
  }
  return result;
}

}  // namespace cloudwf::sim
