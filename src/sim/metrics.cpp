#include "sim/metrics.hpp"

#include <stdexcept>
#include <vector>

#include "cloud/vm_billing.hpp"

namespace cloudwf::sim {

ScheduleMetrics compute_metrics(const dag::Workflow& wf, const Schedule& schedule,
                                const cloud::Platform& platform) {
  if (!schedule.complete())
    throw std::logic_error("compute_metrics: schedule is incomplete");

  ScheduleMetrics m;
  m.makespan = schedule.makespan();

  const cloud::VmPool& pool = schedule.pool();
  m.vms_used = pool.used_count();

  util::Seconds paid = 0;
  if (platform.scenario_billing_active()) {
    // Timing-aware billing (cold-start / variable-price scenarios): every
    // aggregate that involves paid time comes from cloud::vm_bill, so the
    // cold-start span and per-BTU repricing show up in cost, idle and
    // utilization alike.
    for (const cloud::Vm& v : pool.vms()) {
      const cloud::VmBill bill = cloud::vm_bill(v, platform);
      m.vm_cost += bill.cost;
      m.total_busy += v.busy_time();
      m.total_btus += bill.btus;
      paid += bill.paid;
    }
    m.total_idle = paid - m.total_busy;
  } else {
    m.vm_cost = pool.rental_cost(platform.regions());
    m.total_idle = pool.total_idle_time();
    for (const cloud::Vm& v : pool.vms()) {
      m.total_busy += v.busy_time();
      m.total_btus += v.btus();
      paid += v.paid_time();
    }
  }
  m.utilization = paid > 0 ? m.total_busy / paid : 0.0;

  // Egress: data leaving a region is billed at the source region's rate.
  std::vector<util::Gigabytes> egress_by_region(platform.regions().size(), 0.0);
  for (const dag::Edge& e : wf.edges()) {
    const Assignment& from = schedule.assignment(e.from);
    const Assignment& to = schedule.assignment(e.to);
    const cloud::Vm& vf = pool.vm(from.vm);
    const cloud::Vm& vt = pool.vm(to.vm);
    if (vf.region() != vt.region())
      egress_by_region[vf.region()] += wf.edge_data(e.from, e.to);
  }
  for (std::size_t r = 0; r < egress_by_region.size(); ++r) {
    m.egress_cost += cloud::egress_cost(egress_by_region[r],
                                        platform.region(static_cast<cloud::RegionId>(r)));
  }
  m.total_cost = m.vm_cost + m.egress_cost;
  return m;
}

GainLoss relative_to_reference(const ScheduleMetrics& strategy,
                               const ScheduleMetrics& reference) {
  if (reference.makespan <= 0)
    throw std::invalid_argument("relative_to_reference: reference makespan <= 0");
  if (reference.total_cost <= util::Money{})
    throw std::invalid_argument("relative_to_reference: reference cost <= 0");

  GainLoss gl;
  gl.gain_pct = (reference.makespan - strategy.makespan) / reference.makespan * 100.0;
  gl.loss_pct = static_cast<double>((strategy.total_cost - reference.total_cost).micros()) /
                static_cast<double>(reference.total_cost.micros()) * 100.0;
  return gl;
}

}  // namespace cloudwf::sim
