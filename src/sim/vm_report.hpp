// Per-VM accounting report: one row per rented VM — size, region, sessions,
// BTUs, busy/idle seconds, utilization, cost — the drill-down behind a
// schedule's headline metrics.
#pragma once

#include "cloud/platform.hpp"
#include "sim/schedule.hpp"
#include "util/table.hpp"

namespace cloudwf::sim {

struct VmReportRow {
  cloud::VmId vm = cloud::kInvalidVm;
  cloud::InstanceSize size = cloud::InstanceSize::small;
  cloud::RegionId region = 0;
  std::size_t tasks = 0;
  std::size_t sessions = 0;
  std::int64_t btus = 0;
  util::Seconds busy = 0;
  util::Seconds idle = 0;
  double utilization = 0;  ///< busy / paid, 0 for unused VMs
  util::Money cost;
};

/// One row per VM (unused VMs included, flagged by tasks == 0).
[[nodiscard]] std::vector<VmReportRow> vm_report(const Schedule& schedule,
                                                 const cloud::Platform& platform);

[[nodiscard]] util::TextTable vm_report_table(
    const std::vector<VmReportRow>& rows);

}  // namespace cloudwf::sim
