// Elastic runtime simulator: dynamic VM lifecycle with queue-driven
// auto-scaling.
//
// The paper's schedulers are static planners; its related work (Mao &
// Humphrey's auto-scaling, the elastic BoT schedulers of Gutierrez-Garcia &
// Sim and Michon et al.) instead runs an *elastic* pool: ready tasks enter
// a queue, idle VMs pull work, the pool grows when the queue backs up, and
// VMs that reach a paid-BTU boundary idle are released. This simulator
// provides that runtime so the static strategies can be compared against a
// reactive cloud-native baseline on the same workloads.
//
// Mechanics (discrete-event):
//  - a task becomes ready when all predecessors finish (transfer times are
//    charged on the task's start, against its actual producers);
//  - ready tasks queue in descending upward-rank order (HEFT priority);
//  - a VM finishing a task immediately pulls the head of the queue;
//  - on every enqueue, if queued > scale_up_queue_per_vm x active VMs and
//    the pool is below max_pool, a new VM is provisioned (available after
//    the platform's boot time);
//  - a VM idle at its paid-BTU boundary is released (session billing).
#pragma once

#include "cloud/platform.hpp"
#include "dag/workflow.hpp"
#include "sim/metrics.hpp"
#include "sim/schedule.hpp"

namespace cloudwf::sim {

struct ElasticPolicy {
  cloud::InstanceSize size = cloud::InstanceSize::small;

  /// Pool size ceiling (>= 1). The pool starts with `initial_vms`.
  std::size_t max_pool = 32;
  std::size_t initial_vms = 1;

  /// Scale up when queued tasks exceed this many per active VM.
  double scale_up_queue_per_vm = 1.0;
};

struct ElasticResult {
  Schedule schedule;           ///< completed execution (for metrics/validation)
  util::Seconds makespan = 0;
  std::size_t vms_provisioned = 0;  ///< total VMs ever started
  std::size_t peak_pool = 0;        ///< max simultaneously provisioned
  std::size_t scale_ups = 0;        ///< reactive provisioning decisions
};

/// Runs `wf` through the elastic runtime. The returned schedule passes
/// sim::validate (a test asserts it for every paper workload).
[[nodiscard]] ElasticResult run_elastic(const dag::Workflow& wf,
                                        const cloud::Platform& platform,
                                        const ElasticPolicy& policy = {});

}  // namespace cloudwf::sim
