// Discrete-event replay of a static schedule.
//
// The schedulers construct start/finish times analytically (like the paper's
// simulator). EventSimulator re-executes the same task-to-VM mapping as an
// event-driven simulation: tasks start as soon as (a) every predecessor's
// data has arrived and (b) the VM has finished the previous task on its
// timeline and (c) the VM has booted. With zero boot time the replayed times
// must be <= the static ones (the replay is work-conserving) and, for the
// paper's append-only policies, exactly equal — a cross-check the test suite
// applies to every scheduler on every workflow.
#pragma once

#include <vector>

#include "cloud/platform.hpp"
#include "dag/workflow.hpp"
#include "sim/schedule.hpp"

namespace cloudwf::sim {

struct ReplayedTask {
  util::Seconds start = 0;
  util::Seconds end = 0;
};

struct ReplayResult {
  std::vector<ReplayedTask> tasks;  ///< indexed by TaskId
  util::Seconds makespan = 0;
  std::size_t events_processed = 0;
};

class EventSimulator {
 public:
  explicit EventSimulator(const cloud::Platform& platform) : platform_(&platform) {}

  /// Replays `schedule`'s mapping (VM choice + per-VM task order) for `wf`.
  /// The schedule must be complete and structurally valid.
  [[nodiscard]] ReplayResult replay(const dag::Workflow& wf,
                                    const Schedule& schedule) const;

 private:
  const cloud::Platform* platform_;
};

}  // namespace cloudwf::sim
