// Fault injection for schedule replay.
//
// Real IaaS VMs fail; static schedules do not plan for it. This module
// replays a schedule under a Poisson per-VM failure process: an attempt
// that fails is detected after a delay and the task restarts on the same
// VM. Successor tasks (and same-VM queue order) shift accordingly, so the
// measured makespan quantifies each provisioning strategy's exposure —
// OneVMperTask's 24 single-task VMs see more machine-hours of risk than
// StartParExceed's one, another face of the idle-time observation in the
// paper's Sect. V.
#pragma once

#include "sim/event_sim.hpp"
#include "util/rng.hpp"

namespace cloudwf::sim {

struct FaultModel {
  /// Poisson failure rate per VM-hour of *execution* (attempt time).
  double failures_per_vm_hour = 0.0;

  /// Time from failure to restart (detection + reprovisioning on the spot).
  util::Seconds detection_delay = 30.0;

  /// Retry cap per task; the final attempt is forced to succeed so replay
  /// always terminates (the cap bounds the pessimism, not correctness).
  std::size_t max_retries_per_task = 16;
};

struct FaultyReplayResult {
  std::vector<ReplayedTask> tasks;   ///< final (successful) attempt times
  util::Seconds makespan = 0;
  std::size_t failures = 0;          ///< total failed attempts
  util::Seconds time_lost = 0;       ///< wasted attempt time + delays
};

/// Replays `schedule`'s mapping with failures sampled from `model` via
/// `rng`. With failures_per_vm_hour == 0 this reproduces
/// EventSimulator::replay exactly.
[[nodiscard]] FaultyReplayResult replay_with_faults(const dag::Workflow& wf,
                                                    const Schedule& schedule,
                                                    const cloud::Platform& platform,
                                                    const FaultModel& model,
                                                    util::Rng& rng);

}  // namespace cloudwf::sim
