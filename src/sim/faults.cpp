#include "sim/faults.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>

namespace cloudwf::sim {

namespace {
struct Event {
  util::Seconds time = 0;
  dag::TaskId task = dag::kInvalidTask;
  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.task > b.task;
  }
};
}  // namespace

FaultyReplayResult replay_with_faults(const dag::Workflow& wf,
                                      const Schedule& schedule,
                                      const cloud::Platform& platform,
                                      const FaultModel& model, util::Rng& rng) {
  if (!schedule.complete())
    throw std::logic_error("replay_with_faults: incomplete schedule");
  if (model.failures_per_vm_hour < 0)
    throw std::invalid_argument("replay_with_faults: negative failure rate");

  const std::size_t n = wf.task_count();
  const cloud::VmPool& pool = schedule.pool();

  FaultyReplayResult result;
  result.tasks.assign(n, ReplayedTask{});

  // Per-task effective busy time: failed attempts (each aborted at a
  // uniform point) plus detection delays plus the final successful run.
  // Precomputable because attempts depend only on the task, not the clock.
  std::vector<util::Seconds> effective(n, 0);
  for (const dag::Task& t : wf.tasks()) {
    const cloud::Vm& vm = pool.vm(schedule.assignment(t.id).vm);
    const util::Seconds duration = cloud::exec_time(t.work, vm.size());
    const double p_fail =
        1.0 - std::exp(-model.failures_per_vm_hour * duration / 3600.0);
    util::Seconds acc = 0;
    for (std::size_t attempt = 0; attempt < model.max_retries_per_task;
         ++attempt) {
      if (!rng.chance(p_fail)) break;  // this attempt succeeds
      ++result.failures;
      const util::Seconds wasted = rng.uniform() * duration;
      acc += wasted + model.detection_delay;
      result.time_lost += wasted + model.detection_delay;
    }
    effective[t.id] = acc + duration;
  }

  // Same event machinery as EventSimulator, with effective durations.
  std::vector<dag::TaskId> prev_on_vm(n, dag::kInvalidTask);
  std::vector<dag::TaskId> next_on_vm(n, dag::kInvalidTask);
  for (const cloud::Vm& vm : pool.vms()) {
    const auto& ps = vm.placements();
    for (std::size_t i = 1; i < ps.size(); ++i) {
      prev_on_vm[ps[i].task] = ps[i - 1].task;
      next_on_vm[ps[i - 1].task] = ps[i].task;
    }
  }

  std::vector<std::size_t> waiting(n, 0);
  std::vector<util::Seconds> ready_at(n, 0.0);
  for (const dag::Task& t : wf.tasks()) {
    const cloud::Vm& vm = pool.vm(schedule.assignment(t.id).vm);
    ready_at[t.id] = platform.boot_delay(vm.size(), vm.region());
    waiting[t.id] = wf.predecessors(t.id).size();
    if (prev_on_vm[t.id] != dag::kInvalidTask) ++waiting[t.id];
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> finish_events;
  auto start_task = [&](dag::TaskId t) {
    result.tasks[t].start = ready_at[t];
    result.tasks[t].end = ready_at[t] + effective[t];
    finish_events.push(Event{result.tasks[t].end, t});
  };
  for (const dag::Task& t : wf.tasks())
    if (waiting[t.id] == 0) start_task(t.id);

  auto post_constraint = [&](dag::TaskId t, util::Seconds available) {
    ready_at[t] = std::max(ready_at[t], available);
    if (--waiting[t] == 0) start_task(t);
  };

  while (!finish_events.empty()) {
    const Event ev = finish_events.top();
    finish_events.pop();
    result.makespan = std::max(result.makespan, ev.time);

    const cloud::Vm& from_vm = pool.vm(schedule.assignment(ev.task).vm);
    for (dag::TaskId s : wf.successors(ev.task)) {
      const cloud::Vm& to_vm = pool.vm(schedule.assignment(s).vm);
      const util::Seconds transfer =
          platform.transfer_time(wf.edge_data(ev.task, s), from_vm, to_vm);
      post_constraint(s, ev.time + transfer);
    }
    if (next_on_vm[ev.task] != dag::kInvalidTask)
      post_constraint(next_on_vm[ev.task], ev.time);
  }
  return result;
}

}  // namespace cloudwf::sim
