#include "sim/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace cloudwf::sim {

namespace {
char task_letter(dag::TaskId t) {
  // a..z then A..Z then '+' for very large workflows.
  if (t < 26) return static_cast<char>('a' + t);
  if (t < 52) return static_cast<char>('A' + (t - 26));
  return '+';
}
}  // namespace

std::string render_gantt(const dag::Workflow& wf, const Schedule& schedule,
                         const GanttOptions& opts) {
  if (!schedule.complete())
    throw std::logic_error("render_gantt: incomplete schedule");
  if (opts.width < 10) throw std::invalid_argument("render_gantt: width < 10");

  const util::Seconds makespan = schedule.makespan();
  const double scale =
      makespan > 0 ? static_cast<double>(opts.width) / makespan : 1.0;
  const auto column = [&](util::Seconds t) {
    return std::min(opts.width - 1,
                    static_cast<std::size_t>(t * scale));
  };

  std::ostringstream os;
  os << "makespan " << util::format_double(makespan, 1) << " s, one column ~ "
     << util::format_double(makespan / static_cast<double>(opts.width), 1)
     << " s\n";

  for (const cloud::Vm& vm : schedule.pool().vms()) {
    if (!vm.used()) continue;
    std::string row(opts.width, ' ');
    // Paid-idle first so placements overwrite it.
    for (const cloud::Vm::Session& s : vm.sessions()) {
      const util::Seconds paid_end = std::min(s.paid_end(), makespan);
      for (std::size_t c = column(s.start); c <= column(paid_end); ++c)
        row[c] = '.';
    }
    for (const cloud::Placement& p : vm.placements()) {
      const std::size_t from = column(p.start);
      const std::size_t to = column(std::max(p.start, p.end - util::kTimeEpsilon));
      for (std::size_t c = from; c <= to; ++c) row[c] = '#';
      row[from] = task_letter(p.task);
    }
    os << "VM" << vm.id() << ' ' << cloud::suffix_of(vm.size())
       << (vm.id() < 10 ? "  |" : " |") << row << "|\n";
  }

  if (opts.show_task_names) {
    os << "tasks:";
    for (const dag::Task& t : wf.tasks()) {
      os << ' ' << task_letter(t.id) << '=' << t.name;
      if (t.id >= 51 && wf.task_count() > 52) {
        os << " (+" << wf.task_count() - 52 << " more)";
        break;
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string render_gantt_svg(const dag::Workflow& wf, const Schedule& schedule) {
  if (!schedule.complete())
    throw std::logic_error("render_gantt_svg: incomplete schedule");

  constexpr double kChartWidth = 960.0;
  constexpr double kLaneHeight = 26.0;
  constexpr double kLanePad = 6.0;
  constexpr double kLeftMargin = 70.0;
  constexpr double kTopMargin = 30.0;

  std::vector<const cloud::Vm*> lanes;
  for (const cloud::Vm& vm : schedule.pool().vms())
    if (vm.used()) lanes.push_back(&vm);

  const util::Seconds makespan = std::max(schedule.makespan(), 1.0);
  const double sx = kChartWidth / makespan;
  const double height =
      kTopMargin + static_cast<double>(lanes.size()) * (kLaneHeight + kLanePad) +
      30.0;

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << kLeftMargin + kChartWidth + 20 << "\" height=\"" << height
     << "\" font-family=\"sans-serif\" font-size=\"11\">\n";

  // Hour grid.
  for (double t = 0; t <= makespan; t += util::kBtu) {
    const double x = kLeftMargin + t * sx;
    os << "  <line x1=\"" << x << "\" y1=\"" << kTopMargin - 8 << "\" x2=\"" << x
       << "\" y2=\"" << height - 24 << "\" stroke=\"#dddddd\"/>\n"
       << "  <text x=\"" << x + 2 << "\" y=\"" << kTopMargin - 12 << "\">"
       << util::format_double(t / 3600.0, 0) << "h</text>\n";
  }

  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    const cloud::Vm& vm = *lanes[lane];
    const double y =
        kTopMargin + static_cast<double>(lane) * (kLaneHeight + kLanePad);
    os << "  <text x=\"4\" y=\"" << y + kLaneHeight * 0.7 << "\">VM" << vm.id()
       << " (" << cloud::suffix_of(vm.size()) << ")</text>\n";

    // Paid windows (sessions), shaded, clipped at the makespan.
    for (const cloud::Vm::Session& s : vm.sessions()) {
      const double x0 = kLeftMargin + s.start * sx;
      const double x1 =
          kLeftMargin + std::min(s.paid_end(), makespan) * sx;
      os << "  <rect x=\"" << x0 << "\" y=\"" << y << "\" width=\"" << x1 - x0
         << "\" height=\"" << kLaneHeight
         << "\" fill=\"#f2f2f2\" stroke=\"#cccccc\"/>\n";
    }
    // Placements.
    for (const cloud::Placement& p : vm.placements()) {
      const double x0 = kLeftMargin + p.start * sx;
      const double w = std::max(1.0, (p.end - p.start) * sx);
      os << "  <rect x=\"" << x0 << "\" y=\"" << y + 3 << "\" width=\"" << w
         << "\" height=\"" << kLaneHeight - 6
         << "\" fill=\"#4a90d9\" stroke=\"#2c5a8c\"><title>"
         << wf.task(p.task).name << " [" << util::format_double(p.start, 1)
         << ", " << util::format_double(p.end, 1) << ")s</title></rect>\n";
    }
  }
  os << "</svg>\n";
  return os.str();
}

std::string gantt_csv(const dag::Workflow& wf, const Schedule& schedule) {
  if (!schedule.complete())
    throw std::logic_error("gantt_csv: incomplete schedule");
  std::ostringstream os;
  os << "vm,size,region,session,task,start,end\n";
  for (const cloud::Vm& vm : schedule.pool().vms()) {
    const std::vector<cloud::Vm::Session> sessions = vm.sessions();
    for (const cloud::Placement& p : vm.placements()) {
      // Which session does this placement belong to? The last one whose
      // start is <= the placement's start.
      std::size_t session = 0;
      for (std::size_t s = 0; s < sessions.size(); ++s)
        if (sessions[s].start <= p.start + util::kTimeEpsilon) session = s;
      os << vm.id() << ',' << cloud::name_of(vm.size()) << ','
         << static_cast<int>(vm.region()) << ',' << session << ','
         << wf.task(p.task).name << ',' << util::format_double(p.start, 3) << ','
         << util::format_double(p.end, 3) << '\n';
    }
  }
  return os.str();
}

}  // namespace cloudwf::sim
