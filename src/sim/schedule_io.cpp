#include "sim/schedule_io.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace cloudwf::sim {

std::string serialize_schedule(const dag::Workflow& wf, const Schedule& schedule) {
  std::ostringstream os;
  os << "schedule " << wf.name() << '\n';
  for (const cloud::Vm& vm : schedule.pool().vms()) {
    os << "vm " << vm.id() << ' ' << cloud::name_of(vm.size()) << ' '
       << static_cast<int>(vm.region()) << '\n';
  }
  // Placements per VM in timeline order (required by the loader).
  for (const cloud::Vm& vm : schedule.pool().vms()) {
    for (const cloud::Placement& p : vm.placements()) {
      os << "place " << wf.task(p.task).name << ' ' << vm.id() << ' '
         << util::format_double(p.start, 6) << ' '
         << util::format_double(p.end, 6) << '\n';
    }
  }
  return os.str();
}

namespace {
[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("schedule parse error at line " +
                           std::to_string(line_no) + ": " + what);
}
}  // namespace

Schedule parse_schedule(const dag::Workflow& wf, std::istream& in) {
  Schedule schedule(wf);
  // VM ids in the file must be dense and in rent order.
  std::size_t vms_declared = 0;
  bool named = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = util::trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    std::istringstream ls{std::string(stripped)};
    std::string kw;
    ls >> kw;

    if (kw == "schedule") {
      std::string nm;
      ls >> nm;
      if (nm != wf.name())
        fail(line_no, "schedule is for workflow '" + nm + "', expected '" +
                          wf.name() + "'");
      named = true;
    } else if (kw == "vm") {
      std::size_t id = 0;
      std::string size_name;
      int region = -1;
      if (!(ls >> id >> size_name >> region))
        fail(line_no, "vm needs <id> <size> <region>");
      if (id != vms_declared) fail(line_no, "vm ids must be dense and ordered");
      const auto size = cloud::parse_size(size_name);
      if (!size) fail(line_no, "unknown size '" + size_name + "'");
      if (region < 0 ||
          static_cast<std::size_t>(region) >= cloud::ec2_regions().size())
        fail(line_no, "region out of range");
      (void)schedule.rent(*size, static_cast<cloud::RegionId>(region));
      ++vms_declared;
    } else if (kw == "place") {
      std::string task_name;
      std::size_t vm_id = 0;
      double start = 0;
      double end = 0;
      if (!(ls >> task_name >> vm_id >> start >> end))
        fail(line_no, "place needs <task> <vm> <start> <end>");
      // operator>> accepts "inf"/"nan"; a NaN interval slips past Vm::place's
      // comparisons (all false on NaN) and reaches btus_for, where
      // ceil(NaN) -> int64 is undefined. Refuse non-finite times here.
      if (!std::isfinite(start) || !std::isfinite(end))
        fail(line_no, "non-finite placement time");
      if (vm_id >= vms_declared) fail(line_no, "placement on undeclared VM");
      try {
        schedule.assign(wf.task_by_name(task_name),
                        static_cast<cloud::VmId>(vm_id), start, end);
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown keyword '" + kw + "'");
    }
  }
  if (!named) throw std::runtime_error("schedule parse error: missing header");
  if (!schedule.complete())
    throw std::runtime_error("schedule parse error: not all tasks placed");
  return schedule;
}

Schedule parse_schedule_string(const dag::Workflow& wf, const std::string& text) {
  std::istringstream is(text);
  return parse_schedule(wf, is);
}

void save_schedule(const dag::Workflow& wf, const Schedule& schedule,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_schedule: cannot open " + path);
  out << serialize_schedule(wf, schedule);
}

Schedule load_schedule(const dag::Workflow& wf, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_schedule: cannot open " + path);
  return parse_schedule(wf, in);
}

}  // namespace cloudwf::sim
