#include "sim/schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace cloudwf::sim {

cloud::VmId Schedule::rent(cloud::InstanceSize size, cloud::RegionId region) {
  const cloud::VmId id = pool_.rent(size, region).id();
  if (obs::enabled())
    obs::emit_vm_rent(id, 0,
                      std::string(cloud::suffix_of(size)) + ", region " +
                          std::to_string(region));
  return id;
}

void Schedule::assign(dag::TaskId task, cloud::VmId vm, util::Seconds start,
                      util::Seconds end) {
  if (task >= assignments_.size())
    throw std::out_of_range("Schedule::assign: bad task id");
  if (assignments_[task].valid())
    throw std::logic_error("Schedule::assign: task already assigned");
  // Placements go through the pool so its reuse index stays incremental
  // (const access beforehand — the mutable vm() accessor would mark the
  // index dirty and force a rebuild on the next policy query).
  if (!obs::enabled()) {
    pool_.place(vm, task, start, end);  // validates the interval
  } else {
    // Canonical placement event: reuse flag + BTU delta come from the VM's
    // session state around the placement, so the trace counters are a
    // second witness to compute_metrics' aggregates for every scheduler.
    const cloud::Vm& v = std::as_const(pool_).vm(vm);
    const bool reused = v.used();
    const std::int64_t btus_before = v.btus();
    pool_.place(vm, task, start, end);
    obs::emit_task_place(task, vm, start, end, reused,
                         static_cast<double>(v.btus() - btus_before));
  }
  assignments_[task] = Assignment{vm, start, end};
}

bool Schedule::is_assigned(dag::TaskId t) const {
  if (t >= assignments_.size())
    throw std::out_of_range("Schedule::is_assigned: bad task id");
  return assignments_[t].valid();
}

const Assignment& Schedule::assignment(dag::TaskId t) const {
  if (t >= assignments_.size())
    throw std::out_of_range("Schedule::assignment: bad task id");
  if (!assignments_[t].valid())
    throw std::logic_error("Schedule::assignment: task not assigned");
  return assignments_[t];
}

std::size_t Schedule::assigned_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(assignments_.begin(), assignments_.end(),
                    [](const Assignment& a) { return a.valid(); }));
}

util::Seconds Schedule::makespan() const noexcept {
  util::Seconds ms = 0;
  for (const Assignment& a : assignments_)
    if (a.valid()) ms = std::max(ms, a.end);
  return ms;
}

void Schedule::clear_assignments() noexcept {
  for (Assignment& a : assignments_) a = Assignment{};
  pool_.clear_placements();
}

}  // namespace cloudwf::sim
