#include "sim/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace cloudwf::sim {

void Schedule::assign(dag::TaskId task, cloud::VmId vm, util::Seconds start,
                      util::Seconds end) {
  if (task >= assignments_.size())
    throw std::out_of_range("Schedule::assign: bad task id");
  if (assignments_[task].valid())
    throw std::logic_error("Schedule::assign: task already assigned");
  pool_.vm(vm).place(task, start, end);  // validates the interval
  assignments_[task] = Assignment{vm, start, end};
}

bool Schedule::is_assigned(dag::TaskId t) const {
  if (t >= assignments_.size())
    throw std::out_of_range("Schedule::is_assigned: bad task id");
  return assignments_[t].valid();
}

const Assignment& Schedule::assignment(dag::TaskId t) const {
  if (t >= assignments_.size())
    throw std::out_of_range("Schedule::assignment: bad task id");
  if (!assignments_[t].valid())
    throw std::logic_error("Schedule::assignment: task not assigned");
  return assignments_[t];
}

std::size_t Schedule::assigned_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(assignments_.begin(), assignments_.end(),
                    [](const Assignment& a) { return a.valid(); }));
}

util::Seconds Schedule::makespan() const noexcept {
  util::Seconds ms = 0;
  for (const Assignment& a : assignments_)
    if (a.valid()) ms = std::max(ms, a.end);
  return ms;
}

void Schedule::clear_assignments() noexcept {
  for (Assignment& a : assignments_) a = Assignment{};
  pool_.clear_placements();
}

}  // namespace cloudwf::sim
