// Gantt-chart rendering of schedules: an ASCII timeline per VM (terminal
// inspection) and a CSV form (spreadsheet/plotting). Sessions and idle gaps
// are visible, which makes provisioning-policy differences tangible.
#pragma once

#include <string>

#include "dag/workflow.hpp"
#include "sim/schedule.hpp"

namespace cloudwf::sim {

struct GanttOptions {
  std::size_t width = 100;      ///< characters for the time axis
  bool show_task_names = true;  ///< legend mapping letters to task names
};

/// ASCII Gantt chart: one row per VM, '#'-blocks for placements (labelled
/// a, b, c, ... in task-id order), '.' for paid-but-idle time within a
/// session, spaces elsewhere. The schedule must be complete.
[[nodiscard]] std::string render_gantt(const dag::Workflow& wf,
                                       const Schedule& schedule,
                                       const GanttOptions& opts = {});

/// CSV rows: vm,size,region,session,task,start,end.
[[nodiscard]] std::string gantt_csv(const dag::Workflow& wf,
                                    const Schedule& schedule);

/// Self-contained SVG Gantt chart: one lane per used VM, task rectangles
/// with name tooltips, paid-idle shading, a time axis in hours. Suitable
/// for embedding in reports.
[[nodiscard]] std::string render_gantt_svg(const dag::Workflow& wf,
                                           const Schedule& schedule);

}  // namespace cloudwf::sim
