#include "sim/vm_report.hpp"

#include "util/strings.hpp"

namespace cloudwf::sim {

std::vector<VmReportRow> vm_report(const Schedule& schedule,
                                   const cloud::Platform& platform) {
  std::vector<VmReportRow> rows;
  for (const cloud::Vm& vm : schedule.pool().vms()) {
    VmReportRow row;
    row.vm = vm.id();
    row.size = vm.size();
    row.region = vm.region();
    row.tasks = vm.placements().size();
    row.sessions = vm.session_count();
    row.btus = vm.btus();
    row.busy = vm.busy_time();
    row.idle = vm.idle_time();
    row.utilization = vm.paid_time() > 0 ? row.busy / vm.paid_time() : 0.0;
    row.cost = vm.cost(platform.region(vm.region()));
    rows.push_back(std::move(row));
  }
  return rows;
}

util::TextTable vm_report_table(const std::vector<VmReportRow>& rows) {
  util::TextTable t({"vm", "size", "region", "tasks", "sessions", "BTUs",
                     "busy (s)", "idle (s)", "util", "cost"});
  for (const VmReportRow& r : rows) {
    t.add_row({std::to_string(r.vm), std::string(cloud::name_of(r.size)),
               std::to_string(r.region), std::to_string(r.tasks),
               std::to_string(r.sessions), std::to_string(r.btus),
               util::format_double(r.busy, 0), util::format_double(r.idle, 0),
               util::format_double(100.0 * r.utilization, 1) + "%",
               r.cost.to_string()});
  }
  return t;
}

}  // namespace cloudwf::sim
