// Independent feasibility checker for schedules.
//
// Deliberately re-derives every constraint from the raw data (it does not
// trust Vm/Schedule invariants), so scheduler bugs cannot hide behind the
// container's own bookkeeping. Used pervasively by the tests and available
// to library users.
#pragma once

#include <string>
#include <vector>

#include "cloud/platform.hpp"
#include "dag/workflow.hpp"
#include "sim/schedule.hpp"

namespace cloudwf::sim {

/// Checks a schedule and returns human-readable violation descriptions
/// (empty means feasible):
///  - every task assigned exactly once, to an existing VM;
///  - task duration equals work / speedup of its VM's size;
///  - placements on one VM do not overlap;
///  - the task table and the VM timelines agree;
///  - precedence: start(t) >= finish(p) + transfer_time(p -> t) for every
///    edge (p, t), with transfer evaluated on the assigned endpoints;
///  - no negative times.
[[nodiscard]] std::vector<std::string> validate(const dag::Workflow& wf,
                                                const Schedule& schedule,
                                                const cloud::Platform& platform);

/// Throws std::logic_error listing all violations if the schedule is infeasible.
void validate_or_throw(const dag::Workflow& wf, const Schedule& schedule,
                       const cloud::Platform& platform);

}  // namespace cloudwf::sim
