#include "sim/validator.hpp"

#include <algorithm>
#include <sstream>

namespace cloudwf::sim {

namespace {
std::string describe_task(const dag::Workflow& wf, dag::TaskId t) {
  return "task '" + wf.task(t).name + "' (#" + std::to_string(t) + ")";
}
}  // namespace

std::vector<std::string> validate(const dag::Workflow& wf, const Schedule& schedule,
                                  const cloud::Platform& platform) {
  std::vector<std::string> issues;
  auto complain = [&issues](const std::string& msg) { issues.push_back(msg); };

  if (schedule.task_count() != wf.task_count()) {
    complain("schedule sized for " + std::to_string(schedule.task_count()) +
             " tasks but workflow has " + std::to_string(wf.task_count()));
    return issues;
  }

  const cloud::VmPool& pool = schedule.pool();

  // Assignment sanity and duration correctness.
  for (const dag::Task& t : wf.tasks()) {
    if (!schedule.is_assigned(t.id)) {
      complain(describe_task(wf, t.id) + " is unassigned");
      continue;
    }
    const Assignment& a = schedule.assignment(t.id);
    if (a.vm >= pool.size()) {
      complain(describe_task(wf, t.id) + " assigned to nonexistent VM " +
               std::to_string(a.vm));
      continue;
    }
    if (a.start < -util::kTimeEpsilon)
      complain(describe_task(wf, t.id) + " starts before time 0");
    const cloud::Vm& vm = pool.vm(a.vm);
    const util::Seconds expected = cloud::exec_time(t.work, vm.size());
    if (!util::time_eq(a.duration(), expected)) {
      std::ostringstream os;
      os << describe_task(wf, t.id) << " duration " << a.duration()
         << "s does not match work/speedup = " << expected << "s on "
         << name_of(vm.size());
      complain(os.str());
    }
  }
  if (!issues.empty()) return issues;  // later checks need valid assignments

  // Task table vs VM timelines: every placement mirrors an assignment and
  // vice versa.
  std::size_t placement_count = 0;
  for (const cloud::Vm& vm : pool.vms()) {
    for (const cloud::Placement& p : vm.placements()) {
      ++placement_count;
      const Assignment& a = schedule.assignment(p.task);
      if (a.vm != vm.id() || !util::time_eq(a.start, p.start) ||
          !util::time_eq(a.end, p.end))
        complain(describe_task(wf, p.task) + " placement on VM " +
                 std::to_string(vm.id()) + " disagrees with the task table");
    }
  }
  if (placement_count != wf.task_count())
    complain("VM timelines hold " + std::to_string(placement_count) +
             " placements for " + std::to_string(wf.task_count()) + " tasks");

  // Exclusivity: placements on one VM must not overlap (sorted by start).
  for (const cloud::Vm& vm : pool.vms()) {
    std::vector<cloud::Placement> ps(vm.placements());
    std::sort(ps.begin(), ps.end(),
              [](const cloud::Placement& x, const cloud::Placement& y) {
                return x.start < y.start;
              });
    for (std::size_t i = 1; i < ps.size(); ++i) {
      if (util::time_gt(ps[i - 1].end, ps[i].start))
        complain("VM " + std::to_string(vm.id()) + ": " +
                 describe_task(wf, ps[i - 1].task) + " overlaps " +
                 describe_task(wf, ps[i].task));
    }
  }

  // Precedence with transfers on the assigned endpoints.
  for (const dag::Edge& e : wf.edges()) {
    const Assignment& from = schedule.assignment(e.from);
    const Assignment& to = schedule.assignment(e.to);
    const util::Seconds transfer = platform.transfer_time(
        wf.edge_data(e.from, e.to), pool.vm(from.vm), pool.vm(to.vm));
    if (util::time_gt(from.end + transfer, to.start)) {
      std::ostringstream os;
      os << describe_task(wf, e.to) << " starts at " << to.start << "s but "
         << describe_task(wf, e.from) << " finishes at " << from.end
         << "s + transfer " << transfer << "s";
      complain(os.str());
    }
  }

  return issues;
}

void validate_or_throw(const dag::Workflow& wf, const Schedule& schedule,
                       const cloud::Platform& platform) {
  const std::vector<std::string> issues = validate(wf, schedule, platform);
  if (issues.empty()) return;
  std::ostringstream os;
  os << "infeasible schedule for workflow '" << wf.name() << "':";
  for (const std::string& i : issues) os << "\n  - " << i;
  throw std::logic_error(os.str());
}

}  // namespace cloudwf::sim
