// Schedule (de)serialization: a line-oriented text format so schedules can
// be stored, diffed, and re-validated or re-analyzed later without
// re-running the scheduler.
//
// Format (comments with '#', blank lines ignored):
//   schedule <workflow-name>
//   vm <id> <size> <region>
//   place <task-name> <vm-id> <start> <end>
// Placements must appear in per-VM chronological order (the format is
// written that way; loading enforces it via the append-only Vm timeline).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/schedule.hpp"

namespace cloudwf::sim {

[[nodiscard]] std::string serialize_schedule(const dag::Workflow& wf,
                                             const Schedule& schedule);

/// Parses against the workflow the schedule was built for (task names are
/// resolved through it). Throws std::runtime_error with a line number on
/// malformed input; the result is structurally valid but *not* feasibility
/// checked — run sim::validate for that.
[[nodiscard]] Schedule parse_schedule(const dag::Workflow& wf, std::istream& in);
[[nodiscard]] Schedule parse_schedule_string(const dag::Workflow& wf,
                                             const std::string& text);

void save_schedule(const dag::Workflow& wf, const Schedule& schedule,
                   const std::string& path);
[[nodiscard]] Schedule load_schedule(const dag::Workflow& wf,
                                     const std::string& path);

}  // namespace cloudwf::sim
