// Schedule: the product of every scheduler — a VM pool plus, for each task,
// the VM it runs on and its start/finish times.
//
// The task table and the VMs' placement timelines are kept in sync by
// construction: `assign` writes both. An independent feasibility checker
// lives in sim/validator.hpp and the event-driven replay in sim/event_sim.hpp.
#pragma once

#include <vector>

#include "cloud/platform.hpp"
#include "cloud/vm.hpp"
#include "dag/workflow.hpp"

namespace cloudwf::sim {

struct Assignment {
  cloud::VmId vm = cloud::kInvalidVm;
  util::Seconds start = 0;
  util::Seconds end = 0;

  [[nodiscard]] bool valid() const noexcept { return vm != cloud::kInvalidVm; }
  [[nodiscard]] util::Seconds duration() const noexcept { return end - start; }
};

class Schedule {
 public:
  explicit Schedule(std::size_t task_count) : assignments_(task_count) {}
  explicit Schedule(const dag::Workflow& wf) : Schedule(wf.task_count()) {}

  /// Rents a fresh VM and returns its id.
  cloud::VmId rent(cloud::InstanceSize size, cloud::RegionId region);

  /// Assigns a task to a VM over [start, end). The task must be unassigned
  /// and the interval must append to the VM's timeline (see Vm::place).
  void assign(dag::TaskId task, cloud::VmId vm, util::Seconds start,
              util::Seconds end);

  [[nodiscard]] std::size_t task_count() const noexcept {
    return assignments_.size();
  }
  [[nodiscard]] bool is_assigned(dag::TaskId t) const;
  [[nodiscard]] const Assignment& assignment(dag::TaskId t) const;
  [[nodiscard]] std::size_t assigned_count() const noexcept;
  [[nodiscard]] bool complete() const noexcept {
    return assigned_count() == assignments_.size();
  }

  [[nodiscard]] const cloud::VmPool& pool() const noexcept { return pool_; }
  [[nodiscard]] cloud::VmPool& pool() noexcept { return pool_; }

  /// Latest finish time over all assigned tasks (0 for an empty schedule).
  [[nodiscard]] util::Seconds makespan() const noexcept;

  /// Drops all assignments and all placements, keeping the rented VMs with
  /// their sizes (the upgrade schedulers resize then retime).
  void clear_assignments() noexcept;

 private:
  std::vector<Assignment> assignments_;
  cloud::VmPool pool_;
};

}  // namespace cloudwf::sim
