#include "sim/elastic.hpp"

#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

#include "dag/graph_algo.hpp"

namespace cloudwf::sim {

namespace {
struct FinishEvent {
  util::Seconds time = 0;
  dag::TaskId task = dag::kInvalidTask;
  friend bool operator>(const FinishEvent& a, const FinishEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.task > b.task;
  }
};

struct VmState {
  cloud::VmId id = cloud::kInvalidVm;
  util::Seconds free_at = 0;  ///< boot completion, then end of last task
  bool retired = false;
};
}  // namespace

ElasticResult run_elastic(const dag::Workflow& wf,
                          const cloud::Platform& platform,
                          const ElasticPolicy& policy) {
  wf.validate();
  if (policy.max_pool == 0 || policy.initial_vms == 0 ||
      policy.initial_vms > policy.max_pool)
    throw std::invalid_argument("run_elastic: bad pool bounds");
  if (!(policy.scale_up_queue_per_vm > 0))
    throw std::invalid_argument("run_elastic: bad scale-up threshold");

  ElasticResult result{Schedule(wf), 0, 0, 0, 0};
  Schedule& schedule = result.schedule;

  // HEFT priority for the ready queue.
  const cloud::Vm a(0, policy.size, platform.default_region_id());
  const cloud::Vm b(1, policy.size, platform.default_region_id());
  const std::vector<double> rank = dag::upward_rank(
      wf,
      [&](dag::TaskId t) { return cloud::exec_time(wf.task(t).work, policy.size); },
      [&](dag::TaskId p, dag::TaskId t) {
        return platform.transfer_time(wf.edge_data(p, t), a, b);
      });
  const auto by_rank = [&rank](dag::TaskId x, dag::TaskId y) {
    if (rank[x] != rank[y]) return rank[x] > rank[y];
    return x < y;
  };
  std::set<dag::TaskId, decltype(by_rank)> ready(by_rank);

  std::vector<VmState> vms;
  auto active_count = [&] {
    std::size_t n = 0;
    for (const VmState& v : vms)
      if (!v.retired) ++n;
    return n;
  };
  auto provision = [&](util::Seconds now) {
    VmState v;
    v.id = schedule.rent(policy.size, platform.default_region_id());
    v.free_at = now + platform.boot_delay(policy.size, platform.default_region_id());
    vms.push_back(v);
    ++result.vms_provisioned;
    result.peak_pool = std::max(result.peak_pool, active_count());
  };

  std::vector<std::size_t> waiting(wf.task_count());
  for (const dag::Task& t : wf.tasks())
    waiting[t.id] = wf.predecessors(t.id).size();

  auto enqueue = [&](dag::TaskId t, util::Seconds now) {
    ready.insert(t);
    // Reactive scale-up: queue backed up beyond the per-VM threshold. The
    // cap bounds *concurrent* machines — retired VMs free their slot.
    if (static_cast<double>(ready.size()) >
            policy.scale_up_queue_per_vm *
                static_cast<double>(std::max<std::size_t>(1, active_count())) &&
        active_count() < policy.max_pool) {
      provision(now);
      ++result.scale_ups;
    }
  };

  std::priority_queue<FinishEvent, std::vector<FinishEvent>, std::greater<>>
      events;

  auto dispatch = [&](util::Seconds now) {
    for (;;) {
      if (ready.empty()) return;

      // Lazily retire VMs that sat idle past their paid-BTU boundary.
      for (VmState& v : vms) {
        if (v.retired || v.free_at > now) continue;
        const cloud::Vm& vm = schedule.pool().vm(v.id);
        if (vm.used() &&
            util::time_gt(now, vm.last_session().paid_end()))
          v.retired = true;
      }
      if (active_count() == 0) {
        // Queued work with no live machine: provision one. Always within
        // the concurrent cap (0 < max_pool).
        provision(now);
      }

      // The idle active VM that has been free the longest.
      VmState* chosen = nullptr;
      for (VmState& v : vms) {
        if (v.retired || v.free_at > now + util::kTimeEpsilon) continue;
        if (chosen == nullptr || v.free_at < chosen->free_at) chosen = &v;
      }
      if (chosen == nullptr) return;  // everyone busy or booting

      const dag::TaskId t = *ready.begin();
      ready.erase(ready.begin());

      const cloud::Vm& vm = schedule.pool().vm(chosen->id);
      util::Seconds est = std::max(now, chosen->free_at);
      for (dag::TaskId p : wf.predecessors(t)) {
        const Assignment& pa = schedule.assignment(p);
        est = std::max(est, pa.end + platform.transfer_time(
                                wf.edge_data(p, t),
                                schedule.pool().vm(pa.vm), vm));
      }
      const util::Seconds eft =
          est + cloud::exec_time(wf.task(t).work, policy.size);
      schedule.assign(t, chosen->id, est, eft);
      chosen->free_at = eft;
      events.push(FinishEvent{eft, t});
      result.makespan = std::max(result.makespan, eft);
    }
  };

  for (std::size_t i = 0; i < policy.initial_vms; ++i) provision(0.0);
  for (const dag::Task& t : wf.tasks())
    if (waiting[t.id] == 0) enqueue(t.id, 0.0);
  dispatch(0.0);

  // Boot completions also unblock dispatch; a VM booting at time T is
  // handled by re-running dispatch at the next finish event >= T, or — when
  // nothing is running yet — immediately at the boot completion time.
  while (!events.empty() || !ready.empty()) {
    if (events.empty()) {
      // Only booting VMs can make progress: jump to the earliest boot.
      util::Seconds next_boot = std::numeric_limits<util::Seconds>::max();
      for (const VmState& v : vms)
        if (!v.retired) next_boot = std::min(next_boot, v.free_at);
      dispatch(next_boot);
      continue;
    }
    const FinishEvent ev = events.top();
    events.pop();
    for (dag::TaskId s : wf.successors(ev.task))
      if (--waiting[s] == 0) enqueue(s, ev.time);
    dispatch(ev.time);
  }

  return result;
}

}  // namespace cloudwf::sim
