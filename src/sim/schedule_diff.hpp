// Schedule diff: structured comparison of two schedules for the same
// workflow — which tasks moved VM, how start/finish times shifted, and the
// headline metric deltas. The debugging companion of the ablation benches
// (why did flipping the BTU rule change the cost?) and of saved-schedule
// archaeology (sim/schedule_io.hpp).
#pragma once

#include <string>
#include <vector>

#include "cloud/platform.hpp"
#include "sim/metrics.hpp"
#include "sim/schedule.hpp"

namespace cloudwf::sim {

struct TaskDiff {
  dag::TaskId task = dag::kInvalidTask;
  std::string name;
  cloud::VmId vm_before = cloud::kInvalidVm;
  cloud::VmId vm_after = cloud::kInvalidVm;
  util::Seconds start_delta = 0;  ///< after - before
  util::Seconds end_delta = 0;

  [[nodiscard]] bool moved_vm() const noexcept { return vm_before != vm_after; }
  [[nodiscard]] bool retimed() const noexcept {
    return !util::time_eq(start_delta, 0) || !util::time_eq(end_delta, 0);
  }
};

struct ScheduleDiff {
  std::vector<TaskDiff> changed;  ///< only tasks that moved or retimed
  std::size_t unchanged = 0;
  util::Seconds makespan_delta = 0;   ///< after - before
  util::Money cost_delta;             ///< after - before
  util::Seconds idle_delta = 0;
  std::int64_t vm_delta = 0;          ///< used-VM count change
};

/// Both schedules must be complete and sized for `wf`.
[[nodiscard]] ScheduleDiff diff_schedules(const dag::Workflow& wf,
                                          const Schedule& before,
                                          const Schedule& after,
                                          const cloud::Platform& platform);

/// Human-readable rendering (summary line + per-task table of changes).
[[nodiscard]] std::string render_diff(const ScheduleDiff& diff);

}  // namespace cloudwf::sim
