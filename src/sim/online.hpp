// Online (dispatch-time) scheduling under runtime-estimate error.
//
// The paper's schedulers are static: they fix every placement up front from
// exact runtime knowledge, and its conclusion points at "adaptive
// scheduling" as the next step. This module supplies the substrate for that
// comparison: tasks are dispatched when they become ready, the provisioning
// policy decides with *estimated* runtimes, but execution takes the actual
// (error-perturbed) time. The static counterpart `replay_with_actuals`
// replays a fixed schedule's mapping under the same actual runtimes, so
// static-plan-with-surprise and online dispatch can be compared head to
// head.
#pragma once

#include <span>

#include "sim/event_sim.hpp"
#include "sim/schedule.hpp"
#include "util/rng.hpp"

namespace cloudwf::sim {

/// Multiplicative lognormal-style runtime error: actual = estimate * f,
/// f = exp(sigma*z - sigma^2/2) with z ~ N(0,1) (mean-one factors, so
/// estimates are unbiased). sigma = 0 reproduces the estimates exactly.
struct RuntimeErrorModel {
  double sigma = 0.0;

  /// Samples the actual reference work of every task.
  [[nodiscard]] std::vector<util::Seconds> sample_actual_works(
      const dag::Workflow& wf, util::Rng& rng) const;
};

/// Replays a static schedule's mapping (VM choice + per-VM order) with the
/// actual runtimes substituted — the "static plan meets reality" baseline.
[[nodiscard]] ReplayResult replay_with_actuals(
    const dag::Workflow& wf, const Schedule& schedule,
    const cloud::Platform& platform,
    std::span<const util::Seconds> actual_works);

}  // namespace cloudwf::sim
