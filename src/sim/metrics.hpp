// ScheduleMetrics: everything the paper's evaluation reports about one
// schedule — makespan, rental + egress cost, idle time, VM usage — plus the
// relative gain%/loss% pair of Fig. 4.
#pragma once

#include <cstdint>

#include "cloud/platform.hpp"
#include "dag/workflow.hpp"
#include "sim/schedule.hpp"

namespace cloudwf::sim {

struct ScheduleMetrics {
  util::Seconds makespan = 0;
  util::Money vm_cost;              ///< sum of BTU rentals
  util::Money egress_cost;          ///< cross-region data-out charges
  util::Money total_cost;           ///< vm_cost + egress_cost
  util::Seconds total_idle = 0;     ///< paid-but-unused VM seconds (Fig. 5)
  util::Seconds total_busy = 0;     ///< task-occupied VM seconds
  std::size_t vms_used = 0;
  std::int64_t total_btus = 0;
  double utilization = 0;           ///< total_busy / total paid seconds, [0,1]
};

/// Computes the metrics of a complete schedule. Egress volume is accumulated
/// per source region over the whole run (the paper bills monthly; one run is
/// well within one month) and billed at that region's transfer-out price in
/// the (1 GB, 10 TB] band.
[[nodiscard]] ScheduleMetrics compute_metrics(const dag::Workflow& wf,
                                              const Schedule& schedule,
                                              const cloud::Platform& platform);

/// The paper's Fig. 4 coordinates for a strategy against the reference
/// (HEFT + OneVMperTask on small instances):
///   gain% = (ref.makespan - makespan) / ref.makespan * 100
///   loss% = (total_cost - ref.total_cost) / ref.total_cost * 100
/// (savings are negative loss).
struct GainLoss {
  double gain_pct = 0;
  double loss_pct = 0;

  [[nodiscard]] double savings_pct() const noexcept { return -loss_pct; }
};

[[nodiscard]] GainLoss relative_to_reference(const ScheduleMetrics& strategy,
                                             const ScheduleMetrics& reference);

}  // namespace cloudwf::sim
