#include "sim/schedule_diff.hpp"

#include <sstream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace cloudwf::sim {

ScheduleDiff diff_schedules(const dag::Workflow& wf, const Schedule& before,
                            const Schedule& after,
                            const cloud::Platform& platform) {
  const ScheduleMetrics mb = compute_metrics(wf, before, platform);
  const ScheduleMetrics ma = compute_metrics(wf, after, platform);

  ScheduleDiff diff;
  diff.makespan_delta = ma.makespan - mb.makespan;
  diff.cost_delta = ma.total_cost - mb.total_cost;
  diff.idle_delta = ma.total_idle - mb.total_idle;
  diff.vm_delta = static_cast<std::int64_t>(ma.vms_used) -
                  static_cast<std::int64_t>(mb.vms_used);

  for (const dag::Task& t : wf.tasks()) {
    const Assignment& a = before.assignment(t.id);
    const Assignment& b = after.assignment(t.id);
    TaskDiff td;
    td.task = t.id;
    td.name = t.name;
    td.vm_before = a.vm;
    td.vm_after = b.vm;
    td.start_delta = b.start - a.start;
    td.end_delta = b.end - a.end;
    if (td.moved_vm() || td.retimed()) {
      diff.changed.push_back(std::move(td));
    } else {
      ++diff.unchanged;
    }
  }
  return diff;
}

std::string render_diff(const ScheduleDiff& diff) {
  std::ostringstream os;
  os << "makespan " << (diff.makespan_delta >= 0 ? "+" : "")
     << util::format_double(diff.makespan_delta, 1) << " s, cost "
     << (diff.cost_delta >= util::Money{} ? "+" : "")
     << diff.cost_delta.to_string() << ", idle "
     << (diff.idle_delta >= 0 ? "+" : "")
     << util::format_double(diff.idle_delta, 0) << " s, VMs "
     << (diff.vm_delta >= 0 ? "+" : "") << diff.vm_delta << "; "
     << diff.changed.size() << " tasks changed, " << diff.unchanged
     << " unchanged\n";
  if (diff.changed.empty()) return os.str();

  util::TextTable t({"task", "vm", "start delta (s)", "end delta (s)"});
  for (const TaskDiff& td : diff.changed) {
    t.add_row({td.name,
               td.moved_vm() ? std::to_string(td.vm_before) + " -> " +
                                   std::to_string(td.vm_after)
                             : std::to_string(td.vm_before),
               util::format_double(td.start_delta, 1),
               util::format_double(td.end_delta, 1)});
  }
  os << t.render();
  return os.str();
}

}  // namespace cloudwf::sim
