#include "sim/online.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>

namespace cloudwf::sim {

namespace {
struct Event {
  util::Seconds time = 0;
  dag::TaskId task = dag::kInvalidTask;
  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.task > b.task;
  }
};
}  // namespace

std::vector<util::Seconds> RuntimeErrorModel::sample_actual_works(
    const dag::Workflow& wf, util::Rng& rng) const {
  if (sigma < 0)
    throw std::invalid_argument("RuntimeErrorModel: negative sigma");
  std::vector<util::Seconds> actual(wf.task_count());
  for (const dag::Task& t : wf.tasks()) {
    if (sigma == 0) {
      actual[t.id] = t.work;
      continue;
    }
    // Box-Muller; u1 in (0,1] avoids log(0).
    const double u1 = 1.0 - rng.uniform();
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    actual[t.id] = t.work * std::exp(sigma * z - sigma * sigma / 2.0);
  }
  return actual;
}

ReplayResult replay_with_actuals(const dag::Workflow& wf, const Schedule& schedule,
                                 const cloud::Platform& platform,
                                 std::span<const util::Seconds> actual_works) {
  if (!schedule.complete())
    throw std::logic_error("replay_with_actuals: incomplete schedule");
  if (actual_works.size() != wf.task_count())
    throw std::invalid_argument("replay_with_actuals: actual_works size mismatch");

  const std::size_t n = wf.task_count();
  const cloud::VmPool& pool = schedule.pool();

  std::vector<dag::TaskId> prev_on_vm(n, dag::kInvalidTask);
  std::vector<dag::TaskId> next_on_vm(n, dag::kInvalidTask);
  for (const cloud::Vm& vm : pool.vms()) {
    const auto& ps = vm.placements();
    for (std::size_t i = 1; i < ps.size(); ++i) {
      prev_on_vm[ps[i].task] = ps[i - 1].task;
      next_on_vm[ps[i - 1].task] = ps[i].task;
    }
  }

  std::vector<std::size_t> waiting(n, 0);
  std::vector<util::Seconds> ready_at(n, 0.0);
  for (const dag::Task& t : wf.tasks()) {
    const cloud::Vm& vm = pool.vm(schedule.assignment(t.id).vm);
    ready_at[t.id] = platform.boot_delay(vm.size(), vm.region());
    waiting[t.id] = wf.predecessors(t.id).size();
    if (prev_on_vm[t.id] != dag::kInvalidTask) ++waiting[t.id];
  }

  ReplayResult result;
  result.tasks.assign(n, ReplayedTask{});

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  auto start_task = [&](dag::TaskId t) {
    const cloud::Vm& vm = pool.vm(schedule.assignment(t).vm);
    result.tasks[t].start = ready_at[t];
    result.tasks[t].end =
        ready_at[t] + cloud::exec_time(actual_works[t], vm.size());
    events.push(Event{result.tasks[t].end, t});
  };
  for (const dag::Task& t : wf.tasks())
    if (waiting[t.id] == 0) start_task(t.id);

  auto post = [&](dag::TaskId t, util::Seconds available) {
    ready_at[t] = std::max(ready_at[t], available);
    if (--waiting[t] == 0) start_task(t);
  };

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    ++result.events_processed;
    result.makespan = std::max(result.makespan, ev.time);
    const cloud::Vm& from_vm = pool.vm(schedule.assignment(ev.task).vm);
    for (dag::TaskId s : wf.successors(ev.task)) {
      const cloud::Vm& to_vm = pool.vm(schedule.assignment(s).vm);
      post(s, ev.time + platform.transfer_time(wf.edge_data(ev.task, s),
                                               from_vm, to_vm));
    }
    if (next_on_vm[ev.task] != dag::kInvalidTask) post(next_on_vm[ev.task], ev.time);
  }
  return result;
}

}  // namespace cloudwf::sim
