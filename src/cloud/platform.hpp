// Platform: the simulated IaaS cloud the schedulers target — the EC2 region
// catalog, the transfer model, the default experiment region and the (paper:
// ignored, so default-zero) VM boot time.
#pragma once

#include <span>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/instance.hpp"
#include "cloud/region.hpp"
#include "cloud/transfer.hpp"
#include "cloud/vm.hpp"

namespace cloudwf::cloud {

class Platform {
 public:
  /// EC2 platform: all seven Table II regions, default experiment region
  /// US East Virginia, zero boot time (the paper pre-boots).
  [[nodiscard]] static Platform ec2();

  Platform(std::vector<Region> regions, RegionId default_region,
           TransferModel transfer = {}, util::Seconds boot_time = 0.0);

  [[nodiscard]] std::span<const Region> regions() const noexcept {
    return regions_;
  }
  [[nodiscard]] const Region& region(RegionId id) const;
  [[nodiscard]] const Region& default_region() const {
    return region(default_region_);
  }
  [[nodiscard]] RegionId default_region_id() const noexcept {
    return default_region_;
  }

  [[nodiscard]] const TransferModel& transfer() const noexcept { return transfer_; }

  /// Fixed VM boot delay; EC2 boots in under two minutes independently of
  /// fleet size, and the paper's static schedules pre-boot so default is 0.
  [[nodiscard]] util::Seconds boot_time() const noexcept { return boot_time_; }
  void set_boot_time(util::Seconds t);

  /// Price per BTU for a size in the default region.
  [[nodiscard]] util::Money price(InstanceSize s) const {
    return default_region().price(s);
  }

  /// Transfer time between the VMs hosting two tasks.
  [[nodiscard]] util::Seconds transfer_time(util::Gigabytes size, const Vm& from,
                                            const Vm& to) const {
    return transfer_.time(size, from.size(), to.size(), from.region(), to.region(),
                          from.id() == to.id());
  }

 private:
  std::vector<Region> regions_;
  RegionId default_region_;
  TransferModel transfer_;
  util::Seconds boot_time_;
};

}  // namespace cloudwf::cloud
