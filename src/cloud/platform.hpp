// Platform: the simulated IaaS cloud the schedulers target — the EC2 region
// catalog, the transfer model, the default experiment region and the (paper:
// ignored, so default-zero) VM boot time.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/coldstart.hpp"
#include "cloud/instance.hpp"
#include "cloud/pricing.hpp"
#include "cloud/region.hpp"
#include "cloud/transfer.hpp"
#include "cloud/vm.hpp"

namespace cloudwf::cloud {

class Platform {
 public:
  /// EC2 platform: all seven Table II regions, default experiment region
  /// US East Virginia, zero boot time (the paper pre-boots).
  [[nodiscard]] static Platform ec2();

  Platform(std::vector<Region> regions, RegionId default_region,
           TransferModel transfer = {}, util::Seconds boot_time = 0.0);

  [[nodiscard]] std::span<const Region> regions() const noexcept {
    return regions_;
  }
  [[nodiscard]] const Region& region(RegionId id) const;
  [[nodiscard]] const Region& default_region() const {
    return region(default_region_);
  }
  [[nodiscard]] RegionId default_region_id() const noexcept {
    return default_region_;
  }

  [[nodiscard]] const TransferModel& transfer() const noexcept { return transfer_; }

  /// Fixed VM boot delay; EC2 boots in under two minutes independently of
  /// fleet size, and the paper's static schedules pre-boot so default is 0.
  [[nodiscard]] util::Seconds boot_time() const noexcept { return boot_time_; }
  void set_boot_time(util::Seconds t);

  /// Installs per-(size, region) cold-start provisioning delays (the
  /// cold-start scenario). Delays stack on the base boot time: boot_delay()
  /// answers boot_time() + table delay once a model is installed, and
  /// exactly boot_time() otherwise — existing scenarios are bit-unchanged.
  void install_cold_start(const ColdStartModel& model);

  /// Installs a time-varying price schedule (the variable-price scenario):
  /// each rented BTU is billed at the list price scaled by the schedule's
  /// multiplier at that BTU's start time (see cloud::vm_bill).
  void install_price_schedule(PriceSchedule schedule);

  [[nodiscard]] const ColdStartTable* cold_start() const noexcept {
    return cold_.get();
  }
  [[nodiscard]] const PriceSchedule* price_schedule() const noexcept {
    return prices_.get();
  }

  /// True when billing depends on rental timing (cold starts and/or a price
  /// schedule) — the signal for compute_metrics and the oracle to take the
  /// timing-aware path instead of the paper's flat BTU arithmetic.
  [[nodiscard]] bool scenario_billing_active() const noexcept {
    return cold_ != nullptr || prices_ != nullptr;
  }

  /// Boot completion time for a fresh VM of `size` in `region`: the base
  /// boot time plus, when a cold-start model is installed, that pair's
  /// provisioning delay. Returns boot_time() exactly when no model is
  /// installed.
  [[nodiscard]] util::Seconds boot_delay(InstanceSize size,
                                         RegionId region) const noexcept {
    if (!cold_) return boot_time_;
    return boot_time_ + cold_->delay(size, region);
  }

  /// The cold-start component of boot_delay() alone (0 without a model) —
  /// the span billing charges in front of a VM's first session.
  [[nodiscard]] util::Seconds cold_start_delay(InstanceSize size,
                                               RegionId region) const noexcept {
    return cold_ ? cold_->delay(size, region) : 0.0;
  }

  /// Price per BTU for a size in the default region.
  [[nodiscard]] util::Money price(InstanceSize s) const {
    return default_region().price(s);
  }

  /// Transfer time between the VMs hosting two tasks.
  [[nodiscard]] util::Seconds transfer_time(util::Gigabytes size, const Vm& from,
                                            const Vm& to) const {
    return transfer_.time(size, from.size(), to.size(), from.region(), to.region(),
                          from.id() == to.id());
  }

 private:
  std::vector<Region> regions_;
  RegionId default_region_;
  TransferModel transfer_;
  util::Seconds boot_time_;
  // Scenario extensions, shared so Platform copies stay cheap (the sweep
  // copies the platform per (workflow, scenario, seed) group).
  std::shared_ptr<const ColdStartTable> cold_;
  std::shared_ptr<const PriceSchedule> prices_;
};

}  // namespace cloudwf::cloud
