// Vm: one rented virtual machine and its timeline of task placements.
// VmPool: the set of VMs a schedule rents.
//
// Placements are append-only in time: the paper's provisioning policies reuse
// VMs strictly sequentially (a task starts no earlier than the VM's last
// placement ends), which is what the `place` precondition enforces.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/instance.hpp"
#include "cloud/region.hpp"
#include "dag/task.hpp"
#include "util/money.hpp"
#include "util/units.hpp"

namespace cloudwf::cloud {

using VmId = std::uint32_t;
inline constexpr VmId kInvalidVm = std::numeric_limits<VmId>::max();

struct Placement {
  dag::TaskId task = dag::kInvalidTask;
  util::Seconds start = 0;
  util::Seconds end = 0;
};

class Vm {
 public:
  Vm(VmId id, InstanceSize size, RegionId region) noexcept
      : id_(id), size_(size), region_(region) {}

  [[nodiscard]] VmId id() const noexcept { return id_; }
  [[nodiscard]] InstanceSize size() const noexcept { return size_; }
  [[nodiscard]] RegionId region() const noexcept { return region_; }

  /// Changes the instance size. Only meaningful while the VM is empty (the
  /// upgrade schedulers clear + retime after changing sizes); enforced.
  void set_size(InstanceSize s);

  [[nodiscard]] const std::vector<Placement>& placements() const noexcept {
    return placements_;
  }
  [[nodiscard]] bool used() const noexcept { return !placements_.empty(); }

  /// Start of the rental (first placement start); 0 if unused.
  [[nodiscard]] util::Seconds first_start() const noexcept;

  /// End of the last placement; 0 if unused. Also the earliest time the next
  /// placement may start.
  [[nodiscard]] util::Seconds available_from() const noexcept;

  /// Total task-occupied seconds. Maintained as a running sum by place()
  /// (same addition order as summing the placements, so bit-identical).
  [[nodiscard]] util::Seconds busy_time() const noexcept { return busy_time_; }

  /// Rental span: available_from() - first_start().
  [[nodiscard]] util::Seconds span() const noexcept;

  /// One billing session: the VM runs from `start` and is released at the
  /// first paid-BTU boundary at which it sits idle. A placement arriving
  /// within the current session's paid window extends the session; one
  /// arriving later begins a new session (the VM was shut down in between
  /// and is booted anew — the paper's reuse still names it the same VM).
  struct Session {
    util::Seconds start = 0;
    util::Seconds end = 0;  ///< end of the session's last placement

    [[nodiscard]] std::int64_t btus() const { return btus_for(end - start); }
    [[nodiscard]] util::Seconds paid_end() const {
      return start + static_cast<util::Seconds>(btus()) * util::kBtu;
    }
  };

  /// All billing sessions, materialized on demand by replaying the
  /// placement timeline (cold consumers: gantt, reports, tests). The hot
  /// paths never build this list — place() maintains the last session and
  /// the closed sessions' BTU sum as running aggregates, so billing queries
  /// are O(1) instead of O(sessions) and a VM carries one vector fewer.
  [[nodiscard]] std::vector<Session> sessions() const;

  /// Number of billing sessions (O(1)).
  [[nodiscard]] std::size_t session_count() const noexcept {
    return session_count_;
  }

  /// The still-open last session. Precondition: used().
  [[nodiscard]] const Session& last_session() const noexcept {
    return last_session_;
  }

  /// Whole BTUs billed across all sessions (0 if the VM was never used).
  [[nodiscard]] std::int64_t btus() const;

  /// Wall-clock seconds paid for (sum of session BTUs x 3600; 0 if unused).
  [[nodiscard]] util::Seconds paid_time() const;

  /// Paid-but-unoccupied seconds — the paper's per-VM idle time (Fig. 5).
  /// Bounded below one BTU per session because idle VMs are released at the
  /// paid boundary.
  [[nodiscard]] util::Seconds idle_time() const;

  /// Rental cost in the VM's region at its size (0 if unused).
  [[nodiscard]] util::Money cost(const Region& region) const;

  /// Would appending a placement over [start, end) increase this VM's total
  /// BTU count? This is the *NotExceed policies' reuse test. Unused VMs
  /// return true (renting at all adds the first BTU); a placement starting
  /// after the current session's paid window returns true (it opens a new
  /// session).
  [[nodiscard]] bool placement_adds_btu(util::Seconds start,
                                        util::Seconds end) const;

  /// Appends a placement. Preconditions: end >= start >= available_from()
  /// (within the schedule-time slack) and start >= 0.
  void place(dag::TaskId task, util::Seconds start, util::Seconds end);

  /// Removes all placements (used by the retiming upgrade schedulers).
  void clear() noexcept {
    placements_.clear();
    busy_time_ = 0;
    closed_btus_ = 0;
    session_count_ = 0;
    last_session_ = Session{};
  }

 private:
  VmId id_;
  InstanceSize size_;
  RegionId region_;
  util::Seconds busy_time_ = 0;
  std::int64_t closed_btus_ = 0;  ///< BTU sum of all sessions before the last
  std::size_t session_count_ = 0;
  Session last_session_{};
  std::vector<Placement> placements_;
};

class VmPool {
 public:
  VmPool() = default;

  /// Rents a fresh VM; returns a reference valid only until the next rent
  /// (vector growth). The id (== position) is stable — keep that instead.
  Vm& rent(InstanceSize size, RegionId region);

  [[nodiscard]] std::size_t size() const noexcept { return vms_.size(); }
  [[nodiscard]] bool empty() const noexcept { return vms_.empty(); }

  /// Mutable access marks the reuse index dirty (the caller may change
  /// placements behind the pool's back); it is rebuilt lazily on the next
  /// reuse_order() query. Prefer place() for appending placements — it
  /// keeps the index incremental.
  [[nodiscard]] Vm& vm(VmId id);
  [[nodiscard]] const Vm& vm(VmId id) const;

  [[nodiscard]] std::vector<Vm>& vms() noexcept {
    reuse_dirty_ = true;
    ++mutation_epoch_;
    return vms_;
  }
  [[nodiscard]] const std::vector<Vm>& vms() const noexcept { return vms_; }

  /// Bumped by every access that may rewrite existing placements (mutable
  /// vm()/vms(), clear_placements) but not by appends through place()/rent.
  /// Derived caches (the placement context's level occupancy) compare
  /// epochs to know when incremental maintenance is unsafe.
  [[nodiscard]] std::uint64_t mutation_epoch() const noexcept {
    return mutation_epoch_;
  }

  /// Appends a placement to `id`'s timeline (see Vm::place) while keeping
  /// the reuse index incremental — the fast path sim::Schedule::assign uses.
  void place(VmId id, dag::TaskId task, util::Seconds start, util::Seconds end);

  /// Ids of all used VMs ordered by busy time descending, id ascending on
  /// ties — the reuse preference order of the StartPar/AllPar policies (the
  /// first admissible element equals the old linear scan's argmax). Valid
  /// until the pool is mutated.
  [[nodiscard]] std::span<const VmId> reuse_order() const;

  /// One entry per place() append, in append order: the id of the VM whose
  /// busy time just grew. Derived caches (PlacementContext's AllPar
  /// candidate heap) fold the suffix since their last sync instead of
  /// rescanning the pool. Reset by clear_placements(); mutations that
  /// bypass place() bump mutation_epoch(), which tells consumers to resync
  /// from scratch.
  [[nodiscard]] const std::vector<VmId>& placement_log() const noexcept {
    return placement_log_;
  }

  /// Globally enables cross-checking the incremental reuse index against a
  /// freshly sorted one on every reuse_order() query; mismatches throw
  /// std::logic_error. Test-only (off by default; costs O(V log V) per
  /// query).
  static void set_index_verification(bool on) noexcept;

  /// Number of VMs that received at least one task.
  [[nodiscard]] std::size_t used_count() const noexcept;

  /// Sum of per-VM rental costs (no egress; that is a schedule-level cost).
  [[nodiscard]] util::Money rental_cost(std::span<const Region> regions) const;

  /// Sum of per-VM idle times (Fig. 5's quantity).
  [[nodiscard]] util::Seconds total_idle_time() const;

  /// Clears all placements on all VMs but keeps the VMs (sizes/regions).
  void clear_placements() noexcept;

 private:
  void rebuild_reuse_index() const;

  std::vector<Vm> vms_;
  std::vector<VmId> placement_log_;
  // Reuse index: used VM ids sorted by (busy_time desc, id asc), maintained
  // incrementally by place() and rebuilt lazily after any mutation that
  // bypassed it. pos_[id] is the id's slot in reuse_index_ (kInvalidVm when
  // unused or stale).
  mutable std::vector<VmId> reuse_index_;
  mutable std::vector<VmId> pos_;
  mutable bool reuse_dirty_ = false;
  std::uint64_t mutation_epoch_ = 0;
};

}  // namespace cloudwf::cloud
