#include "cloud/transfer.hpp"

#include <algorithm>
#include <stdexcept>

namespace cloudwf::cloud {

double TransferModel::bandwidth_gb_per_sec(InstanceSize from, InstanceSize to) {
  const util::GbitPerSec bottleneck = std::min(link_of(from), link_of(to));
  return bottleneck / 8.0;  // Gbit/s -> GB/s
}

util::Seconds TransferModel::time(util::Gigabytes size, InstanceSize from,
                                  InstanceSize to, RegionId from_region,
                                  RegionId to_region, bool same_vm) const {
  if (size < 0) throw std::invalid_argument("TransferModel::time: negative size");
  if (same_vm) return 0.0;
  const util::Seconds latency = from_region == to_region ? intra_region_latency
                                                         : inter_region_latency;
  if (size == 0) return latency;
  return size / bandwidth_gb_per_sec(from, to) + latency;
}

}  // namespace cloudwf::cloud
