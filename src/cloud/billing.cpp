#include "cloud/billing.hpp"

#include <cmath>
#include <stdexcept>

namespace cloudwf::cloud {

std::int64_t btus_for(util::Seconds span) {
  if (span < 0) throw std::invalid_argument("btus_for: negative span");
  if (span <= util::kTimeEpsilon) return 1;  // an opened rental pays >= 1 BTU
  // Subtract the slack first so that span = k*BTU (within rounding) bills
  // exactly k BTUs instead of k+1.
  return static_cast<std::int64_t>(std::ceil((span - util::kTimeEpsilon) / util::kBtu));
}

util::Seconds paid_seconds(util::Seconds span) {
  return static_cast<util::Seconds>(btus_for(span)) * util::kBtu;
}

util::Money rental_cost(util::Seconds span, InstanceSize size, const Region& region) {
  return region.price(size) * btus_for(span);
}

util::Gigabytes billable_egress_gb(util::Gigabytes monthly_total) {
  if (monthly_total < 0)
    throw std::invalid_argument("billable_egress_gb: negative volume");
  constexpr util::Gigabytes kFreeTier = 1.0;
  constexpr util::Gigabytes kBandCap = 10.0 * 1024.0;  // 10 TB in GB
  if (monthly_total <= kFreeTier) return 0.0;
  const util::Gigabytes capped = monthly_total < kBandCap ? monthly_total : kBandCap;
  return capped - kFreeTier;
}

util::Money egress_cost(util::Gigabytes monthly_total, const Region& region) {
  return region.transfer_out_per_gb.scaled(billable_egress_gb(monthly_total));
}

}  // namespace cloudwf::cloud
