#include "cloud/region.hpp"

#include <vector>

namespace cloudwf::cloud {

namespace {
using util::Money;

Region make_region(RegionId id, std::string name, double s, double m, double l,
                   double xl, double out) {
  Region r;
  r.id = id;
  r.name = std::move(name);
  r.price_per_btu = {Money::from_dollars(s), Money::from_dollars(m),
                     Money::from_dollars(l), Money::from_dollars(xl)};
  r.transfer_out_per_gb = Money::from_dollars(out);
  return r;
}

const std::vector<Region>& regions_storage() {
  // Table II, Amazon EC2 on-demand prices, October 31st 2012.
  static const std::vector<Region> regions = {
      make_region(0, "US East Virginia", 0.08, 0.16, 0.32, 0.64, 0.12),
      make_region(1, "US West Oregon", 0.08, 0.16, 0.32, 0.64, 0.12),
      make_region(2, "US West California", 0.09, 0.18, 0.36, 0.72, 0.12),
      make_region(3, "EU Dublin", 0.085, 0.17, 0.34, 0.68, 0.12),
      make_region(4, "Asia Singapore", 0.085, 0.17, 0.34, 0.68, 0.19),
      make_region(5, "Asia Tokio", 0.092, 0.184, 0.368, 0.736, 0.201),
      make_region(6, "SA Sao Paolo", 0.115, 0.230, 0.460, 0.920, 0.25),
  };
  return regions;
}
}  // namespace

std::span<const Region> ec2_regions() { return regions_storage(); }

std::optional<RegionId> region_by_name(std::string_view name) {
  for (const Region& r : ec2_regions())
    if (r.name == name) return r.id;
  return std::nullopt;
}

}  // namespace cloudwf::cloud
