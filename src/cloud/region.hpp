// The seven Amazon EC2 regions with on-demand prices of October 31st 2012 —
// the paper's Table II, verbatim.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "cloud/instance.hpp"
#include "util/money.hpp"

namespace cloudwf::cloud {

using RegionId = std::uint8_t;

struct Region {
  RegionId id = 0;
  std::string name;

  /// On-demand price per BTU (hour) for each instance size, Table II order.
  std::array<util::Money, kSizeCount> price_per_btu{};

  /// Outbound ("transfer out") price per GB, applied only across regions and
  /// only to the (1 GB, 10 TB] monthly billing band.
  util::Money transfer_out_per_gb{};

  [[nodiscard]] util::Money price(InstanceSize s) const {
    return price_per_btu[index_of(s)];
  }
};

/// The seven EC2 regions of Table II. Index = RegionId.
[[nodiscard]] std::span<const Region> ec2_regions();

/// Region by (exact) Table II name, e.g. "US East Virginia".
[[nodiscard]] std::optional<RegionId> region_by_name(std::string_view name);

/// The paper's default experiment region (US East Virginia, the cheapest tier).
inline constexpr RegionId kDefaultRegion = 0;

}  // namespace cloudwf::cloud
