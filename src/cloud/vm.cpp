#include "cloud/vm.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>

namespace cloudwf::cloud {

void Vm::set_size(InstanceSize s) {
  if (used())
    throw std::logic_error("Vm::set_size: cannot resize a VM with placements");
  size_ = s;
}

util::Seconds Vm::first_start() const noexcept {
  return placements_.empty() ? 0.0 : placements_.front().start;
}

util::Seconds Vm::available_from() const noexcept {
  return placements_.empty() ? 0.0 : placements_.back().end;
}

util::Seconds Vm::span() const noexcept { return available_from() - first_start(); }

std::vector<Vm::Session> Vm::sessions() const {
  // Replay of place()'s session logic over the placement timeline — the
  // same extend-or-open decisions in the same order, so the materialized
  // list is bitwise what the removed per-VM vector used to hold.
  std::vector<Session> out;
  out.reserve(session_count_);
  for (const Placement& p : placements_) {
    if (out.empty() || util::time_gt(p.start, out.back().paid_end()))
      out.push_back(Session{p.start, p.end});
    else
      out.back().end = p.end;
  }
  return out;
}

std::int64_t Vm::btus() const {
  return session_count_ == 0 ? 0 : closed_btus_ + last_session_.btus();
}

util::Seconds Vm::paid_time() const {
  return static_cast<util::Seconds>(btus()) * util::kBtu;
}

util::Seconds Vm::idle_time() const {
  return used() ? paid_time() - busy_time() : 0.0;
}

util::Money Vm::cost(const Region& region) const {
  return region.price(size_) * btus();
}

bool Vm::placement_adds_btu(util::Seconds start, util::Seconds end) const {
  if (!used()) return true;
  if (util::time_gt(start, last_session_.paid_end())) return true;  // new session
  return btus_for(end - last_session_.start) > last_session_.btus();
}

void Vm::place(dag::TaskId task, util::Seconds start, util::Seconds end) {
  if (task == dag::kInvalidTask)
    throw std::invalid_argument("Vm::place: invalid task");
  if (start < -util::kTimeEpsilon || end < start - util::kTimeEpsilon)
    throw std::invalid_argument("Vm::place: bad interval");
  if (util::time_gt(available_from(), start))
    throw std::logic_error("Vm::place: overlaps previous placement (append-only)");

  if (session_count_ == 0 || util::time_gt(start, last_session_.paid_end())) {
    // A closed session's span is final — fold its BTUs into the running sum
    // (same int64 addition order as summing the historical session list).
    if (session_count_ > 0) closed_btus_ += last_session_.btus();
    last_session_ = Session{start, end};
    ++session_count_;
  } else {
    last_session_.end = end;
  }
  placements_.push_back(Placement{task, start, end});
  busy_time_ += end - start;  // same addition order as the historical re-sum
}

namespace {
// Index verification (tests): every reuse_order() query re-sorts from
// scratch and compares against the incrementally maintained index.
std::atomic<bool> g_verify_index{false};
}  // namespace

void VmPool::set_index_verification(bool on) noexcept {
  g_verify_index.store(on, std::memory_order_relaxed);
}

Vm& VmPool::rent(InstanceSize size, RegionId region) {
  // A fresh VM is unused, so the reuse index is unaffected.
  vms_.emplace_back(static_cast<VmId>(vms_.size()), size, region);
  return vms_.back();
}

Vm& VmPool::vm(VmId id) {
  if (id >= vms_.size()) throw std::out_of_range("VmPool::vm: bad id");
  reuse_dirty_ = true;
  ++mutation_epoch_;
  return vms_[id];
}

const Vm& VmPool::vm(VmId id) const {
  if (id >= vms_.size()) throw std::out_of_range("VmPool::vm: bad id");
  return vms_[id];
}

std::size_t VmPool::used_count() const noexcept {
  std::size_t n = 0;
  for (const Vm& v : vms_)
    if (v.used()) ++n;
  return n;
}

util::Money VmPool::rental_cost(std::span<const Region> regions) const {
  util::Money total;
  for (const Vm& v : vms_) total += v.cost(regions[v.region()]);
  return total;
}

util::Seconds VmPool::total_idle_time() const {
  util::Seconds idle = 0;
  for (const Vm& v : vms_) idle += v.idle_time();
  return idle;
}

void VmPool::clear_placements() noexcept {
  for (Vm& v : vms_) v.clear();
  placement_log_.clear();
  reuse_dirty_ = true;  // index empties; rebuilt lazily if queried again
  ++mutation_epoch_;
}

void VmPool::place(VmId id, dag::TaskId task, util::Seconds start,
                   util::Seconds end) {
  if (id >= vms_.size()) throw std::out_of_range("VmPool::place: bad id");
  Vm& v = vms_[id];
  const bool first_use = !v.used();
  v.place(task, start, end);
  placement_log_.push_back(id);
  if (reuse_dirty_) return;  // a query will rebuild from scratch anyway

  // Keep reuse_index_ sorted by (busy_time desc, id asc). A placement only
  // grows busy time, so an already-indexed VM can only move left.
  const auto precedes = [this](VmId a, VmId b) {
    const util::Seconds ba = vms_[a].busy_time(), bb = vms_[b].busy_time();
    if (ba != bb) return ba > bb;
    return a < b;
  };
  if (pos_.size() < vms_.size()) pos_.resize(vms_.size(), kInvalidVm);
  if (first_use) {
    const auto it =
        std::lower_bound(reuse_index_.begin(), reuse_index_.end(), id, precedes);
    const auto slot = static_cast<std::size_t>(it - reuse_index_.begin());
    reuse_index_.insert(it, id);
    for (std::size_t i = slot; i < reuse_index_.size(); ++i)
      pos_[reuse_index_[i]] = static_cast<VmId>(i);
  } else {
    std::size_t cur = pos_[id];
    if (cur >= reuse_index_.size() || reuse_index_[cur] != id) {
      reuse_dirty_ = true;  // defensive: stale slot, fall back to rebuild
      return;
    }
    while (cur > 0 && precedes(id, reuse_index_[cur - 1])) {
      reuse_index_[cur] = reuse_index_[cur - 1];
      pos_[reuse_index_[cur]] = static_cast<VmId>(cur);
      --cur;
    }
    reuse_index_[cur] = id;
    pos_[id] = static_cast<VmId>(cur);
  }
}

void VmPool::rebuild_reuse_index() const {
  reuse_index_.clear();
  for (const Vm& v : vms_)
    if (v.used()) reuse_index_.push_back(v.id());
  std::sort(reuse_index_.begin(), reuse_index_.end(), [this](VmId a, VmId b) {
    const util::Seconds ba = vms_[a].busy_time(), bb = vms_[b].busy_time();
    if (ba != bb) return ba > bb;
    return a < b;
  });
  pos_.assign(vms_.size(), kInvalidVm);
  for (std::size_t i = 0; i < reuse_index_.size(); ++i)
    pos_[reuse_index_[i]] = static_cast<VmId>(i);
  reuse_dirty_ = false;
}

std::span<const VmId> VmPool::reuse_order() const {
  if (reuse_dirty_) rebuild_reuse_index();
  if (g_verify_index.load(std::memory_order_relaxed)) {
    const std::vector<VmId> incremental = reuse_index_;
    rebuild_reuse_index();
    if (incremental != reuse_index_)
      throw std::logic_error(
          "VmPool::reuse_order: incremental index diverged from linear sort "
          "(" +
          std::to_string(incremental.size()) + " vs " +
          std::to_string(reuse_index_.size()) + " used VMs)");
  }
  return reuse_index_;
}

}  // namespace cloudwf::cloud
