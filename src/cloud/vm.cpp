#include "cloud/vm.hpp"

#include <stdexcept>

namespace cloudwf::cloud {

void Vm::set_size(InstanceSize s) {
  if (used())
    throw std::logic_error("Vm::set_size: cannot resize a VM with placements");
  size_ = s;
}

util::Seconds Vm::first_start() const noexcept {
  return placements_.empty() ? 0.0 : placements_.front().start;
}

util::Seconds Vm::available_from() const noexcept {
  return placements_.empty() ? 0.0 : placements_.back().end;
}

util::Seconds Vm::busy_time() const noexcept {
  util::Seconds busy = 0;
  for (const Placement& p : placements_) busy += p.end - p.start;
  return busy;
}

util::Seconds Vm::span() const noexcept { return available_from() - first_start(); }

std::int64_t Vm::btus() const {
  std::int64_t total = 0;
  for (const Session& s : sessions_) total += s.btus();
  return total;
}

util::Seconds Vm::paid_time() const {
  return static_cast<util::Seconds>(btus()) * util::kBtu;
}

util::Seconds Vm::idle_time() const {
  return used() ? paid_time() - busy_time() : 0.0;
}

util::Money Vm::cost(const Region& region) const {
  return region.price(size_) * btus();
}

bool Vm::placement_adds_btu(util::Seconds start, util::Seconds end) const {
  if (!used()) return true;
  const Session& last = sessions_.back();
  if (util::time_gt(start, last.paid_end())) return true;  // new session
  return btus_for(end - last.start) > last.btus();
}

void Vm::place(dag::TaskId task, util::Seconds start, util::Seconds end) {
  if (task == dag::kInvalidTask)
    throw std::invalid_argument("Vm::place: invalid task");
  if (start < -util::kTimeEpsilon || end < start - util::kTimeEpsilon)
    throw std::invalid_argument("Vm::place: bad interval");
  if (util::time_gt(available_from(), start))
    throw std::logic_error("Vm::place: overlaps previous placement (append-only)");

  if (sessions_.empty() || util::time_gt(start, sessions_.back().paid_end())) {
    sessions_.push_back(Session{start, end});
  } else {
    sessions_.back().end = end;
  }
  placements_.push_back(Placement{task, start, end});
}

Vm& VmPool::rent(InstanceSize size, RegionId region) {
  vms_.emplace_back(static_cast<VmId>(vms_.size()), size, region);
  return vms_.back();
}

Vm& VmPool::vm(VmId id) {
  if (id >= vms_.size()) throw std::out_of_range("VmPool::vm: bad id");
  return vms_[id];
}

const Vm& VmPool::vm(VmId id) const {
  if (id >= vms_.size()) throw std::out_of_range("VmPool::vm: bad id");
  return vms_[id];
}

std::size_t VmPool::used_count() const noexcept {
  std::size_t n = 0;
  for (const Vm& v : vms_)
    if (v.used()) ++n;
  return n;
}

util::Money VmPool::rental_cost(std::span<const Region> regions) const {
  util::Money total;
  for (const Vm& v : vms_) total += v.cost(regions[v.region()]);
  return total;
}

util::Seconds VmPool::total_idle_time() const {
  util::Seconds idle = 0;
  for (const Vm& v : vms_) idle += v.idle_time();
  return idle;
}

void VmPool::clear_placements() noexcept {
  for (Vm& v : vms_) v.clear();
}

}  // namespace cloudwf::cloud
