#include "cloud/spot.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cloud/pricing.hpp"

namespace cloudwf::cloud {

SpotPriceSeries::SpotPriceSeries(util::Money on_demand,
                                 const SpotMarketModel& model,
                                 util::Seconds horizon, util::Rng& rng)
    : on_demand_(on_demand), tick_(model.tick), horizon_(horizon) {
  if (on_demand <= util::Money{})
    throw std::invalid_argument("SpotPriceSeries: on-demand price must be > 0");
  if (!(model.tick > 0)) throw std::invalid_argument("SpotPriceSeries: bad tick");
  if (!(horizon > 0)) throw std::invalid_argument("SpotPriceSeries: bad horizon");
  if (!(model.mean_fraction > 0) || model.floor_fraction <= 0 ||
      model.cap_fraction < model.floor_fraction ||
      model.reversion <= 0 || model.reversion > 1 || model.volatility < 0)
    throw std::invalid_argument("SpotPriceSeries: bad model parameters");

  const std::size_t ticks =
      static_cast<std::size_t>(std::ceil(horizon / model.tick)) + 1;
  const std::vector<double> fractions = sample_price_fractions(
      model.mean_fraction, model.reversion, model.volatility,
      model.floor_fraction, model.cap_fraction, ticks, rng);
  prices_.reserve(ticks);
  for (const double fraction : fractions)
    prices_.push_back(on_demand_.scaled(fraction));
}

util::Money SpotPriceSeries::price_at(util::Seconds t) const {
  const double clamped = std::clamp(t, 0.0, horizon_);
  const auto idx = std::min(prices_.size() - 1,
                            static_cast<std::size_t>(clamped / tick_));
  return prices_[idx];
}

util::Money SpotPriceSeries::average_price(util::Seconds from,
                                           util::Seconds to) const {
  if (std::isnan(from) || std::isnan(to) || to < from)
    throw std::invalid_argument(
        "average_price: inverted interval [" + std::to_string(from) + ", " +
        std::to_string(to) + ")");
  // Zero-length rentals exist (a zero-duration placement still opens a
  // session); the time-weighted average degenerates to the point price.
  if (to == from) return price_at(from);

  // Integrate the piecewise-constant path. Outside [0, horizon] the path is
  // constant at its boundary values, so out-of-horizon spans contribute
  // analytically; inside, walk whole ticks by integer index (a float time
  // stepper can stall when from/tick_ is large enough that adding one tick
  // no longer changes the value).
  double weighted_micros = 0;
  const util::Seconds lo = std::clamp(from, 0.0, horizon_);
  const util::Seconds hi = std::clamp(to, 0.0, horizon_);
  if (from < 0.0)
    weighted_micros += static_cast<double>(prices_.front().micros()) *
                       (std::min(to, 0.0) - from);
  if (to > horizon_)
    weighted_micros += static_cast<double>(prices_.back().micros()) *
                       (to - std::max(from, horizon_));
  util::Seconds t = lo;
  std::size_t k = std::min(prices_.size() - 1,
                           static_cast<std::size_t>(t / tick_));
  while (t < hi) {
    util::Seconds tick_end =
        std::min(hi, static_cast<util::Seconds>(k + 1) * tick_);
    if (!(tick_end > t)) tick_end = hi;  // guard: always make progress
    weighted_micros +=
        static_cast<double>(prices_[std::min(k, prices_.size() - 1)].micros()) *
        (tick_end - t);
    t = tick_end;
    ++k;
  }
  return util::Money::from_micros(
      static_cast<std::int64_t>(std::llround(weighted_micros / (to - from))));
}

std::optional<util::Seconds> SpotPriceSeries::first_exceedance(
    util::Money bid, util::Seconds from, util::Seconds to) const {
  // Empty or inverted windows contain no exceedance; the function is total.
  if (std::isnan(from) || std::isnan(to) || !(to > from)) return std::nullopt;
  // Before time 0 the path is constant at its first sample.
  if (from < 0.0 && prices_.front() > bid) return from;
  const util::Seconds start = std::max(from, 0.0);
  if (!(start < to)) return std::nullopt;
  // Walk ticks by integer index; the final sample extends to infinity
  // (price_at clamps), so no separate tail scan is needed.
  for (std::size_t k = std::min(prices_.size() - 1,
                                static_cast<std::size_t>(start / tick_));
       k < prices_.size(); ++k) {
    const util::Seconds t = static_cast<util::Seconds>(k) * tick_;
    if (t >= to) break;
    if (t + tick_ <= start && k + 1 < prices_.size()) continue;
    if (prices_[k] > bid) return std::max(t, start);
  }
  return std::nullopt;
}

double SpotPriceSeries::exceedance_fraction(util::Money bid) const {
  std::size_t over = 0;
  for (const util::Money& p : prices_)
    if (p > bid) ++over;
  return static_cast<double>(over) / static_cast<double>(prices_.size());
}

}  // namespace cloudwf::cloud
