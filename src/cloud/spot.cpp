#include "cloud/spot.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cloudwf::cloud {

SpotPriceSeries::SpotPriceSeries(util::Money on_demand,
                                 const SpotMarketModel& model,
                                 util::Seconds horizon, util::Rng& rng)
    : on_demand_(on_demand), tick_(model.tick), horizon_(horizon) {
  if (on_demand <= util::Money{})
    throw std::invalid_argument("SpotPriceSeries: on-demand price must be > 0");
  if (!(model.tick > 0)) throw std::invalid_argument("SpotPriceSeries: bad tick");
  if (!(horizon > 0)) throw std::invalid_argument("SpotPriceSeries: bad horizon");
  if (!(model.mean_fraction > 0) || model.floor_fraction <= 0 ||
      model.cap_fraction < model.floor_fraction ||
      model.reversion <= 0 || model.reversion > 1 || model.volatility < 0)
    throw std::invalid_argument("SpotPriceSeries: bad model parameters");

  const std::size_t ticks =
      static_cast<std::size_t>(std::ceil(horizon / model.tick)) + 1;
  prices_.reserve(ticks);

  const double log_mean = std::log(model.mean_fraction);
  double log_f = log_mean;
  for (std::size_t i = 0; i < ticks; ++i) {
    // Box-Muller normal draw.
    const double u1 = 1.0 - rng.uniform();
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    if (i > 0)
      log_f += model.reversion * (log_mean - log_f) + model.volatility * z;
    const double fraction =
        std::clamp(std::exp(log_f), model.floor_fraction, model.cap_fraction);
    prices_.push_back(on_demand_.scaled(fraction));
  }
}

util::Money SpotPriceSeries::price_at(util::Seconds t) const {
  const double clamped = std::clamp(t, 0.0, horizon_);
  const auto idx = std::min(prices_.size() - 1,
                            static_cast<std::size_t>(clamped / tick_));
  return prices_[idx];
}

util::Money SpotPriceSeries::average_price(util::Seconds from,
                                           util::Seconds to) const {
  if (!(to > from)) throw std::invalid_argument("average_price: to <= from");
  // Integrate the piecewise-constant path.
  double weighted_micros = 0;
  util::Seconds t = from;
  while (t < to) {
    const util::Seconds tick_end =
        std::min(to, (std::floor(t / tick_) + 1.0) * tick_);
    weighted_micros +=
        static_cast<double>(price_at(t).micros()) * (tick_end - t);
    t = tick_end;
  }
  return util::Money::from_micros(
      static_cast<std::int64_t>(std::llround(weighted_micros / (to - from))));
}

std::optional<util::Seconds> SpotPriceSeries::first_exceedance(
    util::Money bid, util::Seconds from, util::Seconds to) const {
  for (util::Seconds t = std::floor(from / tick_) * tick_; t < to; t += tick_) {
    if (t + tick_ <= from) continue;
    if (price_at(t) > bid) return std::max(t, from);
  }
  return std::nullopt;
}

double SpotPriceSeries::exceedance_fraction(util::Money bid) const {
  std::size_t over = 0;
  for (const util::Money& p : prices_)
    if (p > bid) ++over;
  return static_cast<double>(over) / static_cast<double>(prices_.size());
}

}  // namespace cloudwf::cloud
