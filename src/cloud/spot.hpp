// Spot-instance market model.
//
// The paper's Sect. V points at Amazon's spot market ("in a similar manner
// with what Amazon does with its spot instances") as the outlet for idle
// capacity. This module supplies the other side of that trade: a simulated
// spot *price process* per (region, size) — mean-reverting in log space
// around a fraction of the on-demand price, as the 2012 EC2 spot market
// behaved — so strategies can be costed as if their VMs were spot-rented
// and their eviction exposure quantified (a spot VM is reclaimed when the
// market price exceeds the user's bid).
#pragma once

#include <optional>
#include <vector>

#include "cloud/region.hpp"
#include "util/money.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cloudwf::cloud {

struct SpotMarketModel {
  /// Long-run mean of spot/on-demand (2012-era m1 instances cleared ~0.35).
  double mean_fraction = 0.35;

  /// Log-space mean reversion strength per tick, in (0, 1].
  double reversion = 0.2;

  /// Per-tick log-normal volatility.
  double volatility = 0.15;

  /// Hard clamps relative to on-demand (spot could spike above on-demand).
  double floor_fraction = 0.05;
  double cap_fraction = 1.5;

  /// Price update period.
  util::Seconds tick = 300.0;
};

/// One sampled spot price path for a given on-demand price.
class SpotPriceSeries {
 public:
  /// Samples ceil(horizon/tick)+1 points starting at the mean fraction.
  SpotPriceSeries(util::Money on_demand, const SpotMarketModel& model,
                  util::Seconds horizon, util::Rng& rng);

  [[nodiscard]] util::Money on_demand() const noexcept { return on_demand_; }
  [[nodiscard]] util::Seconds horizon() const noexcept { return horizon_; }

  /// Piecewise-constant price at time t (clamped into the horizon).
  [[nodiscard]] util::Money price_at(util::Seconds t) const;

  /// Time-weighted average price over [from, to). Total for from <= to:
  /// a zero-length interval returns the point price at `from`, and spans
  /// outside [0, horizon] price at the clamped boundary values (the path is
  /// constant beyond its samples). Throws std::invalid_argument only for an
  /// inverted (to < from) or NaN interval.
  [[nodiscard]] util::Money average_price(util::Seconds from,
                                          util::Seconds to) const;

  /// Earliest time in [from, to) when the price strictly exceeds `bid`
  /// (an eviction for a spot VM bidding that much), if any. Total: empty or
  /// inverted windows return nullopt, and out-of-horizon times price at the
  /// clamped boundary samples.
  [[nodiscard]] std::optional<util::Seconds> first_exceedance(
      util::Money bid, util::Seconds from, util::Seconds to) const;

  /// Fraction of ticks in [0, horizon) whose price exceeds `bid` — the
  /// empirical per-tick eviction probability for that bid.
  [[nodiscard]] double exceedance_fraction(util::Money bid) const;

 private:
  util::Money on_demand_;
  util::Seconds tick_;
  util::Seconds horizon_;
  std::vector<util::Money> prices_;  ///< one per tick boundary
};

}  // namespace cloudwf::cloud
