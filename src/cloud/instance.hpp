// EC2-style instance types: the four on-demand sizes of the paper (Sect. IV-A).
//
// Speed-ups 1 / 1.6 / 2.1 / 2.7 relative to the small instance (figures the
// paper takes from Stata/MP); small and medium have 1 Gb links, large and
// xlarge 10 Gb links; prices are regional (see cloud/region.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "util/units.hpp"

namespace cloudwf::cloud {

enum class InstanceSize : std::uint8_t { small = 0, medium = 1, large = 2, xlarge = 3 };

inline constexpr std::array<InstanceSize, 4> kAllSizes = {
    InstanceSize::small, InstanceSize::medium, InstanceSize::large,
    InstanceSize::xlarge};

/// Number of instance sizes (for array-indexed tables).
inline constexpr std::size_t kSizeCount = 4;

[[nodiscard]] constexpr std::size_t index_of(InstanceSize s) noexcept {
  return static_cast<std::size_t>(s);
}

[[nodiscard]] constexpr std::string_view name_of(InstanceSize s) noexcept {
  constexpr std::array<std::string_view, kSizeCount> names = {"small", "medium",
                                                              "large", "xlarge"};
  return names[index_of(s)];
}

/// Short suffix used in the paper's strategy labels ("-s", "-m", "-l", "-xl").
[[nodiscard]] constexpr std::string_view suffix_of(InstanceSize s) noexcept {
  constexpr std::array<std::string_view, kSizeCount> sfx = {"s", "m", "l", "xl"};
  return sfx[index_of(s)];
}

/// Parses "small"/"medium"/"large"/"xlarge" or the short suffix.
[[nodiscard]] std::optional<InstanceSize> parse_size(std::string_view text) noexcept;

/// Speed-up over the baseline small instance: a task of reference work w runs
/// in w / speedup_of(size) seconds.
[[nodiscard]] constexpr double speedup_of(InstanceSize s) noexcept {
  constexpr std::array<double, kSizeCount> speedups = {1.0, 1.6, 2.1, 2.7};
  return speedups[index_of(s)];
}

[[nodiscard]] constexpr int cores_of(InstanceSize s) noexcept {
  constexpr std::array<int, kSizeCount> cores = {1, 2, 4, 8};
  return cores[index_of(s)];
}

/// Network link speed: 1 Gb for small/medium, 10 Gb for large/xlarge.
[[nodiscard]] constexpr util::GbitPerSec link_of(InstanceSize s) noexcept {
  constexpr std::array<double, kSizeCount> links = {1.0, 1.0, 10.0, 10.0};
  return links[index_of(s)];
}

/// Next faster size, if any (used by the VM-upgrading dynamic schedulers).
[[nodiscard]] constexpr std::optional<InstanceSize> next_faster(
    InstanceSize s) noexcept {
  if (s == InstanceSize::xlarge) return std::nullopt;
  return static_cast<InstanceSize>(index_of(s) + 1);
}

/// Execution time of a task with the given reference work on this size.
[[nodiscard]] constexpr util::Seconds exec_time(util::Seconds reference_work,
                                                InstanceSize s) noexcept {
  return reference_work / speedup_of(s);
}

}  // namespace cloudwf::cloud
