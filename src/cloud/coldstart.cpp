#include "cloud/coldstart.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace cloudwf::cloud {

util::Seconds ColdStartModel::delay(InstanceSize size, RegionId region) const {
  if (!(min_delay >= 0) || !(max_delay >= min_delay))
    throw std::invalid_argument(
        "ColdStartModel: need 0 <= min_delay <= max_delay");
  // One splitmix64 stream per (size, region): the pair index perturbs the
  // seed, two hash steps decorrelate adjacent pairs.
  std::uint64_t state =
      seed ^ (0x9e3779b97f4a7c15ULL *
              (static_cast<std::uint64_t>(region) * kSizeCount +
               static_cast<std::uint64_t>(index_of(size)) + 1));
  (void)util::splitmix64(state);
  const std::uint64_t bits = util::splitmix64(state);
  const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
  return min_delay + u * (max_delay - min_delay);
}

ColdStartTable::ColdStartTable(const ColdStartModel& model,
                               std::size_t region_count)
    : model_(model) {
  if (region_count == 0)
    throw std::invalid_argument("ColdStartTable: no regions");
  delays_.reserve(region_count * kSizeCount);
  for (std::size_t r = 0; r < region_count; ++r)
    for (InstanceSize s : kAllSizes)
      delays_.push_back(model_.delay(s, static_cast<RegionId>(r)));
}

}  // namespace cloudwf::cloud
