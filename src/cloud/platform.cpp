#include "cloud/platform.hpp"

#include <stdexcept>

namespace cloudwf::cloud {

Platform Platform::ec2() {
  const std::span<const Region> table = ec2_regions();
  return Platform(std::vector<Region>(table.begin(), table.end()), kDefaultRegion);
}

Platform::Platform(std::vector<Region> regions, RegionId default_region,
                   TransferModel transfer, util::Seconds boot_time)
    : regions_(std::move(regions)),
      default_region_(default_region),
      transfer_(transfer),
      boot_time_(boot_time) {
  if (regions_.empty()) throw std::invalid_argument("Platform: no regions");
  if (default_region_ >= regions_.size())
    throw std::invalid_argument("Platform: default region out of range");
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].id != i)
      throw std::invalid_argument("Platform: region ids must be dense and ordered");
  }
  if (boot_time_ < 0) throw std::invalid_argument("Platform: negative boot time");
}

const Region& Platform::region(RegionId id) const {
  if (id >= regions_.size()) throw std::out_of_range("Platform::region: bad id");
  return regions_[id];
}

void Platform::set_boot_time(util::Seconds t) {
  if (t < 0) throw std::invalid_argument("Platform: negative boot time");
  boot_time_ = t;
}

void Platform::install_cold_start(const ColdStartModel& model) {
  cold_ = std::make_shared<ColdStartTable>(model, regions_.size());
}

void Platform::install_price_schedule(PriceSchedule schedule) {
  prices_ = std::make_shared<PriceSchedule>(std::move(schedule));
}

}  // namespace cloudwf::cloud
