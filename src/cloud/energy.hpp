// Energy model for schedules.
//
// The paper's Sect. V observes that the large-idle policies "in an energy
// aware context ... will be even more obvious since unused VMs consume
// energy for no intended purpose" (and its related work, Le et al. [13],
// schedules for electricity cost). This module quantifies that remark:
// a simple busy/idle power model per instance size, scaled by core count,
// integrated over a schedule's placements and paid-idle time.
#pragma once

#include "cloud/instance.hpp"
#include "cloud/vm.hpp"
#include "util/units.hpp"

namespace cloudwf::cloud {

struct EnergyModel {
  /// Full-load power of one core of the reference (small) machine, watts.
  /// Default approximates a 2007 Opteron core (the paper's CPU-unit
  /// reference): ~90 W under load.
  double busy_watts_per_core = 90.0;

  /// Idle power as a fraction of full load (typical x86 servers idle at
  /// 50-65 % of peak; we default mid-range).
  double idle_fraction = 0.6;

  [[nodiscard]] double busy_watts(InstanceSize s) const {
    return busy_watts_per_core * cores_of(s);
  }
  [[nodiscard]] double idle_watts(InstanceSize s) const {
    return busy_watts(s) * idle_fraction;
  }

  /// Energy one VM consumes over its paid lifetime, in joules:
  /// busy seconds at full load + (paid - busy) seconds at idle power.
  [[nodiscard]] double vm_energy_joules(const Vm& vm) const;
};

struct EnergyMetrics {
  double busy_joules = 0;
  double idle_joules = 0;
  double total_joules = 0;
  double idle_share = 0;  ///< idle_joules / total_joules, 0 when unused

  [[nodiscard]] double total_kwh() const { return total_joules / 3.6e6; }
};

/// Aggregates the model over every VM of a pool.
[[nodiscard]] EnergyMetrics compute_energy(const VmPool& pool,
                                           const EnergyModel& model = {});

}  // namespace cloudwf::cloud
