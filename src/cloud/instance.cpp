#include "cloud/instance.hpp"

namespace cloudwf::cloud {

std::optional<InstanceSize> parse_size(std::string_view text) noexcept {
  for (InstanceSize s : kAllSizes) {
    if (text == name_of(s) || text == suffix_of(s)) return s;
  }
  return std::nullopt;
}

// The paper's observation in Sect. V hinges on these ratios: renting large
// buys speed-up 2.1 for 4x the price (benefit 2.1/4 ~ 0.525 per dollar ...
// the paper quotes 0.675 using its own normalization), so keep the constants
// in one place and assert the ordering they rely on.
static_assert(speedup_of(InstanceSize::small) < speedup_of(InstanceSize::medium));
static_assert(speedup_of(InstanceSize::medium) < speedup_of(InstanceSize::large));
static_assert(speedup_of(InstanceSize::large) < speedup_of(InstanceSize::xlarge));
static_assert(!next_faster(InstanceSize::xlarge).has_value());
static_assert(*next_faster(InstanceSize::small) == InstanceSize::medium);

}  // namespace cloudwf::cloud
