// Cold-start provisioning delays.
//
// The paper pre-boots its VMs (boot time 0); real IaaS provisioning is far
// from free — Sarkar et al. (2504.21536) measure container/VM cold starts of
// hundreds of seconds, and belyakov-am's simulator models per-workflow-type
// provisioning delays of 300-600 s. A ColdStartModel assigns every
// (instance size, region) pair one deterministic delay drawn uniformly from
// [min_delay, max_delay], seeded per scenario: bigger instances in busier
// regions can be slower or faster to come up, and the draw is a pure
// function of (seed, size, region) so every layer — scheduler, replay,
// billing, oracle — sees the same number.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/instance.hpp"
#include "cloud/region.hpp"
#include "util/units.hpp"

namespace cloudwf::cloud {

struct ColdStartModel {
  util::Seconds min_delay = 300.0;
  util::Seconds max_delay = 600.0;
  std::uint64_t seed = 0;

  /// The provisioning delay for one (size, region) pair: min_delay +
  /// u * (max_delay - min_delay) with u the splitmix64 hash of
  /// (seed, size, region) mapped to [0, 1). Pure and stateless.
  [[nodiscard]] util::Seconds delay(InstanceSize size, RegionId region) const;
};

/// Precomputed per-(size, region) delay table — the form Platform installs so
/// the scheduler hot path pays one array lookup, not a hash. Delays include
/// nothing but the cold start itself; Platform adds its base boot time.
class ColdStartTable {
 public:
  ColdStartTable(const ColdStartModel& model, std::size_t region_count);

  [[nodiscard]] const ColdStartModel& model() const noexcept { return model_; }

  [[nodiscard]] util::Seconds delay(InstanceSize size, RegionId region) const {
    return delays_[static_cast<std::size_t>(region) * kSizeCount +
                   index_of(size)];
  }

 private:
  ColdStartModel model_;
  std::vector<util::Seconds> delays_;  ///< region-major, kSizeCount stride
};

}  // namespace cloudwf::cloud
