// Store-and-forward data transfer model (Sect. IV-A):
//   transfer time = size / bandwidth + latency
// with bandwidth the minimum of the two VMs' link speeds, zero time on the
// same VM, and egress cost charged only when data leaves a region.
#pragma once

#include "cloud/instance.hpp"
#include "cloud/region.hpp"
#include "util/money.hpp"
#include "util/units.hpp"

namespace cloudwf::cloud {

struct TransferModel {
  /// One-way latency between VMs in the same region.
  util::Seconds intra_region_latency = 0.0005;

  /// One-way latency between VMs in different regions.
  util::Seconds inter_region_latency = 0.120;

  /// Transfer time for `size` GB between two VM endpoints. Zero when
  /// producer and consumer run on the same VM (same_vm), otherwise
  /// size/bandwidth + latency with the bottleneck link's bandwidth.
  [[nodiscard]] util::Seconds time(util::Gigabytes size, InstanceSize from,
                                   InstanceSize to, RegionId from_region,
                                   RegionId to_region, bool same_vm) const;

  /// Bottleneck bandwidth between two instance sizes, in GB per second
  /// (links are quoted in Gbit/s; 8 bits per byte).
  [[nodiscard]] static double bandwidth_gb_per_sec(InstanceSize from,
                                                   InstanceSize to);
};

}  // namespace cloudwf::cloud
