#include "cloud/energy.hpp"

namespace cloudwf::cloud {

double EnergyModel::vm_energy_joules(const Vm& vm) const {
  const util::Seconds busy = vm.busy_time();
  const util::Seconds idle = vm.idle_time();
  return busy * busy_watts(vm.size()) + idle * idle_watts(vm.size());
}

EnergyMetrics compute_energy(const VmPool& pool, const EnergyModel& model) {
  EnergyMetrics m;
  for (const Vm& vm : pool.vms()) {
    m.busy_joules += vm.busy_time() * model.busy_watts(vm.size());
    m.idle_joules += vm.idle_time() * model.idle_watts(vm.size());
  }
  m.total_joules = m.busy_joules + m.idle_joules;
  m.idle_share = m.total_joules > 0 ? m.idle_joules / m.total_joules : 0.0;
  return m;
}

}  // namespace cloudwf::cloud
