// Timing-aware VM billing: the one place the cold-start and variable-price
// scenarios touch money.
//
// The paper's bill is pure span arithmetic — sessions, whole BTUs, one list
// price (Vm::cost / VmPool::rental_cost). With scenario extensions installed
// on the Platform, the bill additionally depends on *when* the VM runs:
//
//  - cold starts: a VM's first session is billed from provisioning start,
//    i.e. the session span is extended backwards by the (size, region)
//    cold-start delay (the instance is requested just in time to be ready at
//    the first task's start, and the meter runs while it boots);
//  - variable pricing: each billed BTU is priced at list price x the
//    schedule's multiplier at that BTU's rental start.
//
// With neither model installed, vm_bill answers exactly the flat quantities
// (it delegates to Vm's own accounting), so every pre-existing scenario
// remains bit-identical.
#pragma once

#include "cloud/platform.hpp"
#include "cloud/vm.hpp"
#include "util/money.hpp"
#include "util/units.hpp"

namespace cloudwf::cloud {

struct VmBill {
  std::int64_t btus = 0;
  util::Seconds paid = 0;  ///< wall-clock seconds paid (btus x kBtu)
  util::Money cost;
};

/// The bill for one VM under the platform's installed pricing models (flat
/// paper billing when none are installed; 0/0/$0 for unused VMs).
[[nodiscard]] VmBill vm_bill(const Vm& vm, const Platform& platform);

/// Sum of vm_bill costs over the pool — the scenario-aware replacement for
/// VmPool::rental_cost (and exactly equal to it when no models are
/// installed).
[[nodiscard]] util::Money pool_rental_cost(const VmPool& pool,
                                           const Platform& platform);

}  // namespace cloudwf::cloud
