#include "cloud/vm_billing.hpp"

namespace cloudwf::cloud {

VmBill vm_bill(const Vm& vm, const Platform& platform) {
  VmBill bill;
  if (!vm.used()) return bill;
  const Region& region = platform.region(vm.region());
  if (!platform.scenario_billing_active()) {
    // Flat paper billing: delegate to the VM's own O(1) aggregates so the
    // answer is bit-identical to the historical path.
    bill.btus = vm.btus();
    bill.paid = vm.paid_time();
    bill.cost = vm.cost(region);
    return bill;
  }

  const util::Seconds cold =
      platform.cold_start_delay(vm.size(), vm.region());
  const PriceSchedule* prices = platform.price_schedule();
  const util::Money list_price = region.price(vm.size());

  const std::vector<Vm::Session> sessions = vm.sessions();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    // The first session's meter starts when provisioning is requested —
    // cold-start seconds ahead of the first task — so its span stretches
    // backwards by the delay. Reused sessions hit a warm pool: no delay.
    const util::Seconds anchor =
        i == 0 ? sessions[i].start - cold : sessions[i].start;
    const std::int64_t btus = btus_for(sessions[i].end - anchor);
    bill.btus += btus;
    bill.paid += static_cast<util::Seconds>(btus) * util::kBtu;
    if (prices == nullptr) {
      bill.cost += list_price * btus;
    } else {
      for (std::int64_t k = 0; k < btus; ++k) {
        const util::Seconds at =
            anchor + static_cast<util::Seconds>(k) * util::kBtu;
        bill.cost += list_price.scaled(prices->fraction_at(vm.size(), at));
      }
    }
  }
  return bill;
}

util::Money pool_rental_cost(const VmPool& pool, const Platform& platform) {
  util::Money total;
  for (const Vm& vm : pool.vms()) total += vm_bill(vm, platform).cost;
  return total;
}

}  // namespace cloudwf::cloud
