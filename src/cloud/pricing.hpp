// Time-varying on-demand pricing.
//
// Table II's prices are a snapshot of October 31st 2012; real clouds reprice
// continuously and the spot market (cloud/spot.hpp) never stands still. A
// PriceSchedule carries one sampled price-multiplier path per instance size —
// the same mean-reverting log-space walk SpotPriceSeries uses, re-based
// around the on-demand list price — so a BTU rented at time t costs
// list_price x fraction_at(size, t). Strategies keep planning against the
// list price (they cannot see the future); what they pay depends on *when*
// they rent, which is exactly the axis the variable-price scenario studies.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cloud/instance.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cloudwf::cloud {

/// Parameters of one mean-reverting multiplier path (shared with the spot
/// market model's process; defaults here describe on-demand repricing, which
/// hovers around the list price rather than a deep discount).
struct PriceTrajectoryModel {
  double mean_fraction = 1.0;   ///< long-run multiplier on the list price
  double reversion = 0.15;      ///< log-space mean reversion per tick, (0, 1]
  double volatility = 0.10;     ///< per-tick log-normal volatility
  double floor_fraction = 0.4;  ///< hard clamp below
  double cap_fraction = 2.0;    ///< hard clamp above
  util::Seconds tick = 900.0;   ///< repricing period
};

/// Samples ceil(horizon/tick)+1 multiplier points of the mean-reverting
/// log-space walk (Box-Muller normals from `rng`), clamped into
/// [floor_fraction, cap_fraction]. This is the exact process
/// SpotPriceSeries prices with; it lives here so both consumers share one
/// implementation. Throws std::invalid_argument on bad parameters.
[[nodiscard]] std::vector<double> sample_price_fractions(
    double mean_fraction, double reversion, double volatility,
    double floor_fraction, double cap_fraction, std::size_t points,
    util::Rng& rng);

/// One multiplier path per instance size over [0, horizon], piecewise
/// constant on tick boundaries and clamped into the horizon outside it.
/// Deterministic per (model, horizon, seed): each size draws from its own
/// splitmix-derived substream.
class PriceSchedule {
 public:
  PriceSchedule(const PriceTrajectoryModel& model, util::Seconds horizon,
                std::uint64_t seed);

  [[nodiscard]] const PriceTrajectoryModel& model() const noexcept {
    return model_;
  }
  [[nodiscard]] util::Seconds horizon() const noexcept { return horizon_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Multiplier on the list price for a BTU whose rental starts at `t`
  /// (clamped into [0, horizon]).
  [[nodiscard]] double fraction_at(InstanceSize size, util::Seconds t) const;

 private:
  PriceTrajectoryModel model_;
  util::Seconds horizon_;
  std::uint64_t seed_;
  std::array<std::vector<double>, kSizeCount> fractions_;
};

}  // namespace cloudwf::cloud
