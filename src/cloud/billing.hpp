// BTU billing arithmetic (Sect. IV-A): on-demand VMs are billed in whole
// Billing Time Units of 3600 s, and cross-region egress is billed per GB
// inside the (1 GB, 10 TB] monthly band.
#pragma once

#include <cstdint>

#include "cloud/region.hpp"
#include "util/money.hpp"
#include "util/units.hpp"

namespace cloudwf::cloud {

/// Number of BTUs paid for a rental spanning `span` seconds: ceil(span/BTU),
/// with a minimum of 1 for any started rental (span > 0 or a zero-length
/// rental that was nevertheless opened). Negative spans are invalid.
[[nodiscard]] std::int64_t btus_for(util::Seconds span);

/// Paid wall-clock seconds for a rental spanning `span` seconds.
[[nodiscard]] util::Seconds paid_seconds(util::Seconds span);

/// Rental cost: btus_for(span) x the region's per-BTU price for the size.
[[nodiscard]] util::Money rental_cost(util::Seconds span, InstanceSize size,
                                      const Region& region);

/// Cross-region egress billing for one region-month.
///
/// The paper (after EC2's 2012 tiering): the per-GB price "is applied if the
/// transfer size is between (1GB, 10TB] per month" — i.e. the first GB is
/// free and the band is capped at 10 TB (beyond which the 2012 tiers get
/// cheaper; the paper's workloads never get near it, and we saturate at the
/// band edge).
[[nodiscard]] util::Gigabytes billable_egress_gb(util::Gigabytes monthly_total);

/// Cost of one region-month's egress at the region's transfer-out price.
[[nodiscard]] util::Money egress_cost(util::Gigabytes monthly_total,
                                      const Region& region);

}  // namespace cloudwf::cloud
