#include "cloud/pricing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cloudwf::cloud {

std::vector<double> sample_price_fractions(double mean_fraction,
                                           double reversion, double volatility,
                                           double floor_fraction,
                                           double cap_fraction,
                                           std::size_t points, util::Rng& rng) {
  if (!(mean_fraction > 0) || floor_fraction <= 0 ||
      cap_fraction < floor_fraction || reversion <= 0 || reversion > 1 ||
      volatility < 0)
    throw std::invalid_argument("sample_price_fractions: bad model parameters");
  if (points == 0)
    throw std::invalid_argument("sample_price_fractions: zero points");

  std::vector<double> out;
  out.reserve(points);
  const double log_mean = std::log(mean_fraction);
  double log_f = log_mean;
  for (std::size_t i = 0; i < points; ++i) {
    // Box-Muller normal draw (two uniforms per point, even at i == 0, so the
    // stream layout matches the historical SpotPriceSeries sampler exactly).
    const double u1 = 1.0 - rng.uniform();
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    if (i > 0) log_f += reversion * (log_mean - log_f) + volatility * z;
    out.push_back(std::clamp(std::exp(log_f), floor_fraction, cap_fraction));
  }
  return out;
}

PriceSchedule::PriceSchedule(const PriceTrajectoryModel& model,
                             util::Seconds horizon, std::uint64_t seed)
    : model_(model), horizon_(horizon), seed_(seed) {
  if (!(model.tick > 0))
    throw std::invalid_argument("PriceSchedule: bad tick");
  if (!(horizon > 0)) throw std::invalid_argument("PriceSchedule: bad horizon");
  const std::size_t points =
      static_cast<std::size_t>(std::ceil(horizon / model.tick)) + 1;
  for (InstanceSize s : kAllSizes) {
    std::uint64_t state =
        seed ^ (0xd1b54a32d192ed03ULL * (index_of(s) + 1));
    util::Rng rng(util::splitmix64(state));
    fractions_[index_of(s)] = sample_price_fractions(
        model.mean_fraction, model.reversion, model.volatility,
        model.floor_fraction, model.cap_fraction, points, rng);
  }
}

double PriceSchedule::fraction_at(InstanceSize size, util::Seconds t) const {
  const std::vector<double>& path = fractions_[index_of(size)];
  const double clamped = std::clamp(t, 0.0, horizon_);
  const std::size_t idx = std::min(
      path.size() - 1, static_cast<std::size_t>(clamped / model_.tick));
  return path[idx];
}

}  // namespace cloudwf::cloud
