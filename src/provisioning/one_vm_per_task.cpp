#include "provisioning/detail.hpp"

#include "obs/trace.hpp"

namespace cloudwf::provisioning {

cloud::VmId OneVmPerTask::choose_vm(dag::TaskId t, PlacementContext& ctx) {
  const cloud::VmId id = ctx.rent();
  obs::emit_decision(t, id, 0, "OneVMperTask: fresh VM for every task");
  return id;
}

}  // namespace cloudwf::provisioning
