#include "provisioning/detail.hpp"

namespace cloudwf::provisioning {

cloud::VmId OneVmPerTask::choose_vm(dag::TaskId /*t*/, PlacementContext& ctx) {
  return ctx.rent();
}

}  // namespace cloudwf::provisioning
