#include "provisioning/policy.hpp"

#include <algorithm>
#include <stdexcept>

#include "provisioning/detail.hpp"

namespace cloudwf::provisioning {

PlacementContext::PlacementContext(const dag::Workflow& wf, sim::Schedule& schedule,
                                   const cloud::Platform& platform,
                                   cloud::InstanceSize vm_size)
    : wf_(&wf), schedule_(&schedule), platform_(&platform), vm_size_(vm_size) {
  levels_ = dag::task_levels(wf);
  const int max_level =
      levels_.empty() ? -1 : *std::max_element(levels_.begin(), levels_.end());
  level_sizes_.assign(static_cast<std::size_t>(max_level + 1), 0);
  for (int l : levels_) ++level_sizes_[static_cast<std::size_t>(l)];
}

bool PlacementContext::vm_hosts_level_of(const cloud::Vm& vm, dag::TaskId t) const {
  const int level = levels_[t];
  return std::any_of(vm.placements().begin(), vm.placements().end(),
                     [&](const cloud::Placement& p) {
                       return levels_[p.task] == level;
                     });
}

util::Seconds PlacementContext::est_on(dag::TaskId t, const cloud::Vm& vm) const {
  util::Seconds est = std::max(vm.available_from(), platform_->boot_time());
  for (dag::TaskId p : wf_->predecessors(t)) {
    if (!schedule_->is_assigned(p))
      throw std::logic_error("est_on: predecessor '" + wf_->task(p).name +
                             "' not yet assigned");
    const sim::Assignment& pa = schedule_->assignment(p);
    const util::Seconds transfer = platform_->transfer_time(
        wf_->edge_data(p, t), schedule_->pool().vm(pa.vm), vm);
    est = std::max(est, pa.end + transfer);
  }
  return est;
}

util::Seconds PlacementContext::est_on_new(dag::TaskId t) const {
  // A hypothetical endpoint: kInvalidVm never equals an existing id, so the
  // transfer model treats it as a distinct machine in the default region.
  const cloud::Vm fresh(cloud::kInvalidVm, vm_size_, region());
  return est_on(t, fresh);
}

std::optional<dag::TaskId> PlacementContext::largest_predecessor(
    dag::TaskId t) const {
  const auto& preds = wf_->predecessors(t);
  if (preds.empty()) return std::nullopt;
  dag::TaskId best = preds.front();
  for (dag::TaskId p : preds) {
    if (wf_->task(p).work > wf_->task(best).work ||
        (wf_->task(p).work == wf_->task(best).work && p < best))
      best = p;
  }
  return best;
}

std::unique_ptr<ProvisioningPolicy> make_policy(ProvisioningKind kind) {
  switch (kind) {
    case ProvisioningKind::one_vm_per_task:
      return std::make_unique<OneVmPerTask>();
    case ProvisioningKind::start_par_not_exceed:
      return std::make_unique<StartPar>(/*exceed=*/false);
    case ProvisioningKind::start_par_exceed:
      return std::make_unique<StartPar>(/*exceed=*/true);
    case ProvisioningKind::all_par_not_exceed:
      return std::make_unique<AllPar>(/*exceed=*/false);
    case ProvisioningKind::all_par_exceed:
      return std::make_unique<AllPar>(/*exceed=*/true);
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace cloudwf::provisioning
