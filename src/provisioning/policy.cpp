#include "provisioning/policy.hpp"

#include <stdexcept>

#include "provisioning/detail.hpp"

namespace cloudwf::provisioning {

namespace {
constexpr std::size_t kSizePairs = cloud::kSizeCount * cloud::kSizeCount;
}  // namespace

PlacementContext::PlacementContext(const dag::Workflow& wf, sim::Schedule& schedule,
                                   const cloud::Platform& platform,
                                   cloud::InstanceSize vm_size)
    : wf_(&wf),
      schedule_(&schedule),
      platform_(&platform),
      structure_(wf.structure()),
      vm_size_(vm_size),
      region_(platform.default_region_id()),
      boot_time_(platform.boot_time()) {
  transfer_.assign(structure_->edge_count() * kSizePairs, -1.0);
}

const std::vector<util::Seconds>& PlacementContext::fill_exec_table(
    cloud::InstanceSize s) const {
  std::vector<util::Seconds>& table = exec_[cloud::index_of(s)];
  const std::vector<util::Seconds>& works = structure_->works();
  table.reserve(works.size());
  // Element-wise cloud::exec_time (a division) — not a reciprocal multiply,
  // which would not be bit-identical.
  for (util::Seconds w : works) table.push_back(cloud::exec_time(w, s));
  return table;
}

util::Seconds PlacementContext::transfer_cached(std::size_t edge_slot,
                                                util::Gigabytes data,
                                                const cloud::Vm& from,
                                                const cloud::Vm& to) const {
  // Same-VM transfers are exactly zero (TransferModel::time's first case).
  if (from.id() == to.id()) return 0.0;
  // The memo covers the overwhelmingly common default-region pair; anything
  // exotic falls through to the model.
  if (from.region() != region_ || to.region() != region_)
    return platform_->transfer_time(data, from, to);
  util::Seconds& slot =
      transfer_[edge_slot * kSizePairs +
                cloud::index_of(from.size()) * cloud::kSizeCount +
                cloud::index_of(to.size())];
  if (slot < 0) slot = platform_->transfer_time(data, from, to);
  return slot;
}

void PlacementContext::refresh_occupancy(const cloud::Vm& vm) const {
  // Incremental maintenance is only sound while placements grow append-only
  // (VmPool::place); any other pool mutation bumps the epoch and the whole
  // table starts over.
  const std::uint64_t epoch = pool().mutation_epoch();
  if (epoch != occupancy_epoch_) {
    vm_levels_.clear();
    vm_cursor_.clear();
    occupancy_epoch_ = epoch;
  }
  const std::size_t level_count = structure_->level_sizes().size();
  const std::size_t needed = (vm.id() + 1) * level_count;
  if (vm_levels_.size() < needed) {
    vm_levels_.resize(needed, 0);
    vm_cursor_.resize(vm.id() + 1, 0);
  }
  const auto& placements = vm.placements();
  std::uint32_t& cursor = vm_cursor_[vm.id()];
  char* row = vm_levels_.data() + vm.id() * level_count;
  const std::vector<int>& levels = structure_->levels();
  for (; cursor < placements.size(); ++cursor)
    row[static_cast<std::size_t>(levels[placements[cursor].task])] = 1;
}

bool PlacementContext::vm_hosts_level_of(const cloud::Vm& vm, dag::TaskId t) const {
  if (vm.id() == cloud::kInvalidVm || vm.placements().empty())
    return false;  // hypothetical or fresh VM hosts nothing
  refresh_occupancy(vm);
  const std::size_t level_count = structure_->level_sizes().size();
  return vm_levels_[vm.id() * level_count +
                    static_cast<std::size_t>(structure_->levels()[t])] != 0;
}

util::Seconds PlacementContext::est_on(dag::TaskId t, const cloud::Vm& vm) const {
  util::Seconds est = std::max(vm.available_from(), boot_time_);
  const std::span<const dag::TaskId> preds = structure_->preds(t);
  const std::span<const util::Gigabytes> data = structure_->pred_data(t);
  const std::size_t slot_base = structure_->pred_edge_slot(t);
  const sim::Schedule& schedule = *schedule_;
  const cloud::VmPool& vms = pool();
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const dag::TaskId p = preds[i];
    if (!schedule.is_assigned(p))
      throw std::logic_error("est_on: predecessor '" + wf_->task(p).name +
                             "' not yet assigned");
    const sim::Assignment& pa = schedule.assignment(p);
    const util::Seconds transfer =
        transfer_cached(slot_base + i, data[i], vms.vm(pa.vm), vm);
    est = std::max(est, pa.end + transfer);
  }
  return est;
}

util::Seconds PlacementContext::est_on_new(dag::TaskId t) const {
  // A hypothetical endpoint: kInvalidVm never equals an existing id, so the
  // transfer model treats it as a distinct machine in the default region.
  const cloud::Vm fresh(cloud::kInvalidVm, vm_size_, region_);
  return est_on(t, fresh);
}

std::optional<dag::TaskId> PlacementContext::largest_predecessor(
    dag::TaskId t) const {
  const dag::TaskId best = structure_->largest_pred(t);
  if (best == dag::kInvalidTask) return std::nullopt;
  return best;
}

std::unique_ptr<ProvisioningPolicy> make_policy(ProvisioningKind kind) {
  switch (kind) {
    case ProvisioningKind::one_vm_per_task:
      return std::make_unique<OneVmPerTask>();
    case ProvisioningKind::start_par_not_exceed:
      return std::make_unique<StartPar>(/*exceed=*/false);
    case ProvisioningKind::start_par_exceed:
      return std::make_unique<StartPar>(/*exceed=*/true);
    case ProvisioningKind::all_par_not_exceed:
      return std::make_unique<AllPar>(/*exceed=*/false);
    case ProvisioningKind::all_par_exceed:
      return std::make_unique<AllPar>(/*exceed=*/true);
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace cloudwf::provisioning
