#include "provisioning/policy.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>

#include "provisioning/detail.hpp"

namespace cloudwf::provisioning {

namespace {
constexpr std::size_t kSizePairs = cloud::kSizeCount * cloud::kSizeCount;

// Scan verification (tests): every best_parallel_reuse answer is compared
// against the historical linear walk over reuse_order().
std::atomic<bool> g_verify_scan{false};
}  // namespace

PlacementContext::PlacementContext(const dag::Workflow& wf, sim::Schedule& schedule,
                                   const cloud::Platform& platform,
                                   cloud::InstanceSize vm_size)
    : wf_(&wf),
      schedule_(&schedule),
      platform_(&platform),
      structure_(wf.structure()),
      vm_size_(vm_size),
      region_(platform.default_region_id()) {
  transfer_.assign(structure_->edge_count() * kSizePairs, -1.0);
}

const std::vector<util::Seconds>& PlacementContext::fill_exec_table(
    cloud::InstanceSize s) const {
  std::vector<util::Seconds>& table = exec_[cloud::index_of(s)];
  const std::vector<util::Seconds>& works = structure_->works();
  table.reserve(works.size());
  // Element-wise cloud::exec_time (a division) — not a reciprocal multiply,
  // which would not be bit-identical.
  for (util::Seconds w : works) table.push_back(cloud::exec_time(w, s));
  return table;
}

util::Seconds PlacementContext::transfer_cached(std::size_t edge_slot,
                                                util::Gigabytes data,
                                                const cloud::Vm& from,
                                                const cloud::Vm& to) const {
  // Same-VM transfers are exactly zero (TransferModel::time's first case).
  if (from.id() == to.id()) return 0.0;
  // The memo covers the overwhelmingly common default-region pair; anything
  // exotic falls through to the model.
  if (from.region() != region_ || to.region() != region_)
    return platform_->transfer_time(data, from, to);
  util::Seconds& slot =
      transfer_[edge_slot * kSizePairs +
                cloud::index_of(from.size()) * cloud::kSizeCount +
                cloud::index_of(to.size())];
  if (slot < 0) slot = platform_->transfer_time(data, from, to);
  return slot;
}

void PlacementContext::refresh_occupancy(const cloud::Vm& vm) const {
  // Incremental maintenance is only sound while placements grow append-only
  // (VmPool::place); any other pool mutation bumps the epoch and the whole
  // table starts over.
  const std::uint64_t epoch = pool().mutation_epoch();
  if (epoch != occupancy_epoch_) {
    vm_levels_.clear();
    vm_cursor_.clear();
    occupancy_epoch_ = epoch;
  }
  const std::size_t level_count = structure_->level_sizes().size();
  const std::size_t needed = (vm.id() + 1) * level_count;
  if (vm_levels_.size() < needed) {
    vm_levels_.resize(needed, 0);
    vm_cursor_.resize(vm.id() + 1, 0);
  }
  const auto& placements = vm.placements();
  std::uint32_t& cursor = vm_cursor_[vm.id()];
  char* row = vm_levels_.data() + vm.id() * level_count;
  const std::vector<int>& levels = structure_->levels();
  for (; cursor < placements.size(); ++cursor)
    row[static_cast<std::size_t>(levels[placements[cursor].task])] = 1;
}

bool PlacementContext::vm_hosts_level_of(const cloud::Vm& vm, dag::TaskId t) const {
  if (vm.id() == cloud::kInvalidVm || vm.placements().empty())
    return false;  // hypothetical or fresh VM hosts nothing
  refresh_occupancy(vm);
  const std::size_t level_count = structure_->level_sizes().size();
  return vm_levels_[vm.id() * level_count +
                    static_cast<std::size_t>(structure_->levels()[t])] != 0;
}

util::Seconds PlacementContext::est_on(dag::TaskId t, const cloud::Vm& vm) const {
  util::Seconds est = std::max(vm.available_from(),
                               platform_->boot_delay(vm.size(), vm.region()));
  const std::span<const dag::TaskId> preds = structure_->preds(t);
  const std::span<const util::Gigabytes> data = structure_->pred_data(t);
  const std::size_t slot_base = structure_->pred_edge_slot(t);
  const sim::Schedule& schedule = *schedule_;
  const cloud::VmPool& vms = pool();
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const dag::TaskId p = preds[i];
    if (!schedule.is_assigned(p))
      throw std::logic_error("est_on: predecessor '" + wf_->task(p).name +
                             "' not yet assigned");
    const sim::Assignment& pa = schedule.assignment(p);
    const util::Seconds transfer =
        transfer_cached(slot_base + i, data[i], vms.vm(pa.vm), vm);
    est = std::max(est, pa.end + transfer);
  }
  return est;
}

util::Seconds PlacementContext::est_on_new(dag::TaskId t) const {
  // A hypothetical endpoint: kInvalidVm never equals an existing id, so the
  // transfer model treats it as a distinct machine in the default region.
  const cloud::Vm fresh(cloud::kInvalidVm, vm_size_, region_);
  return est_on(t, fresh);
}

std::optional<dag::TaskId> PlacementContext::largest_predecessor(
    dag::TaskId t) const {
  const dag::TaskId best = structure_->largest_pred(t);
  if (best == dag::kInvalidTask) return std::nullopt;
  return best;
}

void PlacementContext::set_scan_verification(bool on) noexcept {
  g_verify_scan.store(on, std::memory_order_relaxed);
}

bool PlacementContext::reuse_is_admissible(dag::TaskId t, const cloud::Vm& vm,
                                           bool exceed) const {
  if (vm_hosts_level_of(vm, t)) return false;
  if (!exceed) {
    const util::Seconds est = est_on(t, vm);
    if (vm.placement_adds_btu(est, est + exec_time(t, vm.size()))) return false;
  }
  return true;
}

cloud::VmId PlacementContext::linear_parallel_reuse(dag::TaskId t,
                                                    bool exceed) const {
  for (cloud::VmId id : pool().reuse_order())
    if (reuse_is_admissible(t, pool().vm(id), exceed)) return id;
  return cloud::kInvalidVm;
}

cloud::VmId PlacementContext::best_parallel_reuse(dag::TaskId t, bool exceed) {
  const cloud::VmPool& pool = this->pool();
  const int level = structure_->levels()[t];
  const std::uint64_t epoch = pool.mutation_epoch();
  const std::vector<cloud::VmId>& log = pool.placement_log();

  bool rebuild = !scan_valid_ || scan_epoch_ != epoch || scan_level_ != level;
  if (!rebuild) {
    // Fold placements since the last scan. A same-level placement turned
    // its VM into a host of this level — the walk below unlinks it — and a
    // surviving candidate's busy time is untouched, so the snapshot order
    // stays exact. Anything else (a caller interleaving levels grew a
    // candidate's busy time, or put a fresh VM into use) invalidates the
    // snapshot's order: rebuild.
    for (; scan_log_cursor_ < log.size(); ++scan_log_cursor_) {
      const cloud::Vm& v = pool.vm(log[scan_log_cursor_]);
      if (vm_hosts_level_of(v, t)) continue;
      if (v.id() < scan_in_list_.size() && scan_in_list_[v.id()] != 0 &&
          v.busy_time() == scan_busy_[v.id()])
        continue;  // zero-growth append: order unchanged
      rebuild = true;
      break;
    }
  }

  if (rebuild) {
    const std::span<const cloud::VmId> order = pool.reuse_order();
    scan_next_.assign(pool.size(), cloud::kInvalidVm);
    scan_busy_.resize(pool.size());
    scan_in_list_.assign(pool.size(), 0);
    scan_head_ = cloud::kInvalidVm;
    cloud::VmId* tail = &scan_head_;
    for (const cloud::VmId id : order) {
      *tail = id;
      tail = &scan_next_[id];
      scan_busy_[id] = pool.vm(id).busy_time();
      scan_in_list_[id] = 1;
    }
    scan_level_ = level;
    scan_epoch_ = epoch;
    scan_log_cursor_ = log.size();
    scan_valid_ = true;
  }

  // Walk the survivors in (busy desc, id asc) order — exactly the
  // reuse_order() walk with the already-detected hosts of this level
  // removed. Hosts met for the first time are unlinked as we pass.
  cloud::VmId winner = cloud::kInvalidVm;
  cloud::VmId* link = &scan_head_;
  while (*link != cloud::kInvalidVm) {
    const cloud::Vm& vm = pool.vm(*link);
    if (vm_hosts_level_of(vm, t)) {  // hosts the level: gone for good
      scan_in_list_[*link] = 0;
      *link = scan_next_[vm.id()];
      continue;
    }
    if (!exceed) {
      const util::Seconds est = est_on(t, vm);
      if (vm.placement_adds_btu(est, est + exec_time(t, vm.size()))) {
        link = &scan_next_[vm.id()];  // BTU admissibility is per-task: keep
        continue;
      }
    }
    winner = vm.id();
    break;
  }

  if (g_verify_scan.load(std::memory_order_relaxed)) {
    const cloud::VmId reference = linear_parallel_reuse(t, exceed);
    if (reference != winner)
      throw std::logic_error(
          "PlacementContext::best_parallel_reuse: indexed answer " +
          std::to_string(winner) + " diverged from linear scan " +
          std::to_string(reference) + " for task " + std::to_string(t));
  }
  return winner;
}

std::unique_ptr<ProvisioningPolicy> make_policy(ProvisioningKind kind) {
  switch (kind) {
    case ProvisioningKind::one_vm_per_task:
      return std::make_unique<OneVmPerTask>();
    case ProvisioningKind::start_par_not_exceed:
      return std::make_unique<StartPar>(/*exceed=*/false);
    case ProvisioningKind::start_par_exceed:
      return std::make_unique<StartPar>(/*exceed=*/true);
    case ProvisioningKind::all_par_not_exceed:
      return std::make_unique<AllPar>(/*exceed=*/false);
    case ProvisioningKind::all_par_exceed:
      return std::make_unique<AllPar>(/*exceed=*/true);
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace cloudwf::provisioning
