// Concrete provisioning policies. Internal header (include provisioning/policy.hpp
// and use make_policy from client code).
#pragma once

#include "provisioning/policy.hpp"

namespace cloudwf::provisioning {

/// Sect. III-A: "assigns a new VM to each task even if there remains enough
/// idle time on another that could be used by the ready task."
class OneVmPerTask final : public ProvisioningPolicy {
 public:
  [[nodiscard]] ProvisioningKind kind() const noexcept override {
    return ProvisioningKind::one_vm_per_task;
  }
  [[nodiscard]] cloud::VmId choose_vm(dag::TaskId t, PlacementContext& ctx) override;
};

/// StartPar[Not]Exceed: new VMs for entry tasks only; every other task is
/// appended to the VM with the largest accumulated execution time; in the
/// NotExceed variant a reuse that would add a BTU rents a new VM instead.
class StartPar final : public ProvisioningPolicy {
 public:
  explicit StartPar(bool exceed) noexcept : exceed_(exceed) {}
  [[nodiscard]] ProvisioningKind kind() const noexcept override {
    return exceed_ ? ProvisioningKind::start_par_exceed
                   : ProvisioningKind::start_par_not_exceed;
  }
  [[nodiscard]] cloud::VmId choose_vm(dag::TaskId t, PlacementContext& ctx) override;

 private:
  bool exceed_;
};

/// AllPar[Not]Exceed: each parallel task runs on its own VM (no two tasks of
/// one level share a VM) reusing idle VMs when possible; sequential
/// (single-task-level) tasks reuse the largest-execution-time VM. The
/// NotExceed variant rents instead of growing a reused VM's BTU count.
class AllPar final : public ProvisioningPolicy {
 public:
  explicit AllPar(bool exceed) noexcept : exceed_(exceed) {}
  [[nodiscard]] ProvisioningKind kind() const noexcept override {
    return exceed_ ? ProvisioningKind::all_par_exceed
                   : ProvisioningKind::all_par_not_exceed;
  }
  [[nodiscard]] cloud::VmId choose_vm(dag::TaskId t, PlacementContext& ctx) override;

 private:
  bool exceed_;
};

}  // namespace cloudwf::provisioning
