#include "provisioning/detail.hpp"

#include <span>

#include "obs/trace.hpp"

namespace cloudwf::provisioning {

namespace {
/// Whether reusing `vm` for `t` would grow its BTU count (evaluated at the
/// actual earliest start/finish on that VM).
bool reuse_adds_btu(const PlacementContext& ctx, dag::TaskId t, const cloud::Vm& vm) {
  const util::Seconds est = ctx.est_on(t, vm);
  return vm.placement_adds_btu(est, est + ctx.exec_time(t, vm.size()));
}
}  // namespace

cloud::VmId AllPar::choose_vm(dag::TaskId t, PlacementContext& ctx) {
  const cloud::VmPool& pool = ctx.pool();
  // Used VMs by busy time descending (lowest id on ties): the first
  // admissible entry equals the historical linear scan's "largest
  // accumulated execution time" argmax, without evaluating est_on for the
  // VMs it skips.
  const std::span<const cloud::VmId> order = pool.reuse_order();

  if (!ctx.is_parallel_task(t)) {
    // Sequential task: "executed on the VM with the longest execution time —
    // usually their (largest) predecessor". NotExceed rents when reuse would
    // add a BTU.
    if (order.empty()) return ctx.rent();
    const cloud::Vm& best = pool.vm(order.front());
    if (!exceed_ && reuse_adds_btu(ctx, t, best)) {
      const cloud::VmId id = ctx.rent();
      obs::emit_decision(t, id, 0,
                         "AllParNotExceed: sequential reuse would add a BTU, "
                         "rent");
      return id;
    }
    obs::emit_decision(t, best.id(), 0,
                       "AllPar: sequential task, reuse largest-execution VM");
    return best.id();
  }

  // Parallel task: its own VM, never shared with a same-level task.
  // Preference order keeps data local and idle time low:
  //   1. the largest predecessor's VM (if level-free and BTU-admissible),
  //   2. the level-free used VM with the largest accumulated execution time,
  //   3. a new VM ("the number of parallel tasks exceeds the number of VMs
  //      or a task execution time exceeds the assigned VM's BTU").
  auto admissible = [&](const cloud::Vm& vm) {
    if (ctx.vm_hosts_level_of(vm, t)) return false;
    if (!exceed_ && reuse_adds_btu(ctx, t, vm)) return false;
    return true;
  };

  if (const auto pred = ctx.largest_predecessor(t)) {
    if (ctx.schedule().is_assigned(*pred)) {
      const cloud::Vm& pred_vm = pool.vm(ctx.schedule().assignment(*pred).vm);
      if (admissible(pred_vm)) {
        obs::emit_decision(t, pred_vm.id(), 0,
                           "AllPar: reuse largest predecessor's VM");
        return pred_vm.id();
      }
    }
  }

  // Indexed candidate scan: same first-admissible answer as walking `order`,
  // without paying O(width) level-host skips per task (docs/PERFORMANCE.md).
  if (const cloud::VmId best = ctx.best_parallel_reuse(t, exceed_);
      best != cloud::kInvalidVm) {
    obs::emit_decision(t, best, 0,
                       "AllPar: reuse level-free largest-execution VM");
    return best;
  }
  const cloud::VmId id = ctx.rent();
  obs::emit_decision(t, id, 0,
                     exceed_ ? "AllParExceed: level outgrew the pool, rent"
                             : "AllParNotExceed: no BTU-admissible VM, rent");
  return id;
}

}  // namespace cloudwf::provisioning
