#include "provisioning/detail.hpp"

#include "obs/trace.hpp"

namespace cloudwf::provisioning {

namespace {
/// The reuse target of the StartPar policies: the used VM with the largest
/// accumulated execution time ("the VM with the largest execution time is
/// chosen"); lowest id breaks ties for determinism.
const cloud::Vm* largest_execution_time_vm(const cloud::VmPool& pool) {
  const cloud::Vm* best = nullptr;
  for (const cloud::Vm& vm : pool.vms()) {
    if (!vm.used()) continue;
    if (best == nullptr || vm.busy_time() > best->busy_time()) best = &vm;
  }
  return best;
}
}  // namespace

cloud::VmId StartPar::choose_vm(dag::TaskId t, PlacementContext& ctx) {
  // Entry ("initial workflow") tasks each get their own VM — this is where
  // the policy's start-up parallelism comes from.
  if (ctx.workflow().predecessors(t).empty()) {
    const cloud::VmId id = ctx.rent();
    obs::emit_decision(t, id, 0, "StartPar: entry task, rent");
    return id;
  }

  const cloud::Vm* candidate = largest_execution_time_vm(ctx.schedule().pool());
  if (candidate == nullptr) return ctx.rent();  // no VM yet (defensive)

  if (!exceed_) {
    const util::Seconds est = ctx.est_on(t, *candidate);
    const util::Seconds eft = est + ctx.exec_time(t, candidate->size());
    if (candidate->placement_adds_btu(est, eft)) {
      const cloud::VmId id = ctx.rent();
      obs::emit_decision(t, id, est,
                         "StartParNotExceed: reuse would add a BTU, rent");
      return id;
    }
  }
  obs::emit_decision(t, candidate->id(), 0,
                     exceed_ ? "StartParExceed: reuse largest-execution VM"
                             : "StartParNotExceed: reuse largest-execution VM");
  return candidate->id();
}

}  // namespace cloudwf::provisioning
