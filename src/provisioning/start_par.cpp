#include "provisioning/detail.hpp"

#include "obs/trace.hpp"

namespace cloudwf::provisioning {

cloud::VmId StartPar::choose_vm(dag::TaskId t, PlacementContext& ctx) {
  // Entry ("initial workflow") tasks each get their own VM — this is where
  // the policy's start-up parallelism comes from.
  if (ctx.structure().preds(t).empty()) {
    const cloud::VmId id = ctx.rent();
    obs::emit_decision(t, id, 0, "StartPar: entry task, rent");
    return id;
  }

  // The reuse target ("the VM with the largest execution time is chosen"):
  // the head of the pool's busy-time-ordered reuse index, which equals the
  // old linear scan's argmax with its lowest-id tie-break.
  const std::span<const cloud::VmId> order = ctx.pool().reuse_order();
  if (order.empty()) return ctx.rent();  // no used VM yet (defensive)
  const cloud::Vm& candidate = ctx.pool().vm(order.front());

  if (!exceed_) {
    const util::Seconds est = ctx.est_on(t, candidate);
    const util::Seconds eft = est + ctx.exec_time(t, candidate.size());
    if (candidate.placement_adds_btu(est, eft)) {
      const cloud::VmId id = ctx.rent();
      obs::emit_decision(t, id, est,
                         "StartParNotExceed: reuse would add a BTU, rent");
      return id;
    }
  }
  obs::emit_decision(t, candidate.id(), 0,
                     exceed_ ? "StartParExceed: reuse largest-execution VM"
                             : "StartParNotExceed: reuse largest-execution VM");
  return candidate.id();
}

}  // namespace cloudwf::provisioning
