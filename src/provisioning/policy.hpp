// VM provisioning policies (Sect. III-A): given a ready task, decide whether
// to reuse an existing VM or rent a new one, under a Billing-Time-Unit rule.
//
// The five paper policies:
//   OneVMperTask      — a new VM for every task;
//   StartParNotExceed — new VMs only for entry tasks; others reuse the VM
//                       with the largest accumulated execution time, unless
//                       that would add a BTU (then rent);
//   StartParExceed    — like the previous, but BTU growth never rents;
//   AllParNotExceed   — each parallel task gets its own VM (existing or
//                       new, never sharing a VM with a same-level task);
//                       rent when the level outgrows the pool or reuse
//                       would add a BTU; sequential tasks reuse the
//                       largest-execution-time VM;
//   AllParExceed      — like the previous, but BTU growth never rents.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "cloud/platform.hpp"
#include "dag/structure_cache.hpp"
#include "dag/workflow.hpp"
#include "sim/schedule.hpp"

namespace cloudwf::provisioning {

enum class ProvisioningKind : std::uint8_t {
  one_vm_per_task = 0,
  start_par_not_exceed = 1,
  start_par_exceed = 2,
  all_par_not_exceed = 3,
  all_par_exceed = 4,
};

[[nodiscard]] constexpr std::string_view name_of(ProvisioningKind k) noexcept {
  constexpr std::array<std::string_view, 5> names = {
      "OneVMperTask", "StartParNotExceed", "StartParExceed", "AllParNotExceed",
      "AllParExceed"};
  return names[static_cast<std::size_t>(k)];
}

/// Everything a policy may consult while placing one task, plus the
/// earliest-start-time arithmetic shared by all schedulers.
///
/// Flat-core hot path: the context shares the workflow's StructureCache
/// (levels, CSR adjacency with resolved edge data, largest predecessors)
/// instead of recomputing them per run, memoizes per-(task,size) execution
/// times and per-(edge, size-pair) transfer times, and answers
/// vm_hosts_level_of from an incrementally maintained per-VM level
/// occupancy instead of scanning every placement. All answers are
/// bit-identical to the direct computations they replace.
class PlacementContext {
 public:
  PlacementContext(const dag::Workflow& wf, sim::Schedule& schedule,
                   const cloud::Platform& platform, cloud::InstanceSize vm_size);

  [[nodiscard]] const dag::Workflow& workflow() const noexcept { return *wf_; }
  [[nodiscard]] sim::Schedule& schedule() noexcept { return *schedule_; }
  [[nodiscard]] const sim::Schedule& schedule() const noexcept { return *schedule_; }
  [[nodiscard]] const cloud::Platform& platform() const noexcept {
    return *platform_;
  }

  /// The shared structure tables (adjacency, levels, ranks, …).
  [[nodiscard]] const dag::StructureCache& structure() const noexcept {
    return *structure_;
  }

  /// Read-only pool access that leaves the reuse index clean (the mutable
  /// Schedule::pool() would conservatively invalidate it).
  [[nodiscard]] const cloud::VmPool& pool() const noexcept {
    return std::as_const(*schedule_).pool();
  }

  /// Instance size used for newly rented VMs in this run.
  [[nodiscard]] cloud::InstanceSize vm_size() const noexcept { return vm_size_; }
  [[nodiscard]] cloud::RegionId region() const noexcept { return region_; }

  /// Level of each task (longest-hop distance from an entry).
  [[nodiscard]] const std::vector<int>& levels() const {
    return structure_->levels();
  }

  /// True iff the task shares its level with at least one other task.
  [[nodiscard]] bool is_parallel_task(dag::TaskId t) const {
    return structure_->is_parallel(t);
  }

  /// True iff `vm` already hosts a task of the same level as `t`.
  [[nodiscard]] bool vm_hosts_level_of(const cloud::Vm& vm, dag::TaskId t) const;

  /// Earliest start of `t` on `vm`: max of the VM's availability, the boot
  /// completion and every predecessor's finish + transfer to `vm`.
  /// Predecessors must already be assigned.
  [[nodiscard]] util::Seconds est_on(dag::TaskId t, const cloud::Vm& vm) const;

  /// Earliest start of `t` on a hypothetical fresh VM of vm_size().
  [[nodiscard]] util::Seconds est_on_new(dag::TaskId t) const;

  /// Execution time of `t` on an instance of size `s` (memoized per size).
  [[nodiscard]] util::Seconds exec_time(dag::TaskId t, cloud::InstanceSize s) const {
    const auto& table = exec_[cloud::index_of(s)];
    return table.empty() ? fill_exec_table(s)[t] : table[t];
  }

  /// Rents a fresh VM of vm_size() in the default region.
  [[nodiscard]] cloud::VmId rent() {
    return schedule_->rent(vm_size_, region_);
  }

  /// The predecessor of `t` with the largest work (the paper's "(largest)
  /// predecessor"); nullopt for entry tasks.
  [[nodiscard]] std::optional<dag::TaskId> largest_predecessor(dag::TaskId t) const;

  /// AllPar's parallel-task reuse scan: the used VM with the largest busy
  /// time (lowest id on ties) that does not already host `t`'s level and —
  /// unless `exceed` — whose reuse would not add a BTU. kInvalidVm when no
  /// such VM exists (the caller rents). Equals the first admissible element
  /// of a linear walk over reuse_order(), but answered from a candidate
  /// list bound to `t`'s level: while a level is being placed, a surviving
  /// candidate's busy time is frozen (any same-level placement turns its VM
  /// into a host), so one reuse_order() snapshot stays exactly sorted and
  /// hosts are unlinked in O(1) when a walk first meets them instead of
  /// being re-skipped by every later task. The pool's placement_log() tells
  /// the scan which VMs changed between calls; any change that is not a
  /// same-level host (a foreign caller interleaving levels) rebuilds the
  /// snapshot. Turns the per-level O(width²) host-skip scan into O(width).
  [[nodiscard]] cloud::VmId best_parallel_reuse(dag::TaskId t, bool exceed);

  /// Globally cross-checks every best_parallel_reuse answer against the
  /// historical linear scan; mismatches throw std::logic_error. Test-only.
  static void set_scan_verification(bool on) noexcept;

 private:
  [[nodiscard]] const std::vector<util::Seconds>& fill_exec_table(
      cloud::InstanceSize s) const;
  [[nodiscard]] util::Seconds transfer_cached(std::size_t edge_slot,
                                              util::Gigabytes data,
                                              const cloud::Vm& from,
                                              const cloud::Vm& to) const;
  void refresh_occupancy(const cloud::Vm& vm) const;

  const dag::Workflow* wf_;
  sim::Schedule* schedule_;
  const cloud::Platform* platform_;
  std::shared_ptr<const dag::StructureCache> structure_;
  cloud::InstanceSize vm_size_;
  cloud::RegionId region_;

  // Memoized exec times: one table per instance size, filled on first use.
  mutable std::array<std::vector<util::Seconds>, cloud::kSizeCount> exec_;

  // Memoized transfer times per (incoming-edge slot, from-size x to-size)
  // for default-region endpoints on distinct VMs; < 0 means "not yet
  // computed" (real transfer times are nonnegative).
  mutable std::vector<util::Seconds> transfer_;

  [[nodiscard]] bool reuse_is_admissible(dag::TaskId t, const cloud::Vm& vm,
                                         bool exceed) const;
  [[nodiscard]] cloud::VmId linear_parallel_reuse(dag::TaskId t, bool exceed) const;

  // Per-VM level occupancy, maintained lazily: vm_cursor_[id] placements of
  // VM id have been folded into vm_levels_ (a level-count-striped bitset
  // row per VM). Placements are append-only through VmPool::place; any
  // other mutation bumps the pool's epoch and drops the whole table.
  mutable std::vector<std::uint32_t> vm_cursor_;
  mutable std::vector<char> vm_levels_;
  mutable std::uint64_t occupancy_epoch_ = 0;

  // AllPar candidate list (best_parallel_reuse): a reuse_order() snapshot
  // threaded as a singly linked list (scan_next_ indexed by VM id,
  // kInvalidVm-terminated), valid for one (level, pool epoch) pair with
  // per-member busy-time snapshots in scan_busy_. Advanced between scans by
  // folding the pool's placement_log() suffix past scan_log_cursor_.
  std::vector<cloud::VmId> scan_next_;
  std::vector<util::Seconds> scan_busy_;
  std::vector<char> scan_in_list_;
  cloud::VmId scan_head_ = cloud::kInvalidVm;
  int scan_level_ = -1;
  std::uint64_t scan_epoch_ = 0;
  std::size_t scan_log_cursor_ = 0;
  bool scan_valid_ = false;
};

class ProvisioningPolicy {
 public:
  virtual ~ProvisioningPolicy() = default;

  [[nodiscard]] virtual ProvisioningKind kind() const noexcept = 0;
  [[nodiscard]] std::string_view name() const noexcept { return name_of(kind()); }

  /// Chooses (renting if necessary) the VM that will run `t`. All of `t`'s
  /// predecessors must already be assigned in the context's schedule.
  [[nodiscard]] virtual cloud::VmId choose_vm(dag::TaskId t,
                                              PlacementContext& ctx) = 0;
};

/// Factory for the five paper policies.
[[nodiscard]] std::unique_ptr<ProvisioningPolicy> make_policy(ProvisioningKind kind);

}  // namespace cloudwf::provisioning
