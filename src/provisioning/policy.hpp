// VM provisioning policies (Sect. III-A): given a ready task, decide whether
// to reuse an existing VM or rent a new one, under a Billing-Time-Unit rule.
//
// The five paper policies:
//   OneVMperTask      — a new VM for every task;
//   StartParNotExceed — new VMs only for entry tasks; others reuse the VM
//                       with the largest accumulated execution time, unless
//                       that would add a BTU (then rent);
//   StartParExceed    — like the previous, but BTU growth never rents;
//   AllParNotExceed   — each parallel task gets its own VM (existing or
//                       new, never sharing a VM with a same-level task);
//                       rent when the level outgrows the pool or reuse
//                       would add a BTU; sequential tasks reuse the
//                       largest-execution-time VM;
//   AllParExceed      — like the previous, but BTU growth never rents.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "cloud/platform.hpp"
#include "dag/graph_algo.hpp"
#include "dag/workflow.hpp"
#include "sim/schedule.hpp"

namespace cloudwf::provisioning {

enum class ProvisioningKind : std::uint8_t {
  one_vm_per_task = 0,
  start_par_not_exceed = 1,
  start_par_exceed = 2,
  all_par_not_exceed = 3,
  all_par_exceed = 4,
};

[[nodiscard]] constexpr std::string_view name_of(ProvisioningKind k) noexcept {
  constexpr std::array<std::string_view, 5> names = {
      "OneVMperTask", "StartParNotExceed", "StartParExceed", "AllParNotExceed",
      "AllParExceed"};
  return names[static_cast<std::size_t>(k)];
}

/// Everything a policy may consult while placing one task, plus the
/// earliest-start-time arithmetic shared by all schedulers.
class PlacementContext {
 public:
  PlacementContext(const dag::Workflow& wf, sim::Schedule& schedule,
                   const cloud::Platform& platform, cloud::InstanceSize vm_size);

  [[nodiscard]] const dag::Workflow& workflow() const noexcept { return *wf_; }
  [[nodiscard]] sim::Schedule& schedule() noexcept { return *schedule_; }
  [[nodiscard]] const sim::Schedule& schedule() const noexcept { return *schedule_; }
  [[nodiscard]] const cloud::Platform& platform() const noexcept {
    return *platform_;
  }

  /// Instance size used for newly rented VMs in this run.
  [[nodiscard]] cloud::InstanceSize vm_size() const noexcept { return vm_size_; }
  [[nodiscard]] cloud::RegionId region() const noexcept {
    return platform_->default_region_id();
  }

  /// Level of each task (longest-hop distance from an entry).
  [[nodiscard]] const std::vector<int>& levels() const { return levels_; }

  /// True iff the task shares its level with at least one other task.
  [[nodiscard]] bool is_parallel_task(dag::TaskId t) const {
    return level_sizes_[static_cast<std::size_t>(levels_[t])] > 1;
  }

  /// True iff `vm` already hosts a task of the same level as `t`.
  [[nodiscard]] bool vm_hosts_level_of(const cloud::Vm& vm, dag::TaskId t) const;

  /// Earliest start of `t` on `vm`: max of the VM's availability, the boot
  /// completion and every predecessor's finish + transfer to `vm`.
  /// Predecessors must already be assigned.
  [[nodiscard]] util::Seconds est_on(dag::TaskId t, const cloud::Vm& vm) const;

  /// Earliest start of `t` on a hypothetical fresh VM of vm_size().
  [[nodiscard]] util::Seconds est_on_new(dag::TaskId t) const;

  /// Execution time of `t` on an instance of size `s`.
  [[nodiscard]] util::Seconds exec_time(dag::TaskId t, cloud::InstanceSize s) const {
    return cloud::exec_time(wf_->task(t).work, s);
  }

  /// Rents a fresh VM of vm_size() in the default region.
  [[nodiscard]] cloud::VmId rent() {
    return schedule_->rent(vm_size_, region());
  }

  /// The predecessor of `t` with the largest work (the paper's "(largest)
  /// predecessor"); nullopt for entry tasks.
  [[nodiscard]] std::optional<dag::TaskId> largest_predecessor(dag::TaskId t) const;

 private:
  const dag::Workflow* wf_;
  sim::Schedule* schedule_;
  const cloud::Platform* platform_;
  cloud::InstanceSize vm_size_;
  std::vector<int> levels_;
  std::vector<std::size_t> level_sizes_;
};

class ProvisioningPolicy {
 public:
  virtual ~ProvisioningPolicy() = default;

  [[nodiscard]] virtual ProvisioningKind kind() const noexcept = 0;
  [[nodiscard]] std::string_view name() const noexcept { return name_of(kind()); }

  /// Chooses (renting if necessary) the VM that will run `t`. All of `t`'s
  /// predecessors must already be assigned in the context's schedule.
  [[nodiscard]] virtual cloud::VmId choose_vm(dag::TaskId t,
                                              PlacementContext& ctx) = 0;
};

/// Factory for the five paper policies.
[[nodiscard]] std::unique_ptr<ProvisioningPolicy> make_policy(ProvisioningKind kind);

}  // namespace cloudwf::provisioning
