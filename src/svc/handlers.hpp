// Evaluation handlers: the bridge from decoded service requests to the
// experiment layer. Everything here is deterministic — a handler's body is
// a pure function of (request, platform) — so the server's batched/cached
// path and a direct serial call produce byte-identical JSON. The
// tests/svc equivalence suite certifies exactly that.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cloud/platform.hpp"
#include "exp/experiment.hpp"
#include "svc/protocol.hpp"

namespace cloudwf::svc {

/// Resolves a served workflow name to its structure. Throws BadRequest for
/// unknown names (the protocol layer rejects them earlier; this is the
/// defense-in-depth copy).
[[nodiscard]] dag::Workflow workflow_by_name(const std::string& name);

/// Throws BadRequest when `label` names neither a paper strategy nor a
/// baseline — checked before a request is admitted to the queue, so bad
/// labels cost a 400, not a queue slot.
void validate_strategy_label(const std::string& label);

/// Per-batch memo: distinct (workflow, scenario, seed, strategy) cells are
/// evaluated once per batch even when several coalesced requests ask for
/// overlapping seed ranges. Single-threaded by construction (one worker
/// owns one batch).
struct EvalCache {
  std::map<std::string, exp::RunResult> run;            ///< one strategy cell
  std::map<std::string, std::vector<exp::RunResult>> rank;  ///< 19-row cell
};

/// One RunResult as the service reports it. Costs are integer micro-dollars
/// (exact — no float formatting drift between server and client).
[[nodiscard]] util::Json run_result_json(const exp::RunResult& result,
                                         std::uint64_t seed);

/// One evaluated cell with the seed it answers for. Both wire encoders
/// (JSON evaluate_body/rank_body and the binary bodies in binproto.cpp)
/// derive their responses from these rows, so the two protocols always
/// report identical data for the same request.
struct ResultRow {
  std::uint64_t seed = 0;
  exp::RunResult result;
};

/// Rows of a /v1/evaluate answer: the strategy evaluated on every seed of
/// the request's range, in seed order.
[[nodiscard]] std::vector<ResultRow> evaluate_rows(
    const EvaluateRequest& request, const cloud::Platform& platform,
    EvalCache* cache = nullptr);

/// Rows of a /v1/rank answer: all 19 paper strategies in legend order.
[[nodiscard]] std::vector<ResultRow> rank_rows(const RankRequest& request,
                                               const cloud::Platform& platform,
                                               EvalCache* cache = nullptr);

/// Body of a /v1/evaluate response: the strategy evaluated on every seed of
/// the request's range, in seed order.
[[nodiscard]] std::string evaluate_body(const EvaluateRequest& request,
                                        const cloud::Platform& platform,
                                        EvalCache* cache = nullptr);

/// Body of a /v1/rank response: all 19 paper strategies in legend order.
[[nodiscard]] std::string rank_body(const RankRequest& request,
                                    const cloud::Platform& platform,
                                    EvalCache* cache = nullptr);

/// Rows of a /v1/shard answer: the shard's cells in canonical grid order,
/// in integer fixed point (exp::run_shard — one materialization and one
/// reference run per (workflow, scenario, seed) group).
[[nodiscard]] std::vector<exp::SweepRow> shard_rows(
    const exp::ShardSpec& shard, const cloud::Platform& platform);

/// One sweep row as the JSON shard response reports it. Every field is an
/// integer (micros / ppm) — shard responses must merge bit-identically
/// across the wire, so no float ever travels.
[[nodiscard]] util::Json sweep_row_json(const exp::SweepRow& row);

/// Body of a /v1/shard response:
///   {"shard_id":N,"rows":[{...integer fields...}]}
[[nodiscard]] std::string shard_body(const exp::ShardSpec& shard,
                                     const cloud::Platform& platform);

}  // namespace cloudwf::svc
