// Minimal HTTP/1.1 over POSIX sockets — the service front end's wire layer.
//
// Deliberately tiny and dependency-free: blocking I/O, a strict request
// parser (request line + headers + Content-Length body, bounded sizes), a
// response serializer, and a keep-alive client used by the load generator,
// the benches and the tests. No TLS, no chunked encoding, no pipelining —
// the service speaks JSON over POST/GET with explicit Content-Length, which
// is all `cloudwf serve` needs and all `cloudwf_load` generates.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cloudwf::svc {

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string target;   ///< request target, e.g. "/v1/evaluate"
  std::string version;  ///< "HTTP/1.1"
  std::map<std::string, std::string> headers;  ///< names lower-cased
  std::string body;

  /// Header lookup by lower-case name; empty string when absent.
  [[nodiscard]] std::string_view header(const std::string& name) const;

  /// True when the client asked to keep the connection open (HTTP/1.1
  /// default unless "Connection: close").
  [[nodiscard]] bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::string body;
  std::string content_type = "application/json";
  bool close_connection = false;  ///< emit "Connection: close"
};

/// Reason phrase for the handful of status codes the service emits.
[[nodiscard]] std::string_view reason_phrase(int status) noexcept;

/// Serializes a response with Content-Length (and Connection: close when
/// requested).
[[nodiscard]] std::string serialize_response(const HttpResponse& response);

/// Outcome of reading one request off a socket.
enum class ReadStatus : std::uint8_t {
  ok = 0,        ///< a complete request was parsed
  closed = 1,    ///< peer closed (or shutdown) before any byte arrived
  malformed = 2, ///< syntactically invalid request (connection unusable)
  too_large = 3, ///< header block or body exceeded the limits
  not_implemented = 4,  ///< valid HTTP the server refuses to speak (chunked)
};

struct ReadResult {
  ReadStatus status = ReadStatus::closed;
  HttpRequest request;       ///< valid when status == ok
  std::string error;         ///< human-readable detail otherwise
};

/// Size limits for inbound requests (network input is untrusted).
struct HttpLimits {
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 1024 * 1024;
};

/// Outcome of one incremental parse attempt over an in-memory buffer.
enum class ParseStatus : std::uint8_t {
  need_more = 0,  ///< the buffer holds a valid prefix; read more bytes
  ok = 1,         ///< a complete request was parsed (`consumed` bytes)
  malformed = 2,
  too_large = 3,
  not_implemented = 4,
};

struct ParseResult {
  ParseStatus status = ParseStatus::need_more;
  HttpRequest request;        ///< valid when status == ok
  std::string error;          ///< human-readable detail on failure
  std::size_t consumed = 0;   ///< bytes of the buffer this request occupied
};

/// Incremental request parser: examines `buffer` (the unconsumed inbound
/// bytes of one connection) and either produces a complete request, asks
/// for more bytes, or rejects the prefix. Pure function of the buffer —
/// the event loop calls it after every read, and the blocking
/// read_http_request is a recv() loop around it.
[[nodiscard]] ParseResult parse_http_request(std::string_view buffer,
                                             const HttpLimits& limits = {});

/// Blocking read of one full request from `fd`. `carry` holds bytes already
/// read past the previous request on this connection (keep-alive); leftover
/// bytes after this request are written back into it.
[[nodiscard]] ReadResult read_http_request(int fd, std::string& carry,
                                           const HttpLimits& limits = {});

/// Blocking write of the whole buffer; false on error/EPIPE.
[[nodiscard]] bool write_all(int fd, std::string_view data);

/// Parses a complete request held in memory (header block + body already
/// assembled) — exposed for the unit tests; read_http_request uses it.
[[nodiscard]] std::optional<HttpRequest> parse_request_head(
    std::string_view head, std::string* error);

/// Blocking keep-alive HTTP client (loopback testing + load generation).
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port);
  void disconnect();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one request and blocks for the response. Reconnects once if the
  /// server closed the kept-alive connection. Returns nullopt on transport
  /// failure. `extra_headers` are emitted verbatim after the standard ones
  /// (e.g. {"X-Tenant", "alice"} for the multi-tenant endpoints).
  /// `content_type` selects the protocol (JSON by default; the compact
  /// binary protocol sends svc::kBinaryContentType — see svc/binproto.hpp).
  [[nodiscard]] std::optional<HttpResponse> request(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::vector<std::pair<std::string, std::string>>& extra_headers =
          {},
      const std::string& content_type = "application/json");

  /// The send half of request(): writes the request and returns without
  /// waiting for the response. Reconnects once if a kept-alive connection
  /// was dropped (safe — nothing is outstanding yet). Each successful
  /// send() must be paired with one receive() before the next send on this
  /// connection; the client does not pipeline. The load generator's
  /// connection pool uses this to keep several requests in flight across
  /// connections from one thread.
  [[nodiscard]] bool send(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::vector<std::pair<std::string, std::string>>& extra_headers =
          {},
      const std::string& content_type = "application/json");

  /// The receive half: blocks for the response to the last send(). Returns
  /// nullopt on transport failure — the in-flight request is lost and the
  /// caller must reconnect (receive() cannot replay a send).
  [[nodiscard]] std::optional<HttpResponse> receive();

 private:
  [[nodiscard]] std::string build_wire(
      const std::string& method, const std::string& target,
      const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& extra_headers,
      const std::string& content_type) const;
  [[nodiscard]] std::optional<HttpResponse> roundtrip(const std::string& wire);

  std::string host_;
  std::uint16_t port_ = 0;
  int fd_ = -1;
  std::string carry_;
};

}  // namespace cloudwf::svc
