// Compact binary protocol — the service's second wire format, negotiated
// per request via `Content-Type: application/x-cloudwf-bin` on the same
// port as JSON (docs/SERVICE.md documents the frame layout).
//
// One frame per request/response body:
//
//   [u32 payload_len][u8 version = 1][u8 kind][payload]
//
// All integers are little-endian. Strings are [u16 len][bytes]. Every
// numeric result field is integer fixed-point: costs are exact
// micro-dollars (the same util::Money.micros() the JSON encoder emits),
// durations are microseconds and ratios/percentages are millionths
// (llround(value * 1e6)) — so a decoded frame re-encodes to the identical
// bytes (the fuzz target's fixed point) and clients never parse floats.
//
// decode_frame() is strict: the length prefix must match the buffer
// exactly, unknown versions/kinds/scenarios and truncated fields throw
// BinProtoError carrying the byte offset of the violation. Semantic checks
// (known workflow, seed-range caps) stay at the server boundary, shared
// with the JSON path.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "exp/experiment.hpp"
#include "svc/handlers.hpp"
#include "svc/protocol.hpp"

namespace cloudwf::svc {

inline constexpr std::uint8_t kBinaryVersion = 1;
inline constexpr const char* kBinaryContentType = "application/x-cloudwf-bin";

enum class FrameKind : std::uint8_t {
  evaluate_request = 1,
  rank_request = 2,
  evaluate_response = 3,
  rank_response = 4,
  error = 5,
  shard_request = 6,   ///< payload: exp::ShardSpec (distributed fabric)
  shard_response = 7,  ///< payload: BinShardResponse
};

/// One result row in integer fixed point (see the header comment for the
/// exact scaling of each field against its JSON counterpart).
struct BinResultRow {
  std::uint64_t seed = 0;
  std::string strategy;
  std::int64_t makespan_us = 0;
  std::int64_t vm_cost_micros = 0;
  std::int64_t egress_cost_micros = 0;
  std::int64_t total_cost_micros = 0;
  std::int64_t idle_us = 0;
  std::int64_t busy_us = 0;
  std::uint32_t vms_used = 0;
  std::int64_t total_btus = 0;
  std::int64_t utilization_ppm = 0;
  std::int64_t gain_pct_ppm = 0;
  std::int64_t loss_pct_ppm = 0;

  friend bool operator==(const BinResultRow&, const BinResultRow&) = default;
};

struct BinEvaluateResponse {
  std::string workflow;
  workload::ScenarioKind scenario = workload::ScenarioKind::pareto;
  std::string strategy;
  std::vector<BinResultRow> rows;
};

struct BinRankResponse {
  std::string workflow;
  workload::ScenarioKind scenario = workload::ScenarioKind::pareto;
  std::uint64_t seed = 0;
  std::vector<BinResultRow> rows;
};

struct BinError {
  std::uint16_t status = 400;
  std::string message;
};

/// A shard's answer: its rows in canonical cell order. The rows are the
/// same integer fixed point as every other response, so a coordinator
/// merging frames from many workers reassembles the serial sweep exactly.
struct BinShardResponse {
  std::uint64_t shard_id = 0;
  std::vector<BinResultRow> rows;

  friend bool operator==(const BinShardResponse&,
                         const BinShardResponse&) = default;
};

/// Any decoded frame. Requests reuse the protocol-layer structs (shard
/// requests are exp::ShardSpec verbatim), so the server feeds them straight
/// into the same handlers as JSON.
using BinFrame =
    std::variant<EvaluateRequest, RankRequest, BinEvaluateResponse,
                 BinRankResponse, BinError, exp::ShardSpec, BinShardResponse>;

/// Wire-level violation: `offset` is the byte position (into the buffer
/// handed to decode_frame) where the violation was detected — always
/// <= buffer size, which the fuzz target asserts.
class BinProtoError : public std::runtime_error {
 public:
  BinProtoError(std::size_t at, const std::string& message)
      : std::runtime_error(message + " (at byte " + std::to_string(at) + ")"),
        offset(at) {}
  std::size_t offset;
};

[[nodiscard]] std::string encode_frame(const BinFrame& frame);
[[nodiscard]] BinFrame decode_frame(std::string_view bytes);

/// Converts one evaluated cell into its fixed-point row.
[[nodiscard]] BinResultRow bin_row(const exp::RunResult& result,
                                   std::uint64_t seed);

/// An {status, message} error as one encoded frame — the binary analogue of
/// protocol.hpp's error_body().
[[nodiscard]] std::string bin_error_frame(int status,
                                          const std::string& message);

/// Response bodies for the two compute endpoints, built from the same
/// handler rows as the JSON bodies (handlers.hpp evaluate_rows/rank_rows),
/// so the two protocols answer from identical data.
[[nodiscard]] std::string evaluate_body_bin(const EvaluateRequest& request,
                                            const cloud::Platform& platform,
                                            EvalCache* cache = nullptr);
[[nodiscard]] std::string rank_body_bin(const RankRequest& request,
                                        const cloud::Platform& platform,
                                        EvalCache* cache = nullptr);

/// Lossless SweepRow <-> BinResultRow conversions (the two structs are
/// field-identical; a test pins that).
[[nodiscard]] BinResultRow bin_sweep_row(const exp::SweepRow& row);
[[nodiscard]] exp::SweepRow sweep_row_of(const BinResultRow& row);

/// Body of a binary /v1/shard response, from the same handler rows as the
/// JSON body.
[[nodiscard]] std::string shard_body_bin(const exp::ShardSpec& shard,
                                         const cloud::Platform& platform);

}  // namespace cloudwf::svc
