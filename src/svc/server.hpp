// The long-running simulation service behind `cloudwf serve`.
//
// The network path is event-driven: `event_loop_threads` EventLoops share
// one nonblocking listen socket (EPOLLEXCLUSIVE) and run every accept, read
// and write without ever blocking a thread on a single connection. The
// server plugs in as the loops' dispatcher: GET /health, GET /stats and
// /v1/tenants are answered inline on the loop thread, while POST
// /v1/evaluate and /v1/rank are decoded (JSON, or the compact binary
// protocol when Content-Type is application/x-cloudwf-bin),
// admission-checked and enqueued on the Batcher, whose batches execute on
// a util::ThreadPool of `workers` compute threads. The batch worker hands
// the finished response back to the owning loop through the request's
// on_ready hook — no thread ever parks on a future.
//
// Because every handler body is a pure function of the request (fixed
// platform, seeded RNG), identical compute requests can be answered from a
// bounded response cache without running a batch; `response_cache_entries`
// sizes it (0 disables). Batch admission is tenant-weighted
// deficit-round-robin — see batcher.hpp.
//
// Shutdown (`stop()`, wired to SIGTERM in the CLI) is a graceful drain:
// the loops stop accepting, idle connections close, in-flight requests are
// answered with `Connection: close`, queued batches run to completion, and
// only then do the compute workers exit. A TraceRecorder spans the
// server's lifetime as the process-global recorder; /stats surfaces its
// phases and counters live, along with per-loop epoll statistics.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/platform.hpp"
#include "obs/trace.hpp"
#include "svc/batcher.hpp"
#include "svc/event_loop.hpp"
#include "svc/http.hpp"
#include "tenant/tenant.hpp"
#include "util/thread_pool.hpp"

namespace cloudwf::svc {

struct ServerConfig {
  std::uint16_t port = 8080;  ///< 0 = ephemeral (tests/benches); see port()
  std::size_t workers = 4;    ///< compute pool size
  std::size_t max_queue = 64; ///< admission bound — beyond it, 429
  std::chrono::milliseconds request_timeout{5000};  ///< per-request deadline
  std::size_t max_connections = 128;  ///< concurrent connections; beyond, 503
  std::size_t event_loop_threads = 0;  ///< 0 = auto (cores/4, clamped to 1..4)
  std::size_t response_cache_entries = 8192;  ///< 0 disables the cache
  /// IPv4 address to bind. Anything but loopback requires auth_token —
  /// start() refuses to expose an unauthenticated server to a network.
  std::string bind_address = "127.0.0.1";
  /// Shared secret. When non-empty, every request except GET /health must
  /// carry it in X-Auth-Token (compared in constant time) or is answered
  /// 401. /health stays open for load-balancer liveness probes.
  std::string auth_token;
};

class Server {
 public:
  explicit Server(ServerConfig config,
                  cloud::Platform platform = cloud::Platform::ec2());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the event loops. Throws std::runtime_error
  /// when the port cannot be bound. Returns once the socket is live — a
  /// client may connect the moment this returns.
  void start();

  /// Graceful drain: stop accepting, finish in-flight requests, run every
  /// queued batch, then stop the workers. Idempotent, thread-safe.
  void stop();

  /// The bound port (resolves config.port == 0 to the kernel's choice).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] const ServiceCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const obs::TraceRecorder& recorder() const noexcept {
    return recorder_;
  }
  [[nodiscard]] bool running() const noexcept {
    return started_ && !stopping_.load(std::memory_order_acquire);
  }
  /// Event loops actually running (resolved from config).
  [[nodiscard]] std::size_t event_loop_count() const noexcept {
    return loops_.size();
  }

 private:
  /// EventLoop dispatcher: answers inline (returns true, fills `sync`) or
  /// defers to the batcher (returns false after capturing `done`).
  bool dispatch(HttpRequest&& request, HttpResponse& sync,
                EventLoop::Completion done);
  bool handle_compute(HttpRequest&& request, QueuedRequest::Kind kind,
                      HttpResponse& sync, EventLoop::Completion done);
  [[nodiscard]] HttpResponse handle_tenants(const HttpRequest& request);
  /// Resolves the X-Tenant header: nullopt + a filled 400 response for an
  /// unregistered name, a valid id for a registered one, kInvalidTenant
  /// (anonymous, always accepted) when the header is absent. Fills `weight`
  /// with the tenant's DRR weight (1.0 for anonymous).
  [[nodiscard]] std::optional<tenant::TenantId> resolve_tenant(
      const HttpRequest& request, HttpResponse* error, double* weight);
  [[nodiscard]] std::string health_body() const;
  [[nodiscard]] std::string stats_body() const;

  ServerConfig config_;
  cloud::Platform platform_;
  ServiceCounters counters_;
  obs::TraceRecorder recorder_;

  util::ThreadPool pool_;
  Batcher batcher_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;
  bool stopped_ = false;

  std::vector<std::unique_ptr<EventLoop>> loops_;

  /// Bounded cache of successful compute responses, keyed by the full
  /// request identity (protocol, endpoint, workflow, scenario, strategy,
  /// seeds). Sound because handler bodies are deterministic pure functions
  /// of the request. Cleared wholesale when full — the workload's key space
  /// is small, so eviction sophistication buys nothing.
  struct CachedResponse {
    std::string body;
    std::string content_type;
  };
  mutable std::mutex cache_mutex_;
  std::unordered_map<std::string, CachedResponse> response_cache_;

  /// Tenant accounts (POST /v1/tenants) and their request counters,
  /// surfaced per tenant in /stats. Guarded by tenants_mutex_: loop
  /// threads register and count concurrently.
  struct TenantUsage {
    std::uint64_t evaluate = 0;
    std::uint64_t rank = 0;
  };
  mutable std::mutex tenants_mutex_;
  tenant::TenantRegistry tenants_;
  std::vector<TenantUsage> tenant_usage_;  ///< indexed by TenantId
};

}  // namespace cloudwf::svc
