// The long-running simulation service behind `cloudwf serve`.
//
// One accept thread hands each TCP connection to a detached connection
// thread (bounded by max_connections) that speaks keep-alive HTTP/1.1.
// GET /health and GET /stats are answered inline; POST /v1/evaluate and
// POST /v1/rank are decoded, admission-checked and enqueued on the Batcher,
// whose batches execute on a util::ThreadPool of `workers` compute threads.
// The connection thread blocks on the request's future — the worker always
// fulfils it (result, 400, 500 or a 504 deadline answer), so no client is
// ever left hanging.
//
// Shutdown (`stop()`, wired to SIGTERM in the CLI) is a graceful drain:
// the listener closes, in-flight connections are woken and finish their
// current request, queued work runs to completion, and only then do the
// compute workers exit. A TraceRecorder spans the server's lifetime as the
// process-global recorder, so every request contributes obs phases and
// counters; /stats surfaces them live.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cloud/platform.hpp"
#include "obs/trace.hpp"
#include "svc/batcher.hpp"
#include "svc/http.hpp"
#include "tenant/tenant.hpp"
#include "util/thread_pool.hpp"

namespace cloudwf::svc {

struct ServerConfig {
  std::uint16_t port = 8080;  ///< 0 = ephemeral (tests/benches); see port()
  std::size_t workers = 4;    ///< compute pool size
  std::size_t max_queue = 64; ///< admission bound — beyond it, 429
  std::chrono::milliseconds request_timeout{5000};  ///< per-request deadline
  std::size_t max_connections = 128;  ///< concurrent connections; beyond, 503
};

class Server {
 public:
  explicit Server(ServerConfig config,
                  cloud::Platform platform = cloud::Platform::ec2());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts accepting. Throws std::runtime_error when the
  /// port cannot be bound. Returns once the socket is live — a client may
  /// connect the moment this returns.
  void start();

  /// Graceful drain: stop accepting, finish in-flight requests, run every
  /// queued batch, then stop the workers. Idempotent.
  void stop();

  /// The bound port (resolves config.port == 0 to the kernel's choice).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] const ServiceCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const obs::TraceRecorder& recorder() const noexcept {
    return recorder_;
  }
  [[nodiscard]] bool running() const noexcept {
    return started_ && !stopping_.load(std::memory_order_acquire);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  [[nodiscard]] HttpResponse dispatch(const HttpRequest& request);
  [[nodiscard]] HttpResponse handle_compute(const HttpRequest& request,
                                            QueuedRequest::Kind kind);
  [[nodiscard]] HttpResponse handle_tenants(const HttpRequest& request);
  /// Resolves the X-Tenant header: nullopt + a filled 400 response for an
  /// unregistered name, a valid id for a registered one, kInvalidTenant
  /// (anonymous, always accepted) when the header is absent.
  [[nodiscard]] std::optional<tenant::TenantId> resolve_tenant(
      const HttpRequest& request, HttpResponse* error);
  [[nodiscard]] std::string health_body() const;
  [[nodiscard]] std::string stats_body() const;

  ServerConfig config_;
  cloud::Platform platform_;
  ServiceCounters counters_;
  obs::TraceRecorder recorder_;

  util::ThreadPool pool_;
  Batcher batcher_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  std::mutex connections_mutex_;
  std::condition_variable connections_idle_;
  std::set<int> connection_fds_;

  /// Tenant accounts (POST /v1/tenants) and their request counters,
  /// surfaced per tenant in /stats. Guarded by tenants_mutex_: connection
  /// threads register and count concurrently.
  struct TenantUsage {
    std::uint64_t evaluate = 0;
    std::uint64_t rank = 0;
  };
  mutable std::mutex tenants_mutex_;
  tenant::TenantRegistry tenants_;
  std::vector<TenantUsage> tenant_usage_;  ///< indexed by TenantId
};

}  // namespace cloudwf::svc
