// The service's JSON request/response schema (documented in
// docs/SERVICE.md).
//
// Two compute endpoints plus two introspection endpoints:
//
//   POST /v1/evaluate  {"workflow":"montage","strategy":"AllParExceed-m",
//                       "scenario":"pareto","seed":7}            one seed, or
//                      {... ,"seeds":[0,29]}                     an inclusive
//                      seed range — evaluates one strategy per seed.
//   POST /v1/rank      {"workflow":"montage","scenario":"pareto","seed":7}
//                      — all 19 paper strategies in legend order.
//   GET  /health       liveness + capacity snapshot.
//   GET  /stats        service counters, batching stats, obs counters and
//                      phase timings.
//
// Decoding is strict: unknown workflows/strategies/scenarios, missing
// fields, type mismatches and malformed JSON all raise BadRequest, which
// the server maps to 400 with the offending detail (and byte offset for
// JSON syntax errors — see util::JsonParseError).
//
// JSON is the default wire format, not the only one: the same request
// structs (EvaluateRequest/RankRequest) also travel as compact binary
// frames when a request negotiates `Content-Type:
// application/x-cloudwf-bin` — see svc/binproto.hpp. The semantic checks
// below (known workflow, strategy label, seed-range cap) run identically
// for both formats at the server boundary.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/sweep_grid.hpp"
#include "util/json.hpp"
#include "workload/scenario.hpp"

namespace cloudwf::svc {

/// Client-side error: the request cannot be served as written. The server
/// answers 400 with this message as the "error" field.
class BadRequest : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Decoded /v1/evaluate payload.
struct EvaluateRequest {
  std::string workflow;   ///< named workflow (montage, cstem, ...)
  std::string strategy;   ///< paper legend label
  workload::ScenarioKind scenario = workload::ScenarioKind::pareto;
  std::uint64_t seed_begin = 0;  ///< first seed (inclusive)
  std::uint64_t seed_end = 0;    ///< last seed (inclusive)

  [[nodiscard]] std::size_t seed_count() const noexcept {
    return static_cast<std::size_t>(seed_end - seed_begin) + 1;
  }
};

/// Decoded /v1/rank payload.
struct RankRequest {
  std::string workflow;
  workload::ScenarioKind scenario = workload::ScenarioKind::pareto;
  std::uint64_t seed = 0;
};

/// The workflow names the service accepts (no file paths: network input
/// must not reach the filesystem loader).
[[nodiscard]] const std::vector<std::string>& known_workflows();

/// Throws BadRequest if `name` is not a served workflow.
void validate_workflow_name(const std::string& name);

/// Parses a scenario name; throws BadRequest for unknown names.
[[nodiscard]] workload::ScenarioKind parse_scenario(const std::string& name);

/// Decodes an /v1/evaluate body. Throws BadRequest on any schema violation
/// (the caller catches util::JsonParseError separately for syntax errors).
[[nodiscard]] EvaluateRequest decode_evaluate(const util::Json& body);

/// Decodes a /v1/rank body.
[[nodiscard]] RankRequest decode_rank(const util::Json& body);

/// Decodes a /v1/shard body (the distributed fabric's unit of work):
///   {"shard_id":N,"cell_begin":B,"cell_end":E,
///    "grid":{"workflows":[...],"scenarios":[...],"strategies":[...],
///            "seed_begin":S,"seed_end":T}}
/// Schema checks only; grid semantics (known workflows/strategies, cell
/// caps) are validated at the server boundary via validate_shard so the
/// JSON and binary paths refuse identical requests.
[[nodiscard]] exp::ShardSpec decode_shard(const util::Json& body);

/// The canonical JSON encoding of a shard spec — what the coordinator
/// POSTs to /v1/shard and what the pull-mode lease endpoint hands a worker.
[[nodiscard]] std::string shard_request_body(const exp::ShardSpec& shard);

/// Semantic admission checks for a decoded shard (either protocol): the
/// grid must validate, the cell range must lie inside it, and one shard may
/// not carry more than kMaxCellsPerShard cells. Throws BadRequest.
void validate_shard(const exp::ShardSpec& shard);

/// A decoded shard answer (JSON side; the binary side is BinShardResponse).
struct ShardResult {
  std::uint64_t shard_id = 0;
  std::vector<exp::SweepRow> rows;
};

/// Decodes a /v1/shard response body ({"shard_id":N,"rows":[...]}) — the
/// coordinator-side counterpart of shard_body. Every row field is a
/// required integer; anything else throws BadRequest.
[[nodiscard]] ShardResult decode_shard_result(const util::Json& body);

/// {"error": message} — the uniform error body.
[[nodiscard]] std::string error_body(const std::string& message);

/// Caps on what one request may ask for (admission control at the schema
/// level: a single request cannot smuggle in an unbounded sweep).
inline constexpr std::size_t kMaxSeedsPerRequest = 256;

/// Cap on one shard's cell count — a shard is a batch job, but still one
/// HTTP request whose response must fit in memory.
inline constexpr std::uint64_t kMaxCellsPerShard = 65536;

}  // namespace cloudwf::svc
