#include "svc/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace cloudwf::svc {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

std::string_view HttpRequest::header(const std::string& name) const {
  const auto it = headers.find(name);
  return it == headers.end() ? std::string_view{} : std::string_view(it->second);
}

bool HttpRequest::keep_alive() const {
  const std::string connection = to_lower(header("connection"));
  if (connection == "close") return false;
  if (connection == "keep-alive") return true;
  return version == "HTTP/1.1";  // 1.1 defaults to persistent connections
}

std::string_view reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += reason_phrase(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  if (response.close_connection) out += "\r\nConnection: close";
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

std::optional<HttpRequest> parse_request_head(std::string_view head,
                                              std::string* error) {
  const auto set_error = [&](std::string_view message) {
    if (error) *error = std::string(message);
    return std::nullopt;
  };

  HttpRequest req;
  std::size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos)
    return set_error("missing request line terminator");
  {
    const std::string_view line = head.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string_view::npos
                                ? std::string_view::npos
                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos)
      return set_error("malformed request line");
    req.method = std::string(line.substr(0, sp1));
    req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    req.version = std::string(line.substr(sp2 + 1));
    if (req.method.empty() || req.target.empty() ||
        req.version.rfind("HTTP/", 0) != 0)
      return set_error("malformed request line");
  }

  std::size_t pos = line_end + 2;
  while (pos < head.size()) {
    line_end = head.find("\r\n", pos);
    if (line_end == std::string_view::npos)
      return set_error("missing header line terminator");
    const std::string_view line = head.substr(pos, line_end - pos);
    pos = line_end + 2;
    if (line.empty()) break;  // end of headers
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return set_error("malformed header line");
    std::string name = to_lower(trim(line.substr(0, colon)));
    // Duplicates are rejected outright: silently keeping either copy is the
    // classic request-smuggling vector (two Content-Length values, and this
    // parser and an upstream proxy may pick different ones).
    if (req.headers.count(name))
      return set_error("duplicate header '" + name + "'");
    req.headers[std::move(name)] = std::string(trim(line.substr(colon + 1)));
  }
  return req;
}

ParseResult parse_http_request(std::string_view buffer,
                               const HttpLimits& limits) {
  ParseResult result;
  const auto fail = [&](ParseStatus status, std::string_view message) {
    result.status = status;
    result.error = std::string(message);
    return result;
  };

  // Header block first: everything up to the blank line. An over-long
  // prefix with no terminator in sight is rejected before more bytes are
  // read (network input is untrusted).
  const std::size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (buffer.size() > limits.max_header_bytes)
      return fail(ParseStatus::too_large, "header block exceeds limit");
    return result;  // need_more
  }

  std::string error;
  std::optional<HttpRequest> head =
      parse_request_head(buffer.substr(0, head_end + 4), &error);
  if (!head) return fail(ParseStatus::malformed, error);

  // This server only speaks explicit Content-Length. A Transfer-Encoding
  // request must not fall through: ignoring it would leave the chunked body
  // bytes in the buffer to be misparsed as the next pipelined request.
  if (head->headers.count("transfer-encoding"))
    return fail(ParseStatus::not_implemented,
                "Transfer-Encoding is not supported (use Content-Length)");

  // An empty Content-Length value is malformed, not zero — header() can't
  // tell absent from empty, so look up the header map directly.
  std::size_t content_length = 0;
  if (const auto cl_it = head->headers.find("content-length");
      cl_it != head->headers.end()) {
    const std::string& cl = cl_it->second;
    if (cl.empty()) return fail(ParseStatus::malformed, "invalid Content-Length");
    for (const char c : cl) {
      if (c < '0' || c > '9')
        return fail(ParseStatus::malformed, "invalid Content-Length");
      content_length = content_length * 10 + static_cast<std::size_t>(c - '0');
      if (content_length > limits.max_body_bytes)
        return fail(ParseStatus::too_large, "body exceeds limit");
    }
  }

  const std::size_t body_start = head_end + 4;
  if (buffer.size() < body_start + content_length) return result;  // need_more

  result.status = ParseStatus::ok;
  result.request = std::move(*head);
  result.request.body = std::string(buffer.substr(body_start, content_length));
  result.consumed = body_start + content_length;
  return result;
}

ReadResult read_http_request(int fd, std::string& carry,
                             const HttpLimits& limits) {
  ReadResult result;
  std::string buffer = std::move(carry);
  carry.clear();

  for (;;) {
    ParseResult parsed = parse_http_request(buffer, limits);
    if (parsed.status == ParseStatus::ok) {
      result.status = ReadStatus::ok;
      result.request = std::move(parsed.request);
      carry = buffer.substr(parsed.consumed);  // pipelined leftovers
      return result;
    }
    if (parsed.status != ParseStatus::need_more) {
      result.status = parsed.status == ParseStatus::too_large
                          ? ReadStatus::too_large
                      : parsed.status == ParseStatus::not_implemented
                          ? ReadStatus::not_implemented
                          : ReadStatus::malformed;
      result.error = std::move(parsed.error);
      return result;
    }

    // Whether the header block has completed decides how an abrupt end of
    // stream is reported (the error texts are part of the service's 400s).
    const bool in_body = buffer.find("\r\n\r\n") != std::string::npos;
    char chunk[8192];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      result.status = in_body ? ReadStatus::malformed : ReadStatus::closed;
      result.error = std::strerror(errno);
      return result;
    }
    if (n == 0) {
      if (buffer.empty()) {
        result.status = ReadStatus::closed;
      } else {
        result.status = ReadStatus::malformed;
        result.error =
            in_body ? "connection closed mid-body" : "connection closed mid-request";
      }
      return result;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// ---------------------------------------------------------------------------
// HttpClient

HttpClient::~HttpClient() { disconnect(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      fd_(other.fd_),
      carry_(std::move(other.carry_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    disconnect();
    host_ = std::move(other.host_);
    port_ = other.port_;
    fd_ = other.fd_;
    carry_ = std::move(other.carry_);
    other.fd_ = -1;
  }
  return *this;
}

bool HttpClient::connect(const std::string& host, std::uint16_t port) {
  disconnect();
  host_ = host == "localhost" ? "127.0.0.1" : host;
  port_ = port;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  carry_.clear();
  return true;
}

void HttpClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  carry_.clear();
}

std::optional<HttpResponse> HttpClient::roundtrip(const std::string& wire) {
  if (!write_all(fd_, wire)) return std::nullopt;
  return receive();
}

std::optional<HttpResponse> HttpClient::receive() {
  // Read the status line + headers, then the Content-Length body, reusing
  // the request head parser (a response head has the same header grammar).
  std::string buffer = std::move(carry_);
  carry_.clear();
  std::size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  const std::string_view head(buffer.data(), head_end + 2);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line = head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  const std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  HttpResponse response;
  response.status = std::atoi(std::string(status_line.substr(sp1 + 1)).c_str());

  std::size_t content_length = 0;
  bool server_closes = false;
  std::size_t pos = line_end + 2;
  while (pos < head_end + 2) {
    const std::size_t eol = buffer.find("\r\n", pos);
    const std::string_view line(buffer.data() + pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string name = to_lower(trim(line.substr(0, colon)));
    const std::string_view value = trim(line.substr(colon + 1));
    if (name == "content-length")
      content_length = static_cast<std::size_t>(
          std::atoll(std::string(value).c_str()));
    else if (name == "connection" && to_lower(value) == "close")
      server_closes = true;
    else if (name == "content-type")
      response.content_type = std::string(value);
  }

  const std::size_t body_start = head_end + 4;
  while (buffer.size() < body_start + content_length) {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  response.body = buffer.substr(body_start, content_length);
  carry_ = buffer.substr(body_start + content_length);
  response.close_connection = server_closes;
  if (server_closes) disconnect();
  return response;
}

std::string HttpClient::build_wire(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers,
    const std::string& content_type) const {
  std::string wire;
  wire.reserve(body.size() + 128);
  wire += method;
  wire += ' ';
  wire += target;
  wire += " HTTP/1.1\r\nHost: ";
  wire += host_;
  wire += "\r\nContent-Type: ";
  wire += content_type;
  wire += "\r\nContent-Length: ";
  wire += std::to_string(body.size());
  for (const auto& [name, value] : extra_headers) {
    wire += "\r\n";
    wire += name;
    wire += ": ";
    wire += value;
  }
  wire += "\r\n\r\n";
  wire += body;
  return wire;
}

std::optional<HttpResponse> HttpClient::request(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers,
    const std::string& content_type) {
  const std::string wire =
      build_wire(method, target, body, extra_headers, content_type);
  if (!connected() && !connect(host_, port_)) return std::nullopt;
  if (std::optional<HttpResponse> response = roundtrip(wire)) return response;
  // The server may have dropped a kept-alive connection between requests;
  // one reconnect covers that race.
  if (!connect(host_, port_)) return std::nullopt;
  return roundtrip(wire);
}

bool HttpClient::send(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers,
    const std::string& content_type) {
  const std::string wire =
      build_wire(method, target, body, extra_headers, content_type);
  if (!connected() && !connect(host_, port_)) return false;
  if (write_all(fd_, wire)) return true;
  // Same dropped-keep-alive race as request(): safe to replay the write
  // because no response is outstanding on this connection yet.
  if (!connect(host_, port_)) return false;
  return write_all(fd_, wire);
}

}  // namespace cloudwf::svc
