#include "svc/binproto.hpp"

#include <cmath>
#include <limits>

namespace cloudwf::svc {

namespace {

// --- encoding ---------------------------------------------------------
// All integers little-endian, written byte-by-byte (endian-independent).

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v & 0xff));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    put_u8(out, static_cast<std::uint8_t>((v >> shift) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    put_u8(out, static_cast<std::uint8_t>((v >> shift) & 0xff));
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_string(std::string& out, const std::string& s) {
  if (s.size() > std::numeric_limits<std::uint16_t>::max())
    throw std::invalid_argument("binproto: string exceeds u16 length");
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out += s;
}

void put_row(std::string& out, const BinResultRow& row) {
  put_u64(out, row.seed);
  put_string(out, row.strategy);
  put_i64(out, row.makespan_us);
  put_i64(out, row.vm_cost_micros);
  put_i64(out, row.egress_cost_micros);
  put_i64(out, row.total_cost_micros);
  put_i64(out, row.idle_us);
  put_i64(out, row.busy_us);
  put_u32(out, row.vms_used);
  put_i64(out, row.total_btus);
  put_i64(out, row.utilization_ppm);
  put_i64(out, row.gain_pct_ppm);
  put_i64(out, row.loss_pct_ppm);
}

void put_rows(std::string& out, const std::vector<BinResultRow>& rows) {
  if (rows.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("binproto: too many rows");
  put_u32(out, static_cast<std::uint32_t>(rows.size()));
  for (const BinResultRow& row : rows) put_row(out, row);
}

// --- decoding ---------------------------------------------------------

/// Strict cursor over the frame payload. Every primitive read throws
/// BinProtoError at the current offset when the remaining bytes are short.
struct Reader {
  std::string_view bytes;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& message) const {
    throw BinProtoError(pos, message);
  }

  void need(std::size_t n, const char* what) {
    if (bytes.size() - pos < n)
      fail(std::string("truncated ") + what);
  }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(bytes[pos++]);
  }

  std::uint16_t u16(const char* what) {
    need(2, what);
    std::uint16_t v = 0;
    for (int shift = 0; shift < 16; shift += 8)
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(
                  static_cast<std::uint8_t>(bytes[pos++]))
                  << shift);
    return v;
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos++]))
           << shift;
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[pos++]))
           << shift;
    return v;
  }

  std::int64_t i64(const char* what) {
    return static_cast<std::int64_t>(u64(what));
  }

  std::string str(const char* what) {
    const std::uint16_t len = u16(what);
    need(len, what);
    std::string out(bytes.substr(pos, len));
    pos += len;
    return out;
  }

  workload::ScenarioKind scenario() {
    const std::size_t at = pos;
    const std::uint8_t v = u8("scenario");
    if (v > static_cast<std::uint8_t>(workload::ScenarioKind::constrained))
      throw BinProtoError(at, "unknown scenario code " + std::to_string(v));
    return static_cast<workload::ScenarioKind>(v);
  }

  BinResultRow row() {
    BinResultRow r;
    r.seed = u64("row seed");
    r.strategy = str("row strategy");
    r.makespan_us = i64("row makespan");
    r.vm_cost_micros = i64("row vm_cost");
    r.egress_cost_micros = i64("row egress_cost");
    r.total_cost_micros = i64("row total_cost");
    r.idle_us = i64("row idle");
    r.busy_us = i64("row busy");
    r.vms_used = u32("row vms_used");
    r.total_btus = i64("row total_btus");
    r.utilization_ppm = i64("row utilization");
    r.gain_pct_ppm = i64("row gain_pct");
    r.loss_pct_ppm = i64("row loss_pct");
    return r;
  }

  std::vector<BinResultRow> rows() {
    const std::size_t at = pos;
    const std::uint32_t count = u32("row count");
    // Each row is at least 94 bytes on the wire; a count that could not
    // possibly fit the remaining payload is rejected before allocating.
    if (count > (bytes.size() - pos) / 94)
      throw BinProtoError(at, "row count exceeds payload");
    std::vector<BinResultRow> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) out.push_back(row());
    return out;
  }
};

/// value * 1e6 rounded to the nearest integer, saturating at the i64 range
/// (service metrics never get near it; NaN maps to 0).
std::int64_t fixed_ppm(double value) {
  const double scaled = value * 1e6;
  if (std::isnan(scaled)) return 0;
  if (scaled >= 9.2e18) return std::numeric_limits<std::int64_t>::max();
  if (scaled <= -9.2e18) return std::numeric_limits<std::int64_t>::min();
  return std::llround(scaled);
}

}  // namespace

std::string encode_frame(const BinFrame& frame) {
  std::string payload;
  FrameKind kind = FrameKind::error;

  if (const auto* eval_req = std::get_if<EvaluateRequest>(&frame)) {
    kind = FrameKind::evaluate_request;
    put_string(payload, eval_req->workflow);
    put_string(payload, eval_req->strategy);
    put_u8(payload, static_cast<std::uint8_t>(eval_req->scenario));
    put_u64(payload, eval_req->seed_begin);
    put_u64(payload, eval_req->seed_end);
  } else if (const auto* rank_req = std::get_if<RankRequest>(&frame)) {
    kind = FrameKind::rank_request;
    put_string(payload, rank_req->workflow);
    put_u8(payload, static_cast<std::uint8_t>(rank_req->scenario));
    put_u64(payload, rank_req->seed);
  } else if (const auto* eval_resp = std::get_if<BinEvaluateResponse>(&frame)) {
    kind = FrameKind::evaluate_response;
    put_string(payload, eval_resp->workflow);
    put_u8(payload, static_cast<std::uint8_t>(eval_resp->scenario));
    put_string(payload, eval_resp->strategy);
    put_rows(payload, eval_resp->rows);
  } else if (const auto* rank_resp = std::get_if<BinRankResponse>(&frame)) {
    kind = FrameKind::rank_response;
    put_string(payload, rank_resp->workflow);
    put_u8(payload, static_cast<std::uint8_t>(rank_resp->scenario));
    put_u64(payload, rank_resp->seed);
    put_rows(payload, rank_resp->rows);
  } else if (const auto* shard = std::get_if<exp::ShardSpec>(&frame)) {
    kind = FrameKind::shard_request;
    put_u64(payload, shard->shard_id);
    put_u64(payload, shard->cell_begin);
    put_u64(payload, shard->cell_end);
    const auto put_names = [&](const std::vector<std::string>& names) {
      if (names.size() > std::numeric_limits<std::uint16_t>::max())
        throw std::invalid_argument("binproto: too many grid names");
      put_u16(payload, static_cast<std::uint16_t>(names.size()));
      for (const std::string& name : names) put_string(payload, name);
    };
    put_names(shard->grid.workflows);
    if (shard->grid.scenarios.size() >
        std::numeric_limits<std::uint16_t>::max())
      throw std::invalid_argument("binproto: too many grid scenarios");
    put_u16(payload, static_cast<std::uint16_t>(shard->grid.scenarios.size()));
    for (const auto scenario : shard->grid.scenarios)
      put_u8(payload, static_cast<std::uint8_t>(scenario));
    put_names(shard->grid.strategies);
    put_u64(payload, shard->grid.seed_begin);
    put_u64(payload, shard->grid.seed_end);
  } else if (const auto* shard_resp = std::get_if<BinShardResponse>(&frame)) {
    kind = FrameKind::shard_response;
    put_u64(payload, shard_resp->shard_id);
    put_rows(payload, shard_resp->rows);
  } else {
    const auto& err = std::get<BinError>(frame);
    kind = FrameKind::error;
    put_u16(payload, err.status);
    put_string(payload, err.message);
  }

  std::string out;
  out.reserve(payload.size() + 6);
  put_u32(out, static_cast<std::uint32_t>(payload.size() + 2));
  put_u8(out, kBinaryVersion);
  put_u8(out, static_cast<std::uint8_t>(kind));
  out += payload;
  return out;
}

BinFrame decode_frame(std::string_view bytes) {
  Reader r{bytes};
  const std::size_t declared = r.u32("length prefix");
  if (declared != bytes.size() - 4)
    throw BinProtoError(0, "length prefix " + std::to_string(declared) +
                               " does not match payload size " +
                               std::to_string(bytes.size() - 4));
  const std::size_t version_at = r.pos;
  const std::uint8_t version = r.u8("version");
  if (version != kBinaryVersion)
    throw BinProtoError(version_at,
                        "unsupported version " + std::to_string(version));
  const std::size_t kind_at = r.pos;
  const std::uint8_t kind = r.u8("frame kind");

  BinFrame frame;
  switch (static_cast<FrameKind>(kind)) {
    case FrameKind::evaluate_request: {
      EvaluateRequest req;
      req.workflow = r.str("workflow");
      req.strategy = r.str("strategy");
      req.scenario = r.scenario();
      req.seed_begin = r.u64("seed_begin");
      req.seed_end = r.u64("seed_end");
      frame = std::move(req);
      break;
    }
    case FrameKind::rank_request: {
      RankRequest req;
      req.workflow = r.str("workflow");
      req.scenario = r.scenario();
      req.seed = r.u64("seed");
      frame = std::move(req);
      break;
    }
    case FrameKind::evaluate_response: {
      BinEvaluateResponse resp;
      resp.workflow = r.str("workflow");
      resp.scenario = r.scenario();
      resp.strategy = r.str("strategy");
      resp.rows = r.rows();
      frame = std::move(resp);
      break;
    }
    case FrameKind::rank_response: {
      BinRankResponse resp;
      resp.workflow = r.str("workflow");
      resp.scenario = r.scenario();
      resp.seed = r.u64("seed");
      resp.rows = r.rows();
      frame = std::move(resp);
      break;
    }
    case FrameKind::shard_request: {
      exp::ShardSpec shard;
      shard.shard_id = r.u64("shard_id");
      shard.cell_begin = r.u64("cell_begin");
      shard.cell_end = r.u64("cell_end");
      const auto read_names = [&](const char* what) {
        const std::size_t at = r.pos;
        const std::uint16_t count = r.u16(what);
        // Each name is at least 2 bytes (its length prefix); reject counts
        // the remaining payload cannot possibly hold.
        if (count > (bytes.size() - r.pos) / 2)
          throw BinProtoError(at, std::string(what) + " count exceeds payload");
        std::vector<std::string> names;
        names.reserve(count);
        for (std::uint16_t i = 0; i < count; ++i) names.push_back(r.str(what));
        return names;
      };
      shard.grid.workflows = read_names("grid workflow");
      const std::size_t scen_at = r.pos;
      const std::uint16_t scen_count = r.u16("grid scenario count");
      if (scen_count > bytes.size() - r.pos)
        throw BinProtoError(scen_at, "scenario count exceeds payload");
      shard.grid.scenarios.reserve(scen_count);
      for (std::uint16_t i = 0; i < scen_count; ++i)
        shard.grid.scenarios.push_back(r.scenario());
      shard.grid.strategies = read_names("grid strategy");
      shard.grid.seed_begin = r.u64("grid seed_begin");
      shard.grid.seed_end = r.u64("grid seed_end");
      frame = std::move(shard);
      break;
    }
    case FrameKind::shard_response: {
      BinShardResponse resp;
      resp.shard_id = r.u64("shard_id");
      resp.rows = r.rows();
      frame = std::move(resp);
      break;
    }
    case FrameKind::error: {
      BinError err;
      err.status = r.u16("status");
      err.message = r.str("message");
      frame = std::move(err);
      break;
    }
    default:
      throw BinProtoError(kind_at,
                          "unknown frame kind " + std::to_string(kind));
  }
  if (r.pos != bytes.size())
    throw BinProtoError(r.pos, "trailing bytes after frame");
  return frame;
}

BinResultRow bin_row(const exp::RunResult& result, std::uint64_t seed) {
  BinResultRow row;
  row.seed = seed;
  row.strategy = result.strategy;
  row.makespan_us = fixed_ppm(result.metrics.makespan);
  row.vm_cost_micros = result.metrics.vm_cost.micros();
  row.egress_cost_micros = result.metrics.egress_cost.micros();
  row.total_cost_micros = result.metrics.total_cost.micros();
  row.idle_us = fixed_ppm(result.metrics.total_idle);
  row.busy_us = fixed_ppm(result.metrics.total_busy);
  row.vms_used = static_cast<std::uint32_t>(result.metrics.vms_used);
  row.total_btus = result.metrics.total_btus;
  row.utilization_ppm = fixed_ppm(result.metrics.utilization);
  row.gain_pct_ppm = fixed_ppm(result.relative.gain_pct);
  row.loss_pct_ppm = fixed_ppm(result.relative.loss_pct);
  return row;
}

std::string bin_error_frame(int status, const std::string& message) {
  BinError err;
  err.status = static_cast<std::uint16_t>(status);
  err.message = message;
  return encode_frame(err);
}

std::string evaluate_body_bin(const EvaluateRequest& request,
                              const cloud::Platform& platform,
                              EvalCache* cache) {
  BinEvaluateResponse resp;
  resp.workflow = request.workflow;
  resp.scenario = request.scenario;
  resp.strategy = request.strategy;
  for (const ResultRow& row : evaluate_rows(request, platform, cache))
    resp.rows.push_back(bin_row(row.result, row.seed));
  return encode_frame(std::move(resp));
}

std::string rank_body_bin(const RankRequest& request,
                          const cloud::Platform& platform, EvalCache* cache) {
  BinRankResponse resp;
  resp.workflow = request.workflow;
  resp.scenario = request.scenario;
  resp.seed = request.seed;
  for (const ResultRow& row : rank_rows(request, platform, cache))
    resp.rows.push_back(bin_row(row.result, row.seed));
  return encode_frame(std::move(resp));
}

BinResultRow bin_sweep_row(const exp::SweepRow& row) {
  BinResultRow out;
  out.seed = row.seed;
  out.strategy = row.strategy;
  out.makespan_us = row.makespan_us;
  out.vm_cost_micros = row.vm_cost_micros;
  out.egress_cost_micros = row.egress_cost_micros;
  out.total_cost_micros = row.total_cost_micros;
  out.idle_us = row.idle_us;
  out.busy_us = row.busy_us;
  out.vms_used = row.vms_used;
  out.total_btus = row.total_btus;
  out.utilization_ppm = row.utilization_ppm;
  out.gain_pct_ppm = row.gain_pct_ppm;
  out.loss_pct_ppm = row.loss_pct_ppm;
  return out;
}

exp::SweepRow sweep_row_of(const BinResultRow& row) {
  exp::SweepRow out;
  out.seed = row.seed;
  out.strategy = row.strategy;
  out.makespan_us = row.makespan_us;
  out.vm_cost_micros = row.vm_cost_micros;
  out.egress_cost_micros = row.egress_cost_micros;
  out.total_cost_micros = row.total_cost_micros;
  out.idle_us = row.idle_us;
  out.busy_us = row.busy_us;
  out.vms_used = row.vms_used;
  out.total_btus = row.total_btus;
  out.utilization_ppm = row.utilization_ppm;
  out.gain_pct_ppm = row.gain_pct_ppm;
  out.loss_pct_ppm = row.loss_pct_ppm;
  return out;
}

std::string shard_body_bin(const exp::ShardSpec& shard,
                           const cloud::Platform& platform) {
  BinShardResponse resp;
  resp.shard_id = shard.shard_id;
  for (const exp::SweepRow& row : shard_rows(shard, platform))
    resp.rows.push_back(bin_sweep_row(row));
  return encode_frame(std::move(resp));
}

}  // namespace cloudwf::svc
