#include "svc/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "svc/binproto.hpp"
#include "util/json.hpp"

namespace cloudwf::svc {

namespace {

std::size_t resolve_loop_count(std::size_t configured) {
  if (configured != 0) return configured;
  const std::size_t cores = std::thread::hardware_concurrency();
  const std::size_t auto_loops = cores / 4;
  return auto_loops < 1 ? 1 : (auto_loops > 4 ? 4 : auto_loops);
}

/// Semantic validation shared with the JSON path (decode_evaluate /
/// decode_rank run it inline; binary frames arrive pre-parsed and get the
/// same checks here so both protocols refuse identical requests).
void validate_evaluate(const EvaluateRequest& request) {
  validate_workflow_name(request.workflow);
  validate_strategy_label(request.strategy);
  if (request.seed_end < request.seed_begin)
    throw BadRequest("'seeds' range is inverted");
  if (request.seed_end - request.seed_begin + 1 > kMaxSeedsPerRequest)
    throw BadRequest("'seeds' range exceeds " +
                     std::to_string(kMaxSeedsPerRequest) +
                     " seeds per request");
}

void validate_rank(const RankRequest& request) {
  validate_workflow_name(request.workflow);
}

/// Constant-time token comparison: the scan always covers every byte of
/// both strings, so response timing leaks nothing about how long a prefix
/// of the secret a probe matched.
bool token_equal(std::string_view provided, std::string_view expected) {
  std::size_t diff = provided.size() ^ expected.size();
  const std::size_t n = std::max(provided.size(), expected.size());
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char a = i < provided.size()
                                ? static_cast<unsigned char>(provided[i])
                                : 0;
    const unsigned char b = i < expected.size()
                                ? static_cast<unsigned char>(expected[i])
                                : 0;
    diff |= static_cast<unsigned>(a ^ b);
  }
  return diff == 0;
}

/// Cache key: the full request identity. Two requests with equal keys are
/// guaranteed byte-identical answers (deterministic handlers).
std::string compute_cache_key(bool binary, QueuedRequest::Kind kind,
                              const QueuedRequest& queued) {
  std::string key = binary ? "bin|" : "json|";
  if (kind == QueuedRequest::Kind::shard) {
    // A shard's identity is its slice plus the full grid; re-encoding the
    // spec canonically makes equal shards hit regardless of how the client
    // formatted the request body.
    key += "shard|";
    key += shard_request_body(queued.shard);
    return key;
  }
  if (kind == QueuedRequest::Kind::evaluate) {
    const EvaluateRequest& req = queued.evaluate;
    key += "evaluate|" + req.workflow + '|';
    key += workload::name_of(req.scenario);
    key += '|' + req.strategy + '|' + std::to_string(req.seed_begin) + '-' +
           std::to_string(req.seed_end);
  } else {
    const RankRequest& req = queued.rank;
    key += "rank|" + req.workflow + '|';
    key += workload::name_of(req.scenario);
    key += '|' + std::to_string(req.seed);
  }
  return key;
}

}  // namespace

Server::Server(ServerConfig config, cloud::Platform platform)
    : config_(config),
      platform_(std::move(platform)),
      pool_(config.workers == 0 ? 1 : config.workers),
      batcher_(platform_, pool_, Batcher::Config{config.max_queue},
               counters_) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) throw std::logic_error("Server::start called twice");

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0)
    throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad bind address '" + config_.bind_address +
                             "' (expected IPv4 dotted quad)");
  }
  const bool loopback =
      (ntohl(addr.sin_addr.s_addr) >> 24) == 127;  // 127.0.0.0/8
  if (!loopback && config_.auth_token.empty()) {
    ::close(fd);
    throw std::runtime_error(
        "refusing to bind non-loopback address '" + config_.bind_address +
        "' without an auth token (set --auth-token)");
  }
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind(port " + std::to_string(config_.port) +
                             "): " + err);
  }
  if (::listen(fd, 256) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("listen(): " + err);
  }

  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  started_ = true;

  // The server's recorder becomes the process-global one: loop threads and
  // pool workers all fall back to it, so request phases and scheduler
  // counters accumulate for /stats.
  obs::set_global_recorder(&recorder_);

  EventLoop::SharedCounters shared;
  shared.connections_total = &counters_.connections_total;
  shared.connections_active = &counters_.connections_active;
  shared.connections_rejected = &counters_.connections_rejected;
  shared.requests_total = &counters_.requests_total;
  shared.bad_request_400 = &counters_.bad_request_400;

  EventLoop::Config loop_cfg;
  loop_cfg.listen_fd = listen_fd_;
  loop_cfg.max_connections = config_.max_connections;
  loop_cfg.counters = shared;

  const std::size_t loop_count = resolve_loop_count(config_.event_loop_threads);
  loops_.reserve(loop_count);
  for (std::size_t i = 0; i < loop_count; ++i)
    loops_.push_back(std::make_unique<EventLoop>(
        loop_cfg, [this](HttpRequest&& request, HttpResponse& sync,
                         EventLoop::Completion done) {
          return dispatch(std::move(request), sync, std::move(done));
        }));
  for (auto& loop : loops_) loop->start();
}

void Server::stop() {
  const std::lock_guard<std::mutex> lock(stop_mutex_);
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);

  // 1. Every loop stops accepting, closes idle connections, answers what it
  // already read (with Connection: close) and exits once its last in-flight
  // completion is written out.
  for (auto& loop : loops_) loop->request_stop();
  for (auto& loop : loops_) loop->join();

  // 2. Run every admitted batch to completion before the workers exit.
  batcher_.drain();

  // 3. Only now close the listen socket: the loops deregistered it from
  // their epoll sets while draining, and closing it last means a connect()
  // racing the drain is refused instead of landing on a recycled fd.
  ::close(listen_fd_);
  listen_fd_ = -1;

  obs::set_global_recorder(nullptr);
}

bool Server::dispatch(HttpRequest&& request, HttpResponse& sync,
                      EventLoop::Completion done) {
  // Shared-secret gate: everything but the liveness probe requires the
  // token when one is configured. Checked before any routing or parsing so
  // unauthenticated bodies are never decoded.
  if (!config_.auth_token.empty() && request.target != "/health" &&
      !token_equal(request.header("x-auth-token"), config_.auth_token)) {
    counters_.unauthorized_401.fetch_add(1, std::memory_order_relaxed);
    sync.status = 401;
    sync.body = error_body("missing or bad X-Auth-Token");
    return true;
  }
  if (request.target == "/health") {
    counters_.requests_health.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "GET") {
      sync.status = 405;
      sync.body = error_body("use GET for /health");
      return true;
    }
    sync.body = health_body();
    return true;
  }
  if (request.target == "/stats") {
    counters_.requests_stats.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "GET") {
      sync.status = 405;
      sync.body = error_body("use GET for /stats");
      return true;
    }
    sync.body = stats_body();
    return true;
  }
  if (request.target == "/v1/tenants") {
    sync = handle_tenants(request);
    return true;
  }
  if (request.target == "/v1/evaluate")
    return handle_compute(std::move(request), QueuedRequest::Kind::evaluate,
                          sync, std::move(done));
  if (request.target == "/v1/rank")
    return handle_compute(std::move(request), QueuedRequest::Kind::rank, sync,
                          std::move(done));
  if (request.target == "/v1/shard")
    return handle_compute(std::move(request), QueuedRequest::Kind::shard, sync,
                          std::move(done));

  counters_.not_found_404.fetch_add(1, std::memory_order_relaxed);
  sync.status = 404;
  sync.body = error_body(
      "unknown endpoint '" + request.target +
      "' (/health, /stats, /v1/tenants, /v1/evaluate, /v1/rank, /v1/shard)");
  return true;
}

std::optional<tenant::TenantId> Server::resolve_tenant(
    const HttpRequest& request, HttpResponse* error, double* weight) {
  *weight = 1.0;
  const std::string_view header = request.header("x-tenant");
  if (header.empty()) return tenant::kInvalidTenant;  // anonymous is fine
  const std::string name(header);
  const std::lock_guard<std::mutex> lock(tenants_mutex_);
  if (const std::optional<tenant::TenantId> id = tenants_.find(name)) {
    *weight = tenants_.spec(*id).weight;
    return id;
  }
  counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
  error->status = 400;
  error->body = error_body("unknown tenant '" + name +
                           "' — register it via POST /v1/tenants");
  return std::nullopt;
}

bool Server::handle_compute(HttpRequest&& request, QueuedRequest::Kind kind,
                            HttpResponse& sync, EventLoop::Completion done) {
  const bool is_eval = kind == QueuedRequest::Kind::evaluate;
  const bool is_shard = kind == QueuedRequest::Kind::shard;
  (is_shard ? counters_.requests_shard
            : is_eval ? counters_.requests_evaluate : counters_.requests_rank)
      .fetch_add(1, std::memory_order_relaxed);

  const bool binary = request.header("content-type") == kBinaryContentType;
  const auto fail = [&](int status, const std::string& message) {
    sync.status = status;
    if (binary) {
      sync.content_type = kBinaryContentType;
      sync.body = bin_error_frame(status, message);
    } else {
      sync.body = error_body(message);
    }
    return true;
  };

  if (request.method != "POST")
    return fail(405, binary ? "use POST with a binary frame body"
                            : "use POST with a JSON body");

  double weight = 1.0;
  const std::optional<tenant::TenantId> tid =
      resolve_tenant(request, &sync, &weight);
  if (!tid) {
    // resolve_tenant filled a JSON 400; re-encode for binary clients.
    if (binary) return fail(400, "unknown tenant — register it via POST /v1/tenants");
    return true;
  }
  if (*tid != tenant::kInvalidTenant && !is_shard) {
    const std::lock_guard<std::mutex> lock(tenants_mutex_);
    (is_eval ? tenant_usage_[*tid].evaluate : tenant_usage_[*tid].rank) += 1;
  }

  QueuedRequest queued;
  queued.kind = kind;
  queued.binary = binary;
  queued.tenant = *tid;
  queued.tenant_weight = weight;
  try {
    if (binary) {
      BinFrame frame = decode_frame(request.body);
      if (is_shard) {
        auto* decoded = std::get_if<exp::ShardSpec>(&frame);
        if (decoded == nullptr)
          throw BadRequest("expected a shard_request frame");
        queued.shard = std::move(*decoded);
        validate_shard(queued.shard);
      } else if (is_eval) {
        auto* decoded = std::get_if<EvaluateRequest>(&frame);
        if (decoded == nullptr)
          throw BadRequest("expected an evaluate_request frame");
        queued.evaluate = std::move(*decoded);
        validate_evaluate(queued.evaluate);
      } else {
        auto* decoded = std::get_if<RankRequest>(&frame);
        if (decoded == nullptr) throw BadRequest("expected a rank_request frame");
        queued.rank = std::move(*decoded);
        validate_rank(queued.rank);
      }
    } else {
      const util::Json body = util::Json::parse(request.body);
      if (is_shard) {
        queued.shard = decode_shard(body);
        validate_shard(queued.shard);
      } else if (is_eval) {
        queued.evaluate = decode_evaluate(body);
        validate_strategy_label(queued.evaluate.strategy);
      } else {
        queued.rank = decode_rank(body);
      }
    }
  } catch (const BinProtoError& e) {
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    return fail(400, "binary frame error at offset " +
                         std::to_string(e.offset) + ": " + e.what());
  } catch (const util::JsonParseError& e) {
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    return fail(400, e.what());
  } catch (const BadRequest& e) {
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    return fail(400, e.what());
  }

  if (stopping_.load(std::memory_order_acquire)) {
    sync.close_connection = true;
    return fail(503, "server is draining");
  }

  // Deterministic handlers: an identical earlier answer is this answer.
  std::string cache_key;
  if (config_.response_cache_entries > 0) {
    cache_key = compute_cache_key(binary, kind, queued);
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = response_cache_.find(cache_key);
    if (it != response_cache_.end()) {
      counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
      sync.body = it->second.body;
      sync.content_type = it->second.content_type;
      return true;
    }
    counters_.cache_misses.fetch_add(1, std::memory_order_relaxed);
  }

  queued.deadline = std::chrono::steady_clock::now() + config_.request_timeout;
  queued.on_ready = [this, key = std::move(cache_key),
                     done = std::move(done)](HttpResponse&& response) mutable {
    if (!key.empty() && response.status == 200) {
      const std::lock_guard<std::mutex> lock(cache_mutex_);
      if (response_cache_.size() >= config_.response_cache_entries)
        response_cache_.clear();
      response_cache_[key] = {response.body, response.content_type};
    }
    done(std::move(response));
  };

  if (!batcher_.submit(std::move(queued))) {
    counters_.rejected_429.fetch_add(1, std::memory_order_relaxed);
    return fail(429, "request queue full (" + std::to_string(config_.max_queue) +
                         " waiting) — retry with backoff");
  }
  return false;  // the batch worker answers through on_ready -> done
}

HttpResponse Server::handle_tenants(const HttpRequest& request) {
  counters_.requests_tenants.fetch_add(1, std::memory_order_relaxed);
  HttpResponse response;

  const auto tenant_json = [](tenant::TenantId id,
                              const tenant::TenantSpec& spec) {
    util::Json row = util::Json::object();
    row["tenant"] = static_cast<std::int64_t>(id);
    row["name"] = spec.name;
    row["weight"] = spec.weight;
    if (spec.max_running != std::numeric_limits<std::size_t>::max())
      row["max_running"] = static_cast<std::int64_t>(spec.max_running);
    return row;
  };

  if (request.method == "GET") {
    const std::lock_guard<std::mutex> lock(tenants_mutex_);
    util::Json list = util::Json::array();
    for (tenant::TenantId id = 0; id < tenants_.size(); ++id)
      list.push_back(tenant_json(id, tenants_.spec(id)));
    util::Json body = util::Json::object();
    body["tenants"] = std::move(list);
    response.body = body.dump();
    return response;
  }
  if (request.method != "POST") {
    response.status = 405;
    response.body = error_body("use POST to register or GET to list tenants");
    return response;
  }

  tenant::TenantSpec spec;
  try {
    const util::Json body = util::Json::parse(request.body);
    const util::Json* name = body.find("name");
    if (name == nullptr) throw BadRequest("missing field 'name'");
    spec.name = name->as_string();
    if (const util::Json* weight = body.find("weight"))
      spec.weight = weight->as_number();
    if (const util::Json* quota = body.find("max_running")) {
      const double q = quota->as_number();
      if (q < 1.0 || q != static_cast<double>(static_cast<std::size_t>(q)))
        throw BadRequest("'max_running' must be a positive integer");
      spec.max_running = static_cast<std::size_t>(q);
    }
  } catch (const util::JsonParseError& e) {
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = error_body(e.what());
    return response;
  } catch (const std::exception& e) {  // BadRequest / Json type errors
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = error_body(e.what());
    return response;
  }

  const std::lock_guard<std::mutex> lock(tenants_mutex_);
  try {
    const tenant::TenantId id = tenants_.add(std::move(spec));
    tenant_usage_.resize(tenants_.size());
    response.status = 201;
    response.body = tenant_json(id, tenants_.spec(id)).dump();
  } catch (const std::invalid_argument& e) {
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = error_body(e.what());
  }
  return response;
}

std::string Server::health_body() const {
  util::Json body = util::Json::object();
  body["status"] =
      stopping_.load(std::memory_order_acquire) ? "draining" : "ok";
  body["workers"] = pool_.worker_count();
  body["queue_depth"] = batcher_.queue_depth();
  body["max_queue"] = config_.max_queue;
  body["connections_active"] =
      counters_.connections_active.load(std::memory_order_relaxed);
  return body.dump();
}

std::string Server::stats_body() const {
  const auto count = [](const std::atomic<std::uint64_t>& c) {
    return static_cast<std::int64_t>(c.load(std::memory_order_relaxed));
  };

  util::Json service = util::Json::object();
  service["requests_total"] = count(counters_.requests_total);
  service["requests_evaluate"] = count(counters_.requests_evaluate);
  service["requests_rank"] = count(counters_.requests_rank);
  service["requests_shard"] = count(counters_.requests_shard);
  service["unauthorized_401"] = count(counters_.unauthorized_401);
  service["requests_health"] = count(counters_.requests_health);
  service["requests_stats"] = count(counters_.requests_stats);
  service["requests_tenants"] = count(counters_.requests_tenants);
  service["responses_ok"] = count(counters_.responses_ok);
  service["rejected_429"] = count(counters_.rejected_429);
  service["bad_request_400"] = count(counters_.bad_request_400);
  service["not_found_404"] = count(counters_.not_found_404);
  service["timeout_504"] = count(counters_.timeout_504);
  service["errors_500"] = count(counters_.errors_500);
  service["batches_run"] = count(counters_.batches_run);
  service["requests_coalesced"] = count(counters_.requests_coalesced);
  service["queue_depth"] = batcher_.queue_depth();
  service["queue_depth_peak"] = count(counters_.queue_depth_peak);
  service["connections_total"] = count(counters_.connections_total);
  service["connections_active"] = count(counters_.connections_active);
  service["connections_rejected"] = count(counters_.connections_rejected);
  service["workers"] = pool_.worker_count();

  util::Json event_loops = util::Json::array();
  for (const auto& loop : loops_) {
    const EventLoopStats& stats = loop->stats();
    util::Json row = util::Json::object();
    row["connections_open"] = count(stats.connections_open);
    row["connections_accepted"] = count(stats.connections_accepted);
    row["epoll_wakeups"] = count(stats.epoll_wakeups);
    row["read_stalls"] = count(stats.read_stalls);
    row["write_stalls"] = count(stats.write_stalls);
    row["completions"] = count(stats.completions);
    event_loops.push_back(std::move(row));
  }

  util::Json cache = util::Json::object();
  cache["capacity"] = static_cast<std::int64_t>(config_.response_cache_entries);
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    cache["entries"] = static_cast<std::int64_t>(response_cache_.size());
  }
  cache["hits"] = count(counters_.cache_hits);
  cache["misses"] = count(counters_.cache_misses);

  const obs::CounterSnapshot snap = recorder_.counters();
  util::Json obs_counters = util::Json::object();
  obs_counters["events_recorded"] =
      static_cast<std::int64_t>(snap.events_recorded);
  obs_counters["events_dropped"] =
      static_cast<std::int64_t>(snap.events_dropped);
  obs_counters["vms_rented"] = static_cast<std::int64_t>(snap.vms_rented);
  obs_counters["vms_reused"] = static_cast<std::int64_t>(snap.vms_reused);
  obs_counters["btu_extends"] = static_cast<std::int64_t>(snap.btu_extends);
  obs_counters["tasks_placed"] = static_cast<std::int64_t>(snap.tasks_placed);
  obs_counters["upgrades_accepted"] =
      static_cast<std::int64_t>(snap.upgrades_accepted);
  obs_counters["upgrades_rejected"] =
      static_cast<std::int64_t>(snap.upgrades_rejected);

  util::Json phases = util::Json::object();
  for (const auto& [name, stat] : recorder_.phase_stats()) {
    util::Json row = util::Json::object();
    row["count"] = static_cast<std::int64_t>(stat.count);
    row["total_s"] = stat.total;
    row["min_s"] = stat.min;
    row["max_s"] = stat.max;
    phases[name] = std::move(row);
  }

  util::Json tenants = util::Json::object();
  {
    const std::lock_guard<std::mutex> lock(tenants_mutex_);
    for (tenant::TenantId id = 0; id < tenants_.size(); ++id) {
      util::Json row = util::Json::object();
      row["requests_evaluate"] =
          static_cast<std::int64_t>(tenant_usage_[id].evaluate);
      row["requests_rank"] = static_cast<std::int64_t>(tenant_usage_[id].rank);
      tenants[tenants_.spec(id).name] = std::move(row);
    }
  }

  util::Json body = util::Json::object();
  body["service"] = std::move(service);
  body["event_loops"] = std::move(event_loops);
  body["cache"] = std::move(cache);
  body["obs"] = std::move(obs_counters);
  body["phases"] = std::move(phases);
  body["tenants"] = std::move(tenants);
  body["uptime_s"] = recorder_.elapsed();
  return body.dump();
}

}  // namespace cloudwf::svc
