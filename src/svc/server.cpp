#include "svc/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/json.hpp"

namespace cloudwf::svc {

Server::Server(ServerConfig config, cloud::Platform platform)
    : config_(config),
      platform_(std::move(platform)),
      pool_(config.workers == 0 ? 1 : config.workers),
      batcher_(platform_, pool_, Batcher::Config{config.max_queue},
               counters_) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) throw std::logic_error("Server::start called twice");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind(port " + std::to_string(config_.port) +
                             "): " + err);
  }
  if (::listen(fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("listen(): " + err);
  }

  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  started_ = true;

  // The server's recorder becomes the process-global one: connection threads
  // and pool workers all fall back to it, so request phases and scheduler
  // counters accumulate for /stats.
  obs::set_global_recorder(&recorder_);

  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!started_) return;
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }

  // 1. Stop accepting: shutdown() wakes the blocked accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Wake connections parked in recv() so they notice the drain; each
  // finishes (and answers) the request it already read.
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RD);
  }
  {
    std::unique_lock<std::mutex> lock(connections_mutex_);
    connections_idle_.wait(lock, [this] { return connection_fds_.empty(); });
  }

  // 3. Run every admitted batch to completion before the workers exit.
  batcher_.drain();

  obs::set_global_recorder(nullptr);
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (stop()) or fatal: end the loop
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    counters_.connections_total.fetch_add(1, std::memory_order_relaxed);

    bool admitted = false;
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connection_fds_.size() < config_.max_connections) {
        connection_fds_.insert(fd);
        admitted = true;
      }
    }
    if (!admitted) {
      counters_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      HttpResponse overloaded;
      overloaded.status = 503;
      overloaded.body = error_body("connection limit reached");
      overloaded.close_connection = true;
      (void)write_all(fd, serialize_response(overloaded));
      ::close(fd);
      continue;
    }

    counters_.connections_active.fetch_add(1, std::memory_order_relaxed);
    // Detached: stop() waits on connection_fds_ becoming empty, which each
    // thread signals as its last act while the server is still alive.
    std::thread([this, fd] { serve_connection(fd); }).detach();
  }
}

void Server::serve_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  std::string carry;
  for (;;) {
    const ReadResult read = read_http_request(fd, carry);
    if (read.status == ReadStatus::closed) break;
    if (read.status != ReadStatus::ok) {
      HttpResponse bad;
      bad.status = read.status == ReadStatus::too_large        ? 413
                   : read.status == ReadStatus::not_implemented ? 501
                                                                 : 400;
      bad.body = error_body(read.error);
      bad.close_connection = true;
      counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
      (void)write_all(fd, serialize_response(bad));
      break;
    }

    counters_.requests_total.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response = dispatch(read.request);
    const bool draining = stopping_.load(std::memory_order_acquire);
    response.close_connection =
        response.close_connection || draining || !read.request.keep_alive();
    if (!write_all(fd, serialize_response(response))) break;
    if (response.close_connection) break;
  }

  ::close(fd);
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_fds_.erase(fd);
    counters_.connections_active.fetch_sub(1, std::memory_order_relaxed);
    // Notify while still holding the mutex: this thread is detached, and
    // stop()'s waiter may destroy the Server the moment it sees the set
    // empty — the lock guarantees that can't happen mid-notify.
    connections_idle_.notify_all();
  }
}

HttpResponse Server::dispatch(const HttpRequest& request) {
  obs::PhaseScope phase("svc: request " + request.target);
  HttpResponse response;

  if (request.target == "/health") {
    counters_.requests_health.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "GET") {
      response.status = 405;
      response.body = error_body("use GET for /health");
      return response;
    }
    response.body = health_body();
    return response;
  }
  if (request.target == "/stats") {
    counters_.requests_stats.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "GET") {
      response.status = 405;
      response.body = error_body("use GET for /stats");
      return response;
    }
    response.body = stats_body();
    return response;
  }
  if (request.target == "/v1/tenants") return handle_tenants(request);
  if (request.target == "/v1/evaluate")
    return handle_compute(request, QueuedRequest::Kind::evaluate);
  if (request.target == "/v1/rank")
    return handle_compute(request, QueuedRequest::Kind::rank);

  counters_.not_found_404.fetch_add(1, std::memory_order_relaxed);
  response.status = 404;
  response.body = error_body(
      "unknown endpoint '" + request.target +
      "' (/health, /stats, /v1/tenants, /v1/evaluate, /v1/rank)");
  return response;
}

HttpResponse Server::handle_tenants(const HttpRequest& request) {
  counters_.requests_tenants.fetch_add(1, std::memory_order_relaxed);
  HttpResponse response;

  const auto tenant_json = [](tenant::TenantId id,
                              const tenant::TenantSpec& spec) {
    util::Json row = util::Json::object();
    row["tenant"] = static_cast<std::int64_t>(id);
    row["name"] = spec.name;
    row["weight"] = spec.weight;
    if (spec.max_running != std::numeric_limits<std::size_t>::max())
      row["max_running"] = static_cast<std::int64_t>(spec.max_running);
    return row;
  };

  if (request.method == "GET") {
    const std::lock_guard<std::mutex> lock(tenants_mutex_);
    util::Json list = util::Json::array();
    for (tenant::TenantId id = 0; id < tenants_.size(); ++id)
      list.push_back(tenant_json(id, tenants_.spec(id)));
    util::Json body = util::Json::object();
    body["tenants"] = std::move(list);
    response.body = body.dump();
    return response;
  }
  if (request.method != "POST") {
    response.status = 405;
    response.body = error_body("use POST to register or GET to list tenants");
    return response;
  }

  tenant::TenantSpec spec;
  try {
    const util::Json body = util::Json::parse(request.body);
    const util::Json* name = body.find("name");
    if (name == nullptr) throw BadRequest("missing field 'name'");
    spec.name = name->as_string();
    if (const util::Json* weight = body.find("weight"))
      spec.weight = weight->as_number();
    if (const util::Json* quota = body.find("max_running")) {
      const double q = quota->as_number();
      if (q < 1.0 || q != static_cast<double>(static_cast<std::size_t>(q)))
        throw BadRequest("'max_running' must be a positive integer");
      spec.max_running = static_cast<std::size_t>(q);
    }
  } catch (const util::JsonParseError& e) {
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = error_body(e.what());
    return response;
  } catch (const std::exception& e) {  // BadRequest / Json type errors
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = error_body(e.what());
    return response;
  }

  const std::lock_guard<std::mutex> lock(tenants_mutex_);
  try {
    const tenant::TenantId id = tenants_.add(std::move(spec));
    tenant_usage_.resize(tenants_.size());
    response.status = 201;
    response.body = tenant_json(id, tenants_.spec(id)).dump();
  } catch (const std::invalid_argument& e) {
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = error_body(e.what());
  }
  return response;
}

std::optional<tenant::TenantId> Server::resolve_tenant(
    const HttpRequest& request, HttpResponse* error) {
  const std::string_view header = request.header("x-tenant");
  if (header.empty()) return tenant::kInvalidTenant;  // anonymous is fine
  const std::string name(header);
  const std::lock_guard<std::mutex> lock(tenants_mutex_);
  if (const std::optional<tenant::TenantId> id = tenants_.find(name))
    return id;
  counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
  error->status = 400;
  error->body = error_body("unknown tenant '" + name +
                           "' — register it via POST /v1/tenants");
  return std::nullopt;
}

HttpResponse Server::handle_compute(const HttpRequest& request,
                                    QueuedRequest::Kind kind) {
  const bool is_eval = kind == QueuedRequest::Kind::evaluate;
  (is_eval ? counters_.requests_evaluate : counters_.requests_rank)
      .fetch_add(1, std::memory_order_relaxed);

  HttpResponse response;
  if (request.method != "POST") {
    response.status = 405;
    response.body = error_body("use POST with a JSON body");
    return response;
  }

  const std::optional<tenant::TenantId> tid =
      resolve_tenant(request, &response);
  if (!tid) return response;  // unknown X-Tenant: 400 already filled in
  if (*tid != tenant::kInvalidTenant) {
    const std::lock_guard<std::mutex> lock(tenants_mutex_);
    (is_eval ? tenant_usage_[*tid].evaluate : tenant_usage_[*tid].rank) += 1;
  }

  QueuedRequest queued;
  queued.kind = kind;
  try {
    const util::Json body = util::Json::parse(request.body);
    if (is_eval) {
      queued.evaluate = decode_evaluate(body);
      validate_strategy_label(queued.evaluate.strategy);
    } else {
      queued.rank = decode_rank(body);
    }
  } catch (const util::JsonParseError& e) {
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = error_body(e.what());
    return response;
  } catch (const BadRequest& e) {
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = error_body(e.what());
    return response;
  }

  if (stopping_.load(std::memory_order_acquire)) {
    response.status = 503;
    response.body = error_body("server is draining");
    response.close_connection = true;
    return response;
  }

  queued.deadline =
      std::chrono::steady_clock::now() + config_.request_timeout;
  std::optional<std::future<HttpResponse>> future =
      batcher_.submit(std::move(queued));
  if (!future) {
    counters_.rejected_429.fetch_add(1, std::memory_order_relaxed);
    response.status = 429;
    response.body = error_body(
        "request queue full (" + std::to_string(config_.max_queue) +
        " waiting) — retry with backoff");
    return response;
  }
  // The worker always fulfils the promise (result, 4xx/5xx or the 504
  // deadline answer), so this wait is bounded by queue drain time.
  return future->get();
}

std::string Server::health_body() const {
  util::Json body = util::Json::object();
  body["status"] = stopping_.load(std::memory_order_acquire) ? "draining" : "ok";
  body["workers"] = pool_.worker_count();
  body["queue_depth"] = batcher_.queue_depth();
  body["max_queue"] = config_.max_queue;
  body["connections_active"] =
      counters_.connections_active.load(std::memory_order_relaxed);
  return body.dump();
}

std::string Server::stats_body() const {
  const auto count = [](const std::atomic<std::uint64_t>& c) {
    return static_cast<std::int64_t>(c.load(std::memory_order_relaxed));
  };

  util::Json service = util::Json::object();
  service["requests_total"] = count(counters_.requests_total);
  service["requests_evaluate"] = count(counters_.requests_evaluate);
  service["requests_rank"] = count(counters_.requests_rank);
  service["requests_health"] = count(counters_.requests_health);
  service["requests_stats"] = count(counters_.requests_stats);
  service["requests_tenants"] = count(counters_.requests_tenants);
  service["responses_ok"] = count(counters_.responses_ok);
  service["rejected_429"] = count(counters_.rejected_429);
  service["bad_request_400"] = count(counters_.bad_request_400);
  service["not_found_404"] = count(counters_.not_found_404);
  service["timeout_504"] = count(counters_.timeout_504);
  service["errors_500"] = count(counters_.errors_500);
  service["batches_run"] = count(counters_.batches_run);
  service["requests_coalesced"] = count(counters_.requests_coalesced);
  service["queue_depth"] = batcher_.queue_depth();
  service["queue_depth_peak"] = count(counters_.queue_depth_peak);
  service["connections_total"] = count(counters_.connections_total);
  service["connections_active"] = count(counters_.connections_active);
  service["connections_rejected"] = count(counters_.connections_rejected);
  service["workers"] = pool_.worker_count();

  const obs::CounterSnapshot snap = recorder_.counters();
  util::Json obs_counters = util::Json::object();
  obs_counters["events_recorded"] = static_cast<std::int64_t>(snap.events_recorded);
  obs_counters["events_dropped"] = static_cast<std::int64_t>(snap.events_dropped);
  obs_counters["vms_rented"] = static_cast<std::int64_t>(snap.vms_rented);
  obs_counters["vms_reused"] = static_cast<std::int64_t>(snap.vms_reused);
  obs_counters["btu_extends"] = static_cast<std::int64_t>(snap.btu_extends);
  obs_counters["tasks_placed"] = static_cast<std::int64_t>(snap.tasks_placed);
  obs_counters["upgrades_accepted"] =
      static_cast<std::int64_t>(snap.upgrades_accepted);
  obs_counters["upgrades_rejected"] =
      static_cast<std::int64_t>(snap.upgrades_rejected);

  util::Json phases = util::Json::object();
  for (const auto& [name, stat] : recorder_.phase_stats()) {
    util::Json row = util::Json::object();
    row["count"] = static_cast<std::int64_t>(stat.count);
    row["total_s"] = stat.total;
    row["min_s"] = stat.min;
    row["max_s"] = stat.max;
    phases[name] = std::move(row);
  }

  util::Json tenants = util::Json::object();
  {
    const std::lock_guard<std::mutex> lock(tenants_mutex_);
    for (tenant::TenantId id = 0; id < tenants_.size(); ++id) {
      util::Json row = util::Json::object();
      row["requests_evaluate"] =
          static_cast<std::int64_t>(tenant_usage_[id].evaluate);
      row["requests_rank"] = static_cast<std::int64_t>(tenant_usage_[id].rank);
      tenants[tenants_.spec(id).name] = std::move(row);
    }
  }

  util::Json body = util::Json::object();
  body["service"] = std::move(service);
  body["obs"] = std::move(obs_counters);
  body["phases"] = std::move(phases);
  body["tenants"] = std::move(tenants);
  body["uptime_s"] = recorder_.elapsed();
  return body.dump();
}

}  // namespace cloudwf::svc
