#include "svc/event_loop.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "svc/protocol.hpp"

namespace cloudwf::svc {

namespace {

constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kListenTag = 2;
constexpr int kMaxEvents = 64;

void count(std::atomic<std::uint64_t>* counter, std::uint64_t delta = 1) {
  if (counter) counter->fetch_add(delta, std::memory_order_relaxed);
}

void uncount(std::atomic<std::uint64_t>* counter) {
  if (counter) counter->fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace

EventLoop::EventLoop(Config config, Dispatcher dispatcher)
    : cfg_(config), dispatcher_(std::move(dispatcher)) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0)
    throw std::runtime_error("epoll_create1(): " +
                             std::string(std::strerror(errno)));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const std::string err = std::strerror(errno);
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw std::runtime_error("eventfd(): " + err);
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  if (cfg_.listen_fd >= 0) {
    // EPOLLEXCLUSIVE: with several loops sharing the listen socket the
    // kernel wakes one of them per readiness instead of all.
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.u64 = kListenTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfg_.listen_fd, &ev) != 0) {
      const std::string err = std::strerror(errno);
      ::close(wake_fd_);
      ::close(epoll_fd_);
      wake_fd_ = epoll_fd_ = -1;
      throw std::runtime_error("epoll_ctl(listen): " + err);
    }
  }
}

EventLoop::~EventLoop() {
  request_stop();
  join();
  for (auto& [id, conn] : connections_) {
    if (conn.fd >= 0) {
      ::close(conn.fd);
      uncount(cfg_.counters.connections_active);
    }
  }
  connections_.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::start() {
  thread_ = std::thread([this] { run(); });
}

void EventLoop::request_stop() noexcept {
  stopping_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::join() {
  if (thread_.joinable()) thread_.join();
}

void EventLoop::wake() noexcept {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  ssize_t n;
  do {
    n = ::write(wake_fd_, &one, sizeof one);
  } while (n < 0 && errno == EINTR);
  // EAGAIN means the counter is already nonzero — the loop will wake anyway.
}

void EventLoop::drain_wakeups() {
  std::uint64_t value;
  while (::read(wake_fd_, &value, sizeof value) > 0) {
  }
}

void EventLoop::run() {
  epoll_event events[kMaxEvents];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // unrecoverable: the server is shutting down anyway
    }
    stats_.epoll_wakeups.fetch_add(1, std::memory_order_relaxed);

    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag)
        drain_wakeups();
      else if (tag == kListenTag)
        accept_ready();
      else
        handle_event(tag, events[i].events);
    }
    run_completions();

    if (stopping_.load(std::memory_order_acquire)) {
      if (!draining_) begin_drain();
      if (connections_.empty()) return;
    }
  }
}

void EventLoop::run_completions() {
  std::vector<std::pair<std::uint64_t, HttpResponse>> ready;
  {
    const std::lock_guard<std::mutex> lock(completions_mutex_);
    ready.swap(completions_);
  }
  for (auto& [id, response] : ready) {
    stats_.completions.fetch_add(1, std::memory_order_relaxed);
    const auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    Connection& conn = it->second;
    if (conn.fd < 0) {
      // Zombie: the peer vanished while the request was computing. The
      // completion is the signal that the entry can finally be reaped.
      connections_.erase(it);
      continue;
    }
    conn.in_flight = false;
    update_interest(conn);  // resume reading
    if (!queue_response(conn, std::move(response))) continue;
    // The connection may have pipelined the next request behind this one.
    const auto again = connections_.find(id);
    if (again != connections_.end() && again->second.fd >= 0)
      (void)process_input(again->second);
  }
}

void EventLoop::begin_drain() {
  draining_ = true;
  if (cfg_.listen_fd >= 0)
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, cfg_.listen_fd, nullptr);

  std::vector<std::uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    Connection& conn = it->second;
    if (conn.fd < 0 || conn.in_flight) continue;  // finishes via completion
    if (!conn.in.empty()) {
      // A buffered complete request still gets its answer (with
      // Connection: close); a partial one can never complete now.
      (void)process_input(conn);
      const auto again = connections_.find(id);
      if (again == connections_.end()) continue;
      Connection& still = again->second;
      if (still.fd < 0 || still.in_flight) continue;
      if (!still.out.empty()) continue;  // close_after_write already set
      destroy(still);
      continue;
    }
    if (!conn.out.empty()) {
      conn.close_after_write = true;
      continue;
    }
    destroy(conn);
  }
}

void EventLoop::accept_ready() {
  for (;;) {
    const int fd = ::accept4(cfg_.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN: queue drained (or the listener is gone)
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    count(cfg_.counters.connections_total);
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);

    if (cfg_.counters.connections_active &&
        cfg_.counters.connections_active->fetch_add(
            1, std::memory_order_relaxed) >= cfg_.max_connections) {
      uncount(cfg_.counters.connections_active);
      count(cfg_.counters.connections_rejected);
      HttpResponse overloaded;
      overloaded.status = 503;
      overloaded.body = error_body("connection limit reached");
      overloaded.close_connection = true;
      (void)write_all(fd, serialize_response(overloaded));
      ::close(fd);
      continue;
    }

    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    const std::uint64_t id = next_id_++;
    Connection conn;
    conn.id = id;
    conn.fd = fd;
    connections_.emplace(id, std::move(conn));
    stats_.connections_open.fetch_add(1, std::memory_order_relaxed);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      connections_.erase(id);
      stats_.connections_open.fetch_sub(1, std::memory_order_relaxed);
      uncount(cfg_.counters.connections_active);
    }
  }
}

void EventLoop::handle_event(std::uint64_t id, std::uint32_t events) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (conn.fd < 0) return;  // zombie

  if (conn.in_flight && (events & (EPOLLHUP | EPOLLERR)) != 0) {
    destroy(conn);  // zombifies: the completion reaps the entry
    return;
  }
  if ((events & EPOLLOUT) != 0 || conn.want_write) {
    if (!flush_output(conn)) return;
  }
  if (!conn.in_flight &&
      (events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0)
    (void)read_input(conn);
}

bool EventLoop::read_input(Connection& conn) {
  for (;;) {
    char chunk[16384];
    const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      conn.in.append(chunk, static_cast<std::size_t>(n));
      if (n < static_cast<ssize_t>(sizeof chunk)) break;  // likely drained
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    destroy(conn);
    return false;
  }
  return process_input(conn);
}

bool EventLoop::process_input(Connection& conn) {
  const std::uint64_t id = conn.id;
  while (!conn.in_flight && !conn.close_after_write) {
    if (conn.in.empty()) {
      if (conn.peer_eof) {
        destroy(conn);
        return false;
      }
      return true;
    }

    ParseResult parsed = parse_http_request(conn.in, cfg_.limits);
    if (parsed.status == ParseStatus::need_more) {
      if (conn.peer_eof) {
        // The old blocking path reported this via read_http_request; keep
        // the same 400 + error text for an abruptly truncated request.
        count(cfg_.counters.bad_request_400);
        HttpResponse bad;
        bad.status = 400;
        bad.body = error_body(conn.in.find("\r\n\r\n") == std::string::npos
                                  ? "connection closed mid-request"
                                  : "connection closed mid-body");
        bad.close_connection = true;
        return queue_response(conn, std::move(bad));
      }
      stats_.read_stalls.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (parsed.status != ParseStatus::ok) {
      count(cfg_.counters.bad_request_400);
      HttpResponse bad;
      bad.status = parsed.status == ParseStatus::too_large         ? 413
                   : parsed.status == ParseStatus::not_implemented ? 501
                                                                   : 400;
      bad.body = error_body(parsed.error);
      bad.close_connection = true;
      return queue_response(conn, std::move(bad));
    }

    conn.in.erase(0, parsed.consumed);
    count(cfg_.counters.requests_total);
    conn.keep_alive = parsed.request.keep_alive();

    HttpResponse sync;
    const bool answered =
        dispatcher_(std::move(parsed.request), sync, make_completion(id));
    if (!answered) {
      // Deferred: single request in flight per connection — stop reading
      // until the completion lands (backpressure to the peer's TCP window).
      conn.in_flight = true;
      update_interest(conn);
      return true;
    }
    if (!queue_response(conn, std::move(sync))) return false;
    // queue_response may have destroyed the map slot via rehash? No —
    // unordered_map references are stable; but it may have *erased* conn.
    if (connections_.find(id) == connections_.end()) return false;
  }
  return true;
}

bool EventLoop::queue_response(Connection& conn, HttpResponse&& response) {
  const bool close = response.close_connection || !conn.keep_alive ||
                     stopping_.load(std::memory_order_relaxed);
  response.close_connection = close;
  conn.close_after_write |= close;
  conn.out += serialize_response(response);
  return flush_output(conn);
}

bool EventLoop::flush_output(Connection& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n >= 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn.want_write) {
        conn.want_write = true;
        update_interest(conn);
        stats_.write_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      return true;  // EPOLLOUT will resume the flush
    }
    destroy(conn);
    return false;
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.want_write) {
    conn.want_write = false;
    update_interest(conn);
  }
  if (conn.close_after_write && !conn.in_flight) {
    destroy(conn);
    return false;
  }
  return true;
}

void EventLoop::update_interest(Connection& conn) {
  epoll_event ev{};
  ev.events = (conn.in_flight ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
              (conn.want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void EventLoop::destroy(Connection& conn) {
  if (conn.fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
    stats_.connections_open.fetch_sub(1, std::memory_order_relaxed);
    uncount(cfg_.counters.connections_active);
  }
  // An in-flight request still owns a completion aimed at this id; keep the
  // entry as a zombie so run_completions can reap it exactly once.
  if (!conn.in_flight) connections_.erase(conn.id);
}

EventLoop::Completion EventLoop::make_completion(std::uint64_t id) {
  return [this, id](HttpResponse&& response) {
    {
      const std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.emplace_back(id, std::move(response));
    }
    wake();
  };
}

}  // namespace cloudwf::svc
