#include "svc/batcher.hpp"

#include "obs/trace.hpp"

namespace cloudwf::svc {

namespace {

std::string batch_key(const QueuedRequest& request) {
  const bool is_eval = request.kind == QueuedRequest::Kind::evaluate;
  std::string key = is_eval ? request.evaluate.workflow : request.rank.workflow;
  key += '|';
  key += workload::name_of(is_eval ? request.evaluate.scenario
                                   : request.rank.scenario);
  return key;
}

}  // namespace

std::optional<std::future<HttpResponse>> Batcher::submit(
    QueuedRequest request) {
  const std::string key = batch_key(request);
  std::future<HttpResponse> future = request.promise.get_future();
  bool first_for_key = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queued_ >= cfg_.max_queue) return std::nullopt;  // backpressure: 429
    std::vector<QueuedRequest>& bucket = pending_[key];
    first_for_key = bucket.empty();
    if (!first_for_key)
      counters_.requests_coalesced.fetch_add(1, std::memory_order_relaxed);
    bucket.push_back(std::move(request));
    ++queued_;
    std::uint64_t peak =
        counters_.queue_depth_peak.load(std::memory_order_relaxed);
    while (peak < queued_ && !counters_.queue_depth_peak.compare_exchange_weak(
                                 peak, queued_, std::memory_order_relaxed)) {
    }
  }
  // One pool job per batch: later same-key arrivals ride along instead of
  // submitting their own jobs. The future is intentionally dropped —
  // run_batch fulfils every request's promise itself and never throws.
  if (first_for_key)
    static_cast<void>(pool_.submit([this, key] { run_batch(key); }));
  return future;
}

std::size_t Batcher::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

void Batcher::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queued_ == 0 && running_batches_ == 0; });
}

HttpResponse Batcher::answer(QueuedRequest& request, EvalCache& cache) {
  HttpResponse response;
  if (std::chrono::steady_clock::now() > request.deadline) {
    counters_.timeout_504.fetch_add(1, std::memory_order_relaxed);
    response.status = 504;
    response.body = error_body("deadline exceeded while queued");
    return response;
  }
  try {
    response.body = request.kind == QueuedRequest::Kind::evaluate
                        ? evaluate_body(request.evaluate, platform_, &cache)
                        : rank_body(request.rank, platform_, &cache);
    counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
  } catch (const BadRequest& e) {
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = error_body(e.what());
  } catch (const std::exception& e) {
    counters_.errors_500.fetch_add(1, std::memory_order_relaxed);
    response.status = 500;
    response.body = error_body(std::string("evaluation failed: ") + e.what());
  }
  return response;
}

void Batcher::run_batch(const std::string& key) {
  std::vector<QueuedRequest> batch;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = pending_.find(key);
    if (it != pending_.end()) {
      batch = std::move(it->second);
      pending_.erase(it);
      queued_ -= batch.size();
    }
    ++running_batches_;
  }
  counters_.batches_run.fetch_add(1, std::memory_order_relaxed);

  {
    obs::PhaseScope phase("svc: batch " + key);
    EvalCache cache;  // shared across the whole batch: coalesced requests
                      // with overlapping cells evaluate each cell once
    for (QueuedRequest& request : batch)
      request.promise.set_value(answer(request, cache));
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --running_batches_;
    // Notify while holding the mutex: drain()'s waiter may destroy this
    // Batcher the moment it observes idle, and the lock guarantees that
    // cannot happen while this worker is still inside notify_all().
    idle_.notify_all();
  }
}

}  // namespace cloudwf::svc
