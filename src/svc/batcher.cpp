#include "svc/batcher.hpp"

#include "obs/trace.hpp"
#include "svc/binproto.hpp"

namespace cloudwf::svc {

namespace {

std::string batch_key(const QueuedRequest& request) {
  // Shards never coalesce: each is a distinct batch job keyed by its own
  // slice (two shards share no cells, so there is nothing to share).
  if (request.kind == QueuedRequest::Kind::shard)
    return "shard|" + std::to_string(request.shard.shard_id) + '|' +
           std::to_string(request.shard.cell_begin) + '-' +
           std::to_string(request.shard.cell_end);
  const bool is_eval = request.kind == QueuedRequest::Kind::evaluate;
  std::string key = is_eval ? request.evaluate.workflow : request.rank.workflow;
  key += '|';
  key += workload::name_of(is_eval ? request.evaluate.scenario
                                   : request.rank.scenario);
  return key;
}

}  // namespace

std::optional<std::future<HttpResponse>> Batcher::submit(
    QueuedRequest request) {
  const std::string key = batch_key(request);
  std::future<HttpResponse> future = request.promise.get_future();
  bool first_for_key = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queued_ >= cfg_.max_queue) return std::nullopt;  // backpressure: 429
    std::vector<QueuedRequest>& bucket = pending_[key];
    first_for_key = bucket.empty();
    if (first_for_key) {
      // The opening tenant enrolls the batch in its DRR deque. Later
      // same-key arrivals (any tenant) coalesce into the bucket and ride
      // on this entry.
      TenantQueue& tq = tenant_queues_[request.tenant];
      tq.weight = request.tenant_weight;
      if (tq.keys.empty()) ring_.push_back(request.tenant);
      tq.keys.push_back(key);
    } else {
      counters_.requests_coalesced.fetch_add(1, std::memory_order_relaxed);
    }
    bucket.push_back(std::move(request));
    ++queued_;
    std::uint64_t peak =
        counters_.queue_depth_peak.load(std::memory_order_relaxed);
    while (peak < queued_ && !counters_.queue_depth_peak.compare_exchange_weak(
                                 peak, queued_, std::memory_order_relaxed)) {
    }
  }
  // One pool job per batch: later same-key arrivals ride along instead of
  // submitting their own jobs. Which waiting batch the job actually takes
  // is decided by the DRR pick when a worker runs it, so #jobs == #batches
  // but job order is tenant-weighted, not FCFS. The future is intentionally
  // dropped — run_batch fulfils every request's promise itself and never
  // throws.
  if (first_for_key)
    static_cast<void>(pool_.submit([this] { run_batch(); }));
  return future;
}

std::size_t Batcher::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

void Batcher::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queued_ == 0 && running_batches_ == 0; });
}

std::string Batcher::pick_key() {
  // Each pass grants the front tenant `weight` credit; a whole credit buys
  // its oldest waiting batch. Tenants leave the ring when their deque
  // empties (deficit reset: idle tenants must not bank credit). Bounded
  // spins guard against sub-1.0 weights starving the loop; the fallback
  // (oldest key in map order) keeps liveness no matter what.
  for (std::size_t spin = 0; spin < 64 + ring_.size() * 64; ++spin) {
    if (ring_.empty()) break;
    const tenant::TenantId id = ring_.front();
    ring_.pop_front();
    TenantQueue& tq = tenant_queues_[id];
    // Keys whose bucket was already taken (possible only after a fallback
    // pick below) are dead — discard them instead of serving air.
    while (!tq.keys.empty() && pending_.find(tq.keys.front()) == pending_.end())
      tq.keys.pop_front();
    if (tq.keys.empty()) {
      tq.deficit = 0.0;
      continue;  // drop from the ring
    }
    tq.deficit += tq.weight;
    if (tq.deficit < 1.0) {
      ring_.push_back(id);
      continue;
    }
    tq.deficit -= 1.0;
    std::string key = std::move(tq.keys.front());
    tq.keys.pop_front();
    if (tq.keys.empty())
      tq.deficit = 0.0;
    else
      ring_.push_back(id);
    return key;
  }
  return pending_.empty() ? std::string() : pending_.begin()->first;
}

HttpResponse Batcher::answer(QueuedRequest& request, EvalCache& cache) {
  HttpResponse response;
  const bool binary = request.binary;
  if (binary) response.content_type = kBinaryContentType;
  const auto error_payload = [binary](int status, const std::string& message) {
    return binary ? bin_error_frame(status, message) : error_body(message);
  };

  if (std::chrono::steady_clock::now() > request.deadline) {
    counters_.timeout_504.fetch_add(1, std::memory_order_relaxed);
    response.status = 504;
    response.body = error_payload(504, "deadline exceeded while queued");
    return response;
  }
  try {
    if (request.kind == QueuedRequest::Kind::shard) {
      response.body = binary ? shard_body_bin(request.shard, platform_)
                             : shard_body(request.shard, platform_);
    } else {
      const bool is_eval = request.kind == QueuedRequest::Kind::evaluate;
      if (binary)
        response.body =
            is_eval ? evaluate_body_bin(request.evaluate, platform_, &cache)
                    : rank_body_bin(request.rank, platform_, &cache);
      else
        response.body =
            is_eval ? evaluate_body(request.evaluate, platform_, &cache)
                    : rank_body(request.rank, platform_, &cache);
    }
    counters_.responses_ok.fetch_add(1, std::memory_order_relaxed);
  } catch (const BadRequest& e) {
    counters_.bad_request_400.fetch_add(1, std::memory_order_relaxed);
    response.status = 400;
    response.body = error_payload(400, e.what());
  } catch (const std::exception& e) {
    counters_.errors_500.fetch_add(1, std::memory_order_relaxed);
    response.status = 500;
    response.body =
        error_payload(500, std::string("evaluation failed: ") + e.what());
  }
  return response;
}

void Batcher::run_batch() {
  std::string key;
  std::vector<QueuedRequest> batch;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    key = pick_key();
    auto it = pending_.find(key);
    if (it == pending_.end() && !pending_.empty()) it = pending_.begin();
    if (it != pending_.end()) {
      key = it->first;
      batch = std::move(it->second);
      pending_.erase(it);
      queued_ -= batch.size();
    }
    ++running_batches_;
  }
  counters_.batches_run.fetch_add(1, std::memory_order_relaxed);

  {
    obs::PhaseScope phase("svc: batch " + key);
    EvalCache cache;  // shared across the whole batch: coalesced requests
                      // with overlapping cells evaluate each cell once
    for (QueuedRequest& request : batch) {
      HttpResponse response = answer(request, cache);
      if (request.on_ready) {
        HttpResponse copy = response;
        request.promise.set_value(std::move(response));
        request.on_ready(std::move(copy));
      } else {
        request.promise.set_value(std::move(response));
      }
    }
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --running_batches_;
    // Notify while holding the mutex: drain()'s waiter may destroy this
    // Batcher the moment it observes idle, and the lock guarantees that
    // cannot happen while this worker is still inside notify_all().
    idle_.notify_all();
  }
}

}  // namespace cloudwf::svc
