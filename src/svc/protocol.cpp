#include "svc/protocol.hpp"

#include <cmath>

namespace cloudwf::svc {

namespace {

/// Fetches a required string field or throws BadRequest naming it.
const std::string& required_string(const util::Json& body, const char* key) {
  const util::Json* field = body.find(key);
  if (!field) throw BadRequest(std::string("missing required field '") + key + "'");
  if (!field->is_string())
    throw BadRequest(std::string("field '") + key + "' must be a string");
  return field->as_string();
}

std::uint64_t as_seed(const util::Json& value, const char* what) {
  if (!value.is_number())
    throw BadRequest(std::string(what) + " must be a non-negative integer");
  const double d = value.as_number();
  if (d < 0 || d != std::floor(d) || d > 9.0e15)
    throw BadRequest(std::string(what) + " must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

void decode_seed_fields(const util::Json& body, std::uint64_t& begin,
                        std::uint64_t& end) {
  const util::Json* seed = body.find("seed");
  const util::Json* seeds = body.find("seeds");
  if (seed && seeds)
    throw BadRequest("give either 'seed' or 'seeds', not both");
  if (seed) {
    begin = end = as_seed(*seed, "'seed'");
    return;
  }
  if (!seeds) throw BadRequest("missing required field 'seed' (or 'seeds')");
  if (!seeds->is_array() || seeds->as_array().size() != 2)
    throw BadRequest("'seeds' must be a two-element [first, last] array");
  begin = as_seed(seeds->as_array()[0], "'seeds[0]'");
  end = as_seed(seeds->as_array()[1], "'seeds[1]'");
  if (end < begin) throw BadRequest("'seeds' range is inverted");
  if (end - begin + 1 > kMaxSeedsPerRequest)
    throw BadRequest("'seeds' range exceeds " +
                     std::to_string(kMaxSeedsPerRequest) +
                     " seeds per request");
}

}  // namespace

const std::vector<std::string>& known_workflows() {
  static const std::vector<std::string> names = {
      "montage", "cstem",      "mapreduce", "sequential",
      "epigenomics", "cybershake", "ligo",      "sipht"};
  return names;
}

void validate_workflow_name(const std::string& name) {
  for (const std::string& known : known_workflows())
    if (known == name) return;
  throw BadRequest("unknown workflow '" + name +
                   "' (montage|cstem|mapreduce|sequential|epigenomics|"
                   "cybershake|ligo|sipht)");
}

workload::ScenarioKind parse_scenario(const std::string& name) {
  for (workload::ScenarioKind kind : workload::kAllScenarioKinds) {
    if (name == workload::name_of(kind)) return kind;
  }
  throw BadRequest("unknown scenario '" + name +
                   "' (pareto|best-case|worst-case|data-intensive|"
                   "cold-start|variable-price|deadline-budget)");
}

EvaluateRequest decode_evaluate(const util::Json& body) {
  if (!body.is_object()) throw BadRequest("request body must be a JSON object");
  EvaluateRequest req;
  req.workflow = required_string(body, "workflow");
  validate_workflow_name(req.workflow);
  req.strategy = required_string(body, "strategy");
  if (const util::Json* scenario = body.find("scenario")) {
    if (!scenario->is_string())
      throw BadRequest("field 'scenario' must be a string");
    req.scenario = parse_scenario(scenario->as_string());
  }
  decode_seed_fields(body, req.seed_begin, req.seed_end);
  return req;
}

RankRequest decode_rank(const util::Json& body) {
  if (!body.is_object()) throw BadRequest("request body must be a JSON object");
  RankRequest req;
  req.workflow = required_string(body, "workflow");
  validate_workflow_name(req.workflow);
  if (const util::Json* scenario = body.find("scenario")) {
    if (!scenario->is_string())
      throw BadRequest("field 'scenario' must be a string");
    req.scenario = parse_scenario(scenario->as_string());
  }
  if (const util::Json* seed = body.find("seed"))
    req.seed = as_seed(*seed, "'seed'");
  return req;
}

exp::ShardSpec decode_shard(const util::Json& body) {
  if (!body.is_object()) throw BadRequest("request body must be a JSON object");
  exp::ShardSpec shard;

  const auto required_u64 = [](const util::Json& obj, const char* key) {
    const util::Json* field = obj.find(key);
    if (!field)
      throw BadRequest(std::string("missing required field '") + key + "'");
    return as_seed(*field, (std::string("'") + key + "'").c_str());
  };

  shard.shard_id = required_u64(body, "shard_id");
  shard.cell_begin = required_u64(body, "cell_begin");
  shard.cell_end = required_u64(body, "cell_end");

  const util::Json* grid = body.find("grid");
  if (!grid) throw BadRequest("missing required field 'grid'");
  if (!grid->is_object()) throw BadRequest("field 'grid' must be an object");

  const auto string_array = [&](const char* key) {
    const util::Json* field = grid->find(key);
    if (!field)
      throw BadRequest(std::string("missing required grid field '") + key +
                       "'");
    if (!field->is_array())
      throw BadRequest(std::string("grid field '") + key +
                       "' must be an array");
    std::vector<std::string> out;
    out.reserve(field->as_array().size());
    for (const util::Json& item : field->as_array()) {
      if (!item.is_string())
        throw BadRequest(std::string("grid field '") + key +
                         "' must hold strings");
      out.push_back(item.as_string());
    }
    return out;
  };

  shard.grid.workflows = string_array("workflows");
  for (const std::string& name : string_array("scenarios"))
    shard.grid.scenarios.push_back(parse_scenario(name));
  shard.grid.strategies = string_array("strategies");
  shard.grid.seed_begin = required_u64(*grid, "seed_begin");
  shard.grid.seed_end = required_u64(*grid, "seed_end");
  return shard;
}

std::string shard_request_body(const exp::ShardSpec& shard) {
  util::Json grid = util::Json::object();
  util::Json workflows = util::Json::array();
  for (const std::string& name : shard.grid.workflows) workflows.push_back(name);
  grid["workflows"] = std::move(workflows);
  util::Json scenarios = util::Json::array();
  for (const auto kind : shard.grid.scenarios)
    scenarios.push_back(std::string(workload::name_of(kind)));
  grid["scenarios"] = std::move(scenarios);
  util::Json strategies = util::Json::array();
  for (const std::string& label : shard.grid.strategies)
    strategies.push_back(label);
  grid["strategies"] = std::move(strategies);
  grid["seed_begin"] = static_cast<std::int64_t>(shard.grid.seed_begin);
  grid["seed_end"] = static_cast<std::int64_t>(shard.grid.seed_end);

  util::Json body = util::Json::object();
  body["shard_id"] = static_cast<std::int64_t>(shard.shard_id);
  body["cell_begin"] = static_cast<std::int64_t>(shard.cell_begin);
  body["cell_end"] = static_cast<std::int64_t>(shard.cell_end);
  body["grid"] = std::move(grid);
  return body.dump();
}

ShardResult decode_shard_result(const util::Json& body) {
  if (!body.is_object()) throw BadRequest("shard result must be a JSON object");
  ShardResult result;
  const util::Json* id = body.find("shard_id");
  if (!id) throw BadRequest("missing required field 'shard_id'");
  result.shard_id = as_seed(*id, "'shard_id'");

  const util::Json* rows = body.find("rows");
  if (!rows) throw BadRequest("missing required field 'rows'");
  if (!rows->is_array()) throw BadRequest("field 'rows' must be an array");

  // Integer field (possibly negative — gain/loss ppm); exact in a JSON
  // double up to 2^53, far above any metric the simulator emits.
  const auto as_i64 = [](const util::Json& row, const char* key) {
    const util::Json* field = row.find(key);
    if (!field)
      throw BadRequest(std::string("row missing required field '") + key + "'");
    if (!field->is_number())
      throw BadRequest(std::string("row field '") + key +
                       "' must be an integer");
    const double d = field->as_number();
    if (d != std::floor(d) || d > 9.0e15 || d < -9.0e15)
      throw BadRequest(std::string("row field '") + key +
                       "' must be an integer");
    return static_cast<std::int64_t>(d);
  };

  result.rows.reserve(rows->as_array().size());
  for (const util::Json& item : rows->as_array()) {
    if (!item.is_object()) throw BadRequest("shard rows must be objects");
    exp::SweepRow row;
    const util::Json* seed = item.find("seed");
    if (!seed) throw BadRequest("row missing required field 'seed'");
    row.seed = as_seed(*seed, "row 'seed'");
    const util::Json* strategy = item.find("strategy");
    if (!strategy || !strategy->is_string())
      throw BadRequest("row missing required string field 'strategy'");
    row.strategy = strategy->as_string();
    row.makespan_us = as_i64(item, "makespan_us");
    row.vm_cost_micros = as_i64(item, "vm_cost_micros");
    row.egress_cost_micros = as_i64(item, "egress_cost_micros");
    row.total_cost_micros = as_i64(item, "total_cost_micros");
    row.idle_us = as_i64(item, "idle_us");
    row.busy_us = as_i64(item, "busy_us");
    row.vms_used = static_cast<std::uint32_t>(as_i64(item, "vms_used"));
    row.total_btus = as_i64(item, "total_btus");
    row.utilization_ppm = as_i64(item, "utilization_ppm");
    row.gain_pct_ppm = as_i64(item, "gain_pct_ppm");
    row.loss_pct_ppm = as_i64(item, "loss_pct_ppm");
    result.rows.push_back(std::move(row));
  }
  return result;
}

void validate_shard(const exp::ShardSpec& shard) {
  try {
    exp::validate_grid(shard.grid);
  } catch (const std::invalid_argument& e) {
    throw BadRequest(e.what());
  }
  if (shard.cell_end < shard.cell_begin)
    throw BadRequest("shard cell range is inverted");
  if (shard.cell_end > shard.grid.cell_count())
    throw BadRequest("shard cell range exceeds the grid (" +
                     std::to_string(shard.grid.cell_count()) + " cells)");
  if (shard.cell_count() > kMaxCellsPerShard)
    throw BadRequest("shard exceeds " + std::to_string(kMaxCellsPerShard) +
                     " cells per request");
}

std::string error_body(const std::string& message) {
  util::Json body = util::Json::object();
  body["error"] = message;
  return body.dump();
}

}  // namespace cloudwf::svc
