#include "svc/protocol.hpp"

#include <cmath>

namespace cloudwf::svc {

namespace {

/// Fetches a required string field or throws BadRequest naming it.
const std::string& required_string(const util::Json& body, const char* key) {
  const util::Json* field = body.find(key);
  if (!field) throw BadRequest(std::string("missing required field '") + key + "'");
  if (!field->is_string())
    throw BadRequest(std::string("field '") + key + "' must be a string");
  return field->as_string();
}

std::uint64_t as_seed(const util::Json& value, const char* what) {
  if (!value.is_number())
    throw BadRequest(std::string(what) + " must be a non-negative integer");
  const double d = value.as_number();
  if (d < 0 || d != std::floor(d) || d > 9.0e15)
    throw BadRequest(std::string(what) + " must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

void decode_seed_fields(const util::Json& body, std::uint64_t& begin,
                        std::uint64_t& end) {
  const util::Json* seed = body.find("seed");
  const util::Json* seeds = body.find("seeds");
  if (seed && seeds)
    throw BadRequest("give either 'seed' or 'seeds', not both");
  if (seed) {
    begin = end = as_seed(*seed, "'seed'");
    return;
  }
  if (!seeds) throw BadRequest("missing required field 'seed' (or 'seeds')");
  if (!seeds->is_array() || seeds->as_array().size() != 2)
    throw BadRequest("'seeds' must be a two-element [first, last] array");
  begin = as_seed(seeds->as_array()[0], "'seeds[0]'");
  end = as_seed(seeds->as_array()[1], "'seeds[1]'");
  if (end < begin) throw BadRequest("'seeds' range is inverted");
  if (end - begin + 1 > kMaxSeedsPerRequest)
    throw BadRequest("'seeds' range exceeds " +
                     std::to_string(kMaxSeedsPerRequest) +
                     " seeds per request");
}

}  // namespace

const std::vector<std::string>& known_workflows() {
  static const std::vector<std::string> names = {
      "montage", "cstem",      "mapreduce", "sequential",
      "epigenomics", "cybershake", "ligo",      "sipht"};
  return names;
}

void validate_workflow_name(const std::string& name) {
  for (const std::string& known : known_workflows())
    if (known == name) return;
  throw BadRequest("unknown workflow '" + name +
                   "' (montage|cstem|mapreduce|sequential|epigenomics|"
                   "cybershake|ligo|sipht)");
}

workload::ScenarioKind parse_scenario(const std::string& name) {
  for (workload::ScenarioKind kind :
       {workload::ScenarioKind::pareto, workload::ScenarioKind::best_case,
        workload::ScenarioKind::worst_case,
        workload::ScenarioKind::data_intensive}) {
    if (name == workload::name_of(kind)) return kind;
  }
  throw BadRequest("unknown scenario '" + name +
                   "' (pareto|best-case|worst-case|data-intensive)");
}

EvaluateRequest decode_evaluate(const util::Json& body) {
  if (!body.is_object()) throw BadRequest("request body must be a JSON object");
  EvaluateRequest req;
  req.workflow = required_string(body, "workflow");
  validate_workflow_name(req.workflow);
  req.strategy = required_string(body, "strategy");
  if (const util::Json* scenario = body.find("scenario")) {
    if (!scenario->is_string())
      throw BadRequest("field 'scenario' must be a string");
    req.scenario = parse_scenario(scenario->as_string());
  }
  decode_seed_fields(body, req.seed_begin, req.seed_end);
  return req;
}

RankRequest decode_rank(const util::Json& body) {
  if (!body.is_object()) throw BadRequest("request body must be a JSON object");
  RankRequest req;
  req.workflow = required_string(body, "workflow");
  validate_workflow_name(req.workflow);
  if (const util::Json* scenario = body.find("scenario")) {
    if (!scenario->is_string())
      throw BadRequest("field 'scenario' must be a string");
    req.scenario = parse_scenario(scenario->as_string());
  }
  if (const util::Json* seed = body.find("seed"))
    req.seed = as_seed(*seed, "'seed'");
  return req;
}

std::string error_body(const std::string& message) {
  util::Json body = util::Json::object();
  body["error"] = message;
  return body.dump();
}

}  // namespace cloudwf::svc
