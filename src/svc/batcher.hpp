// Bounded request queue + same-scenario batcher — the service's admission
// and backpressure layer.
//
// Every admitted compute request is keyed by (workflow, scenario). The
// first request of a key submits one job to the worker pool; requests that
// arrive for the same key while that job is still queued join its batch
// instead of submitting more jobs. When a worker finally runs the batch it
// takes *everything* pending under the key in arrival order and evaluates
// it through one shared EvalCache, so coalesced requests with overlapping
// seed ranges (the "rank all strategies" + "evaluate strategy X" fan-in
// pattern) share materialization and scheduling work.
//
// Admission control is a hard queue-depth bound: submit() refuses (the
// server answers 429) once `max_queue` requests are waiting, so an
// over-capacity client sees backpressure instead of unbounded memory
// growth and collapsing tail latency. Per-request deadlines are checked
// when a worker picks the request up — a request that waited out its
// deadline in the queue is answered 504 without burning compute.
//
// Batch pick order is tenant-weighted, not FCFS: each tenant (anonymous
// traffic counts as one synthetic tenant) owns a deque of the batch keys
// it opened, and a deficit-round-robin ring over the tenants decides which
// waiting batch the next free worker takes — one credit of `weight` per
// ring pass, one batch per whole credit. A flood of anonymous batches can
// therefore delay a registered tenant's request by at most ~one batch per
// ring pass instead of the whole flood (pinned by the batcher fairness
// test).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cloud/platform.hpp"
#include "svc/handlers.hpp"
#include "svc/http.hpp"
#include "svc/protocol.hpp"
#include "tenant/tenant.hpp"
#include "util/thread_pool.hpp"

namespace cloudwf::svc {

/// Monotonic service counters, surfaced verbatim on /stats. Plain relaxed
/// atomics: each is a statistic, not a synchronization point.
struct ServiceCounters {
  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> requests_evaluate{0};
  std::atomic<std::uint64_t> requests_rank{0};
  std::atomic<std::uint64_t> requests_shard{0};
  std::atomic<std::uint64_t> unauthorized_401{0};
  std::atomic<std::uint64_t> requests_health{0};
  std::atomic<std::uint64_t> requests_stats{0};
  std::atomic<std::uint64_t> requests_tenants{0};
  std::atomic<std::uint64_t> responses_ok{0};
  std::atomic<std::uint64_t> rejected_429{0};
  std::atomic<std::uint64_t> bad_request_400{0};
  std::atomic<std::uint64_t> not_found_404{0};
  std::atomic<std::uint64_t> timeout_504{0};
  std::atomic<std::uint64_t> errors_500{0};
  std::atomic<std::uint64_t> batches_run{0};
  std::atomic<std::uint64_t> requests_coalesced{0};  ///< joined a waiting batch
  std::atomic<std::uint64_t> queue_depth_peak{0};
  std::atomic<std::uint64_t> connections_total{0};
  std::atomic<std::uint64_t> connections_rejected{0};
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> cache_hits{0};    ///< response-cache hits
  std::atomic<std::uint64_t> cache_misses{0};  ///< response-cache misses
};

/// One admitted compute request waiting for a worker.
struct QueuedRequest {
  enum class Kind : std::uint8_t { evaluate, rank, shard };

  Kind kind = Kind::evaluate;
  bool binary = false;       ///< answer with a binproto frame, not JSON
  EvaluateRequest evaluate;  ///< valid when kind == evaluate
  RankRequest rank;          ///< valid when kind == rank
  exp::ShardSpec shard;      ///< valid when kind == shard
  tenant::TenantId tenant = tenant::kInvalidTenant;  ///< anonymous by default
  double tenant_weight = 1.0;  ///< DRR credit per ring pass (registry weight)
  std::chrono::steady_clock::time_point deadline;
  std::promise<HttpResponse> promise;
  /// Optional completion hook, invoked on the worker thread right after the
  /// promise is fulfilled, with a copy of the same response. The event loop
  /// uses it to marshal the answer back to the owning loop without a
  /// blocking future wait.
  std::function<void(HttpResponse&&)> on_ready;
};

class Batcher {
 public:
  struct Config {
    std::size_t max_queue = 64;  ///< admission bound (waiting requests)
  };

  Batcher(const cloud::Platform& platform, util::ThreadPool& pool, Config cfg,
          ServiceCounters& counters)
      : platform_(platform), pool_(pool), cfg_(cfg), counters_(counters) {}

  ~Batcher() { drain(); }

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Admits `request` (returning the future its worker will fulfil) or
  /// refuses with nullopt when the queue is at capacity.
  [[nodiscard]] std::optional<std::future<HttpResponse>> submit(
      QueuedRequest request);

  /// Requests currently waiting for a worker.
  [[nodiscard]] std::size_t queue_depth() const;

  /// Blocks until every admitted request has been answered. New submissions
  /// during a drain are still accepted (the server gates admissions with
  /// its own stopping flag).
  void drain();

 private:
  void run_batch();
  /// Deficit-weighted choice of the next batch key (mutex_ held). Empty
  /// string when nothing is pending (a vacuous batch).
  [[nodiscard]] std::string pick_key();
  [[nodiscard]] HttpResponse answer(QueuedRequest& request, EvalCache& cache);

  const cloud::Platform& platform_;
  util::ThreadPool& pool_;
  const Config cfg_;
  ServiceCounters& counters_;

  mutable std::mutex mutex_;
  std::condition_variable idle_;
  std::map<std::string, std::vector<QueuedRequest>> pending_;
  std::size_t queued_ = 0;          ///< sum of pending_ sizes
  std::size_t running_batches_ = 0;

  /// DRR state (mutex_ held). A tenant appears in ring_ iff it has batch
  /// keys waiting; each pending_ bucket is referenced by exactly one
  /// tenant's deque (the tenant whose request opened it).
  struct TenantQueue {
    double weight = 1.0;
    double deficit = 0.0;
    std::deque<std::string> keys;
  };
  std::map<tenant::TenantId, TenantQueue> tenant_queues_;
  std::deque<tenant::TenantId> ring_;
};

}  // namespace cloudwf::svc
