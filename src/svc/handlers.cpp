#include "svc/handlers.hpp"

#include "dag/builders.hpp"
#include "dag/science.hpp"
#include "obs/trace.hpp"
#include "scheduling/baselines.hpp"
#include "scheduling/factory.hpp"

namespace cloudwf::svc {

namespace {

scheduling::Strategy resolve_strategy(const std::string& label) {
  for (scheduling::Strategy& s : scheduling::baseline_strategies())
    if (s.label == label) return std::move(s);
  try {
    return scheduling::strategy_by_label(label);
  } catch (const std::invalid_argument&) {
    throw BadRequest("unknown strategy '" + label +
                     "' (see `cloudwf list` for the accepted labels)");
  }
}

std::string cell_key(const std::string& workflow,
                     workload::ScenarioKind scenario, std::uint64_t seed,
                     const std::string& strategy) {
  std::string key = workflow;
  key += '|';
  key += workload::name_of(scenario);
  key += '|';
  key += std::to_string(seed);
  key += '|';
  key += strategy;
  return key;
}

/// The serial evaluation of one cell — identical to what `cloudwf run
/// --workflow W --strategy S --scenario K --seed N` computes, packaged as a
/// RunResult (metrics + gain/loss vs the OneVMperTask-s reference).
exp::RunResult evaluate_cell(const cloud::Platform& platform,
                             const dag::Workflow& structure,
                             const scheduling::Strategy& strategy,
                             workload::ScenarioKind scenario,
                             std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.seed = seed;
  const exp::ExperimentRunner runner(platform, cfg,
                                     exp::ParallelConfig::serial());
  return runner.run_one(strategy, structure, scenario);
}

}  // namespace

dag::Workflow workflow_by_name(const std::string& name) {
  if (name == "montage") return dag::builders::montage24();
  if (name == "cstem") return dag::builders::cstem();
  if (name == "mapreduce") return dag::builders::map_reduce();
  if (name == "sequential") return dag::builders::sequential_chain();
  if (name == "epigenomics") return dag::science::epigenomics();
  if (name == "cybershake") return dag::science::cybershake();
  if (name == "ligo") return dag::science::ligo();
  if (name == "sipht") return dag::science::sipht();
  throw BadRequest("unknown workflow '" + name + "'");
}

void validate_strategy_label(const std::string& label) {
  (void)resolve_strategy(label);
}

util::Json run_result_json(const exp::RunResult& result, std::uint64_t seed) {
  util::Json row = util::Json::object();
  row["seed"] = static_cast<std::int64_t>(seed);
  row["strategy"] = result.strategy;
  row["makespan_s"] = result.metrics.makespan;
  row["vm_cost_micros"] = result.metrics.vm_cost.micros();
  row["egress_cost_micros"] = result.metrics.egress_cost.micros();
  row["total_cost_micros"] = result.metrics.total_cost.micros();
  row["idle_s"] = result.metrics.total_idle;
  row["busy_s"] = result.metrics.total_busy;
  row["vms_used"] = result.metrics.vms_used;
  row["total_btus"] = result.metrics.total_btus;
  row["utilization"] = result.metrics.utilization;
  row["gain_pct"] = result.relative.gain_pct;
  row["loss_pct"] = result.relative.loss_pct;
  return row;
}

std::vector<ResultRow> evaluate_rows(const EvaluateRequest& request,
                                     const cloud::Platform& platform,
                                     EvalCache* cache) {
  obs::PhaseScope phase("svc: evaluate");
  const scheduling::Strategy strategy = resolve_strategy(request.strategy);
  const dag::Workflow structure = workflow_by_name(request.workflow);

  std::vector<ResultRow> rows;
  rows.reserve(request.seed_count());
  for (std::uint64_t seed = request.seed_begin; seed <= request.seed_end;
       ++seed) {
    if (cache) {
      const std::string key =
          cell_key(request.workflow, request.scenario, seed, request.strategy);
      auto it = cache->run.find(key);
      if (it == cache->run.end())
        it = cache->run
                 .emplace(key, evaluate_cell(platform, structure, strategy,
                                             request.scenario, seed))
                 .first;
      rows.push_back({seed, it->second});
    } else {
      rows.push_back({seed, evaluate_cell(platform, structure, strategy,
                                          request.scenario, seed)});
    }
  }
  return rows;
}

std::vector<ResultRow> rank_rows(const RankRequest& request,
                                 const cloud::Platform& platform,
                                 EvalCache* cache) {
  obs::PhaseScope phase("svc: rank");
  const auto compute = [&] {
    const dag::Workflow structure = workflow_by_name(request.workflow);
    workload::ScenarioConfig cfg;
    cfg.seed = request.seed;
    const exp::ExperimentRunner runner(platform, cfg,
                                       exp::ParallelConfig::serial());
    // Serial inside the worker: the service pool is the parallelism layer,
    // nesting another pool per request would only oversubscribe it.
    return runner.run_all(structure, request.scenario,
                          exp::ParallelConfig::serial());
  };

  const std::vector<exp::RunResult>* results = nullptr;
  std::vector<exp::RunResult> fresh;
  if (cache) {
    const std::string key =
        cell_key(request.workflow, request.scenario, request.seed, "*rank*");
    auto it = cache->rank.find(key);
    if (it == cache->rank.end()) it = cache->rank.emplace(key, compute()).first;
    results = &it->second;
  } else {
    fresh = compute();
    results = &fresh;
  }

  std::vector<ResultRow> rows;
  rows.reserve(results->size());
  for (const exp::RunResult& row : *results)
    rows.push_back({request.seed, row});
  return rows;
}

std::string evaluate_body(const EvaluateRequest& request,
                          const cloud::Platform& platform, EvalCache* cache) {
  util::Json results = util::Json::array();
  for (const ResultRow& row : evaluate_rows(request, platform, cache))
    results.push_back(run_result_json(row.result, row.seed));

  util::Json body = util::Json::object();
  body["endpoint"] = "evaluate";
  body["workflow"] = request.workflow;
  body["strategy"] = request.strategy;
  body["scenario"] = std::string(workload::name_of(request.scenario));
  body["results"] = std::move(results);
  return body.dump();
}

std::string rank_body(const RankRequest& request,
                      const cloud::Platform& platform, EvalCache* cache) {
  util::Json results = util::Json::array();
  for (const ResultRow& row : rank_rows(request, platform, cache))
    results.push_back(run_result_json(row.result, row.seed));

  util::Json body = util::Json::object();
  body["endpoint"] = "rank";
  body["workflow"] = request.workflow;
  body["scenario"] = std::string(workload::name_of(request.scenario));
  body["seed"] = static_cast<std::int64_t>(request.seed);
  body["results"] = std::move(results);
  return body.dump();
}

std::vector<exp::SweepRow> shard_rows(const exp::ShardSpec& shard,
                                      const cloud::Platform& platform) {
  obs::PhaseScope phase("svc: shard");
  try {
    return exp::run_shard(shard, platform);
  } catch (const std::invalid_argument& e) {
    throw BadRequest(e.what());
  }
}

util::Json sweep_row_json(const exp::SweepRow& row) {
  util::Json out = util::Json::object();
  out["seed"] = static_cast<std::int64_t>(row.seed);
  out["strategy"] = row.strategy;
  out["makespan_us"] = row.makespan_us;
  out["vm_cost_micros"] = row.vm_cost_micros;
  out["egress_cost_micros"] = row.egress_cost_micros;
  out["total_cost_micros"] = row.total_cost_micros;
  out["idle_us"] = row.idle_us;
  out["busy_us"] = row.busy_us;
  out["vms_used"] = static_cast<std::int64_t>(row.vms_used);
  out["total_btus"] = row.total_btus;
  out["utilization_ppm"] = row.utilization_ppm;
  out["gain_pct_ppm"] = row.gain_pct_ppm;
  out["loss_pct_ppm"] = row.loss_pct_ppm;
  return out;
}

std::string shard_body(const exp::ShardSpec& shard,
                       const cloud::Platform& platform) {
  util::Json rows = util::Json::array();
  for (const exp::SweepRow& row : shard_rows(shard, platform))
    rows.push_back(sweep_row_json(row));

  util::Json body = util::Json::object();
  body["endpoint"] = "shard";
  body["shard_id"] = static_cast<std::int64_t>(shard.shard_id);
  body["rows"] = std::move(rows);
  return body.dump();
}

}  // namespace cloudwf::svc
