// Epoll event loop — the service's nonblocking accept/read/write path.
//
// One EventLoop owns one thread, one epoll instance and the connections it
// accepted. All loops share the server's listen socket (registered with
// EPOLLEXCLUSIVE so the kernel wakes one loop per pending accept instead of
// thundering all of them). Per connection the loop keeps a small state
// machine: unconsumed inbound bytes (fed through the incremental
// parse_http_request), a pending outbound buffer (flushed opportunistically,
// EPOLLOUT-armed only while a write actually stalls), and a single-request
// in-flight flag.
//
// Request handling is a callback: the server's dispatcher either answers
// inline (introspection endpoints, cache hits, protocol errors) or keeps
// the provided completion and returns `false`, in which case EPOLLIN
// interest is dropped until the completion fires. Completions are
// thread-safe: a batcher worker calls them from its own thread; the loop
// marshals them home through a mutex-guarded queue plus an eventfd wakeup,
// so connection state is only ever touched by the owning loop thread.
//
// Drain (`request_stop`) mirrors the blocking server's semantics: the loop
// deregisters the listen fd, closes idle connections, answers buffered
// complete requests with `Connection: close`, and exits once the last
// in-flight completion has been written out.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "svc/http.hpp"

namespace cloudwf::svc {

/// Per-loop observability counters, surfaced under "event_loops" on /stats.
/// Relaxed atomics: statistics, not synchronization.
struct EventLoopStats {
  std::atomic<std::uint64_t> connections_open{0};
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> epoll_wakeups{0};
  std::atomic<std::uint64_t> read_stalls{0};   ///< partial request, back to epoll
  std::atomic<std::uint64_t> write_stalls{0};  ///< partial write, EPOLLOUT armed
  std::atomic<std::uint64_t> completions{0};   ///< async answers marshalled in
};

class EventLoop {
 public:
  /// Invoked (exactly once, from any thread) with the response of a request
  /// the dispatcher chose to answer asynchronously.
  using Completion = std::function<void(HttpResponse&&)>;

  /// The server's request router. Returns true after filling `sync` for an
  /// inline answer; returns false after capturing `done` for a deferred one.
  /// Connection semantics (keep-alive vs close) are the loop's business —
  /// the dispatcher only sets HttpResponse::close_connection for protocol
  /// reasons (e.g. draining 503s).
  using Dispatcher =
      std::function<bool(HttpRequest&&, HttpResponse& sync, Completion done)>;

  /// Counters shared across loops (owned by the server); null pointers are
  /// simply not counted.
  struct SharedCounters {
    std::atomic<std::uint64_t>* connections_total = nullptr;
    std::atomic<std::uint64_t>* connections_active = nullptr;
    std::atomic<std::uint64_t>* connections_rejected = nullptr;
    std::atomic<std::uint64_t>* requests_total = nullptr;
    std::atomic<std::uint64_t>* bad_request_400 = nullptr;
  };

  struct Config {
    int listen_fd = -1;  ///< shared, nonblocking; not owned by the loop
    HttpLimits limits;
    std::size_t max_connections = 128;  ///< global cap via counters.connections_active
    SharedCounters counters;
  };

  EventLoop(Config config, Dispatcher dispatcher);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void start();
  /// Begins the drain described in the header comment. Thread-safe,
  /// idempotent.
  void request_stop() noexcept;
  void join();

  [[nodiscard]] const EventLoopStats& stats() const noexcept { return stats_; }

 private:
  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;               ///< -1: zombie awaiting its completion
    std::string in;            ///< unconsumed inbound bytes
    std::string out;           ///< pending outbound bytes
    std::size_t out_off = 0;
    bool keep_alive = true;    ///< of the request currently being answered
    bool in_flight = false;    ///< one request handed to the dispatcher
    bool want_write = false;   ///< EPOLLOUT armed
    bool close_after_write = false;
    bool peer_eof = false;
  };

  void run();
  void wake() noexcept;
  void drain_wakeups();
  void run_completions();
  void begin_drain();
  void accept_ready();
  void handle_event(std::uint64_t id, std::uint32_t events);
  /// All return false when they destroyed the connection.
  bool read_input(Connection& conn);
  bool process_input(Connection& conn);
  bool queue_response(Connection& conn, HttpResponse&& response);
  bool flush_output(Connection& conn);
  void update_interest(Connection& conn);
  void destroy(Connection& conn);
  [[nodiscard]] Completion make_completion(std::uint64_t id);

  Config cfg_;
  Dispatcher dispatcher_;
  EventLoopStats stats_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  bool draining_ = false;  ///< loop-thread flag: begin_drain already ran

  std::uint64_t next_id_ = 3;  ///< 1 = wakeup tag, 2 = listen tag
  std::unordered_map<std::uint64_t, Connection> connections_;

  std::mutex completions_mutex_;
  std::vector<std::pair<std::uint64_t, HttpResponse>> completions_;
};

}  // namespace cloudwf::svc
