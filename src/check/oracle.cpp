#include "check/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cloud/vm_billing.hpp"

namespace cloudwf::check {

util::Json Violation::to_json() const {
  util::Json v = util::Json::object();
  v["invariant"] = invariant;
  v["detail"] = detail;
  return v;
}

util::Json OracleReport::to_json() const {
  util::Json r = util::Json::object();
  r["workflow"] = workflow;
  r["ok"] = ok();
  util::Json list = util::Json::array();
  for (const Violation& v : violations) list.push_back(v.to_json());
  r["violations"] = std::move(list);
  return r;
}

std::string OracleReport::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) os << '\n';
    os << violations[i].invariant << ": " << violations[i].detail;
  }
  return os.str();
}

namespace {

/// Independent BTU quantization — deliberately not cloud::btus_for, so a
/// regression there is caught rather than mirrored. Spec (Sect. IV-A): a
/// started rental pays at least one whole 3600 s unit; spans on a BTU
/// boundary (within the schedule-time slack) pay exactly that many.
std::int64_t oracle_btus(util::Seconds span) {
  if (span <= util::kTimeEpsilon) return 1;
  return static_cast<std::int64_t>(
      std::ceil((span - util::kTimeEpsilon) / util::kBtu));
}

std::string task_label(const dag::Workflow& wf, dag::TaskId t) {
  return "task '" + wf.task(t).name + "' (#" + std::to_string(t) + ")";
}

class Checker {
 public:
  Checker(const dag::Workflow& wf, const sim::Schedule& schedule,
          const cloud::Platform& platform)
      : wf_(wf), schedule_(schedule), platform_(platform) {}

  OracleReport run() {
    report_.workflow = wf_.name();
    if (!check_assignments()) return std::move(report_);
    check_table_vs_timelines();
    check_overlap();
    check_precedence();
    check_boot();
    check_billing();
    check_metrics();
    return std::move(report_);
  }

 private:
  void complain(std::string invariant, std::string detail) {
    report_.violations.push_back(
        Violation{std::move(invariant), std::move(detail)});
  }

  /// Assignment sanity: every task assigned once to a real VM, with finite
  /// nonnegative times and the duration the platform model dictates.
  /// Returns false when later checks would dereference invalid assignments.
  bool check_assignments() {
    if (schedule_.task_count() != wf_.task_count()) {
      complain("assignment",
               "schedule sized for " + std::to_string(schedule_.task_count()) +
                   " tasks but workflow has " +
                   std::to_string(wf_.task_count()));
      return false;
    }
    bool usable = true;
    const cloud::VmPool& pool = schedule_.pool();
    for (const dag::Task& t : wf_.tasks()) {
      if (!schedule_.is_assigned(t.id)) {
        complain("assignment", task_label(wf_, t.id) + " is unassigned");
        usable = false;
        continue;
      }
      const sim::Assignment& a = schedule_.assignment(t.id);
      if (a.vm >= pool.size()) {
        complain("assignment", task_label(wf_, t.id) +
                                   " assigned to nonexistent VM " +
                                   std::to_string(a.vm));
        usable = false;
        continue;
      }
      if (!std::isfinite(a.start) || !std::isfinite(a.end)) {
        complain("assignment",
                 task_label(wf_, t.id) + " has non-finite start/end");
        usable = false;
        continue;
      }
      if (a.start < -util::kTimeEpsilon)
        complain("assignment", task_label(wf_, t.id) + " starts before time 0");
      if (a.end < a.start - util::kTimeEpsilon)
        complain("assignment", task_label(wf_, t.id) + " ends before it starts");
      const cloud::Vm& vm = pool.vm(a.vm);
      const util::Seconds expected = cloud::exec_time(t.work, vm.size());
      if (!util::time_eq(a.duration(), expected)) {
        std::ostringstream os;
        os << task_label(wf_, t.id) << " duration " << a.duration()
           << "s != work/speedup = " << expected << "s on "
           << cloud::name_of(vm.size());
        complain("duration", os.str());
      }
    }
    return usable;
  }

  void check_table_vs_timelines() {
    std::size_t placement_count = 0;
    for (const cloud::Vm& vm : schedule_.pool().vms()) {
      for (const cloud::Placement& p : vm.placements()) {
        ++placement_count;
        if (p.task >= wf_.task_count()) {
          complain("table-timeline", "VM " + std::to_string(vm.id()) +
                                         " hosts nonexistent task #" +
                                         std::to_string(p.task));
          continue;
        }
        const sim::Assignment& a = schedule_.assignment(p.task);
        if (a.vm != vm.id() || !util::time_eq(a.start, p.start) ||
            !util::time_eq(a.end, p.end))
          complain("table-timeline",
                   task_label(wf_, p.task) + " placement on VM " +
                       std::to_string(vm.id()) +
                       " disagrees with the task table");
      }
    }
    if (placement_count != wf_.task_count())
      complain("table-timeline",
               "VM timelines hold " + std::to_string(placement_count) +
                   " placements for " + std::to_string(wf_.task_count()) +
                   " tasks");
  }

  void check_overlap() {
    for (const cloud::Vm& vm : schedule_.pool().vms()) {
      std::vector<cloud::Placement> ps(vm.placements());
      std::sort(ps.begin(), ps.end(),
                [](const cloud::Placement& x, const cloud::Placement& y) {
                  return x.start < y.start;
                });
      for (std::size_t i = 1; i < ps.size(); ++i) {
        if (util::time_gt(ps[i - 1].end, ps[i].start))
          complain("overlap", "VM " + std::to_string(vm.id()) + ": " +
                                  task_label(wf_, ps[i - 1].task) +
                                  " overlaps " + task_label(wf_, ps[i].task));
      }
    }
  }

  void check_precedence() {
    const cloud::VmPool& pool = schedule_.pool();
    for (const dag::Edge& e : wf_.edges()) {
      if (!schedule_.is_assigned(e.from) || !schedule_.is_assigned(e.to))
        continue;  // already reported by check_assignments
      const sim::Assignment& from = schedule_.assignment(e.from);
      const sim::Assignment& to = schedule_.assignment(e.to);
      if (from.vm >= pool.size() || to.vm >= pool.size()) continue;
      const util::Seconds transfer = platform_.transfer_time(
          wf_.edge_data(e.from, e.to), pool.vm(from.vm), pool.vm(to.vm));
      if (util::time_gt(from.end + transfer, to.start)) {
        std::ostringstream os;
        os << task_label(wf_, e.to) << " starts at " << to.start << "s but "
           << task_label(wf_, e.from) << " finishes at " << from.end
           << "s + transfer " << transfer << "s";
        complain("precedence", os.str());
      }
    }
  }

  /// No task may start before its VM has booted. The model boots every VM
  /// at time 0 (pre-booting, Sect. IV-A), so the first feasible start is the
  /// platform's boot delay — per (size, region) under a cold-start model,
  /// the flat boot time otherwise — for every placement, not just the first.
  void check_boot() {
    for (const cloud::Vm& vm : schedule_.pool().vms()) {
      if (!vm.used()) continue;
      const util::Seconds boot = platform_.boot_delay(vm.size(), vm.region());
      if (boot <= 0) continue;
      const cloud::Placement& first = vm.placements().front();
      if (util::time_gt(boot, first.start)) {
        std::ostringstream os;
        os << task_label(wf_, first.task) << " starts at " << first.start
           << "s on VM " << vm.id() << " before the " << boot
           << "s boot completes";
        complain("boot", os.str());
      }
    }
  }

  /// Recomputes the whole bill from raw placements: sessions re-derived by
  /// the rent/stop rule (a placement past the running session's paid window
  /// means the VM was released at that boundary and rented anew), BTUs by
  /// the independent quantizer, prices straight from the region table. Under
  /// scenario billing the oracle applies its own cold-start anchor shift and
  /// its own per-BTU fraction lookups, never touching Vm::sessions() or
  /// vm_bill's arithmetic — those are what it certifies.
  void check_billing() {
    const cloud::VmPool& pool = schedule_.pool();
    const bool scenario = platform_.scenario_billing_active();
    const cloud::PriceSchedule* prices = platform_.price_schedule();
    util::Money recomputed_total;
    bool per_vm_ok = true;
    for (const cloud::Vm& vm : pool.vms()) {
      std::vector<cloud::Placement> ps(vm.placements());
      std::sort(ps.begin(), ps.end(),
                [](const cloud::Placement& x, const cloud::Placement& y) {
                  return x.start < y.start;
                });
      // Session intervals re-derived from raw placements alone.
      std::vector<std::pair<util::Seconds, util::Seconds>> sessions;
      for (const cloud::Placement& p : ps) {
        if (sessions.empty()) {
          sessions.emplace_back(p.start, p.end);
          continue;
        }
        auto& cur = sessions.back();
        const util::Seconds paid_end =
            cur.first + static_cast<util::Seconds>(
                            oracle_btus(cur.second - cur.first)) *
                            util::kBtu;
        if (util::time_gt(p.start, paid_end)) {
          // The VM sat idle past a paid boundary: stop event, then re-rent.
          sessions.emplace_back(p.start, p.end);
        } else {
          cur.second = p.end;
        }
      }

      const util::Seconds cold =
          scenario ? platform_.cold_start_delay(vm.size(), vm.region()) : 0.0;
      const util::Money list = platform_.region(vm.region()).price(vm.size());
      std::int64_t btus = 0;
      util::Money cost;
      for (std::size_t i = 0; i < sessions.size(); ++i) {
        // The first session's meter runs while the instance provisions.
        const util::Seconds anchor =
            i == 0 ? sessions[i].first - cold : sessions[i].first;
        const std::int64_t n = oracle_btus(sessions[i].second - anchor);
        btus += n;
        if (scenario && prices != nullptr) {
          for (std::int64_t k = 0; k < n; ++k)
            cost += list.scaled(prices->fraction_at(
                vm.size(), anchor + static_cast<util::Seconds>(k) * util::kBtu));
        } else {
          cost += list * n;
        }
      }

      const cloud::VmBill fast = cloud::vm_bill(vm, platform_);
      if (btus != fast.btus) {
        complain("billing", "VM " + std::to_string(vm.id()) + " bills " +
                                std::to_string(fast.btus) +
                                " BTUs but the rent/stop replay pays " +
                                std::to_string(btus));
        per_vm_ok = false;
        continue;
      }
      if (cost != fast.cost) {
        complain("billing", "VM " + std::to_string(vm.id()) + " bills " +
                                fast.cost.to_string() +
                                " but the rent/stop replay pays " +
                                cost.to_string());
        per_vm_ok = false;
        continue;
      }
      recomputed_total += cost;
    }
    const util::Money pool_total =
        scenario ? cloud::pool_rental_cost(pool, platform_)
                 : pool.rental_cost(platform_.regions());
    if (per_vm_ok && recomputed_total != pool_total)
      complain("billing", "pool rental cost " + pool_total.to_string() +
                              " != independently recomputed " +
                              recomputed_total.to_string());
  }

  /// compute_metrics' aggregates, re-derived without Vm's cached busy time
  /// or the pool's summations. Money compares exactly; seconds within the
  /// schedule-time slack.
  void check_metrics() {
    if (!schedule_.complete() || !report_.violations.empty())
      return;  // aggregates of a broken schedule are meaningless
    const sim::ScheduleMetrics m =
        sim::compute_metrics(wf_, schedule_, platform_);

    util::Seconds makespan = 0;
    for (const dag::Task& t : wf_.tasks())
      makespan = std::max(makespan, schedule_.assignment(t.id).end);
    if (!util::time_eq(makespan, m.makespan))
      complain("metrics", "makespan " + std::to_string(m.makespan) +
                              " != recomputed " + std::to_string(makespan));

    const cloud::VmPool& pool = schedule_.pool();
    util::Seconds busy = 0;
    util::Seconds paid = 0;
    std::int64_t btus = 0;
    std::size_t used = 0;
    const bool scenario = platform_.scenario_billing_active();
    for (const cloud::Vm& vm : pool.vms()) {
      if (!vm.used()) continue;
      ++used;
      for (const cloud::Placement& p : vm.placements()) busy += p.end - p.start;
      if (scenario) {
        // Per-VM bills already certified against the raw-placement replay by
        // check_billing; here they anchor the aggregate cross-check.
        const cloud::VmBill bill = cloud::vm_bill(vm, platform_);
        btus += bill.btus;
        paid += bill.paid;
      } else {
        btus += vm.btus();  // per-VM BTUs already certified by check_billing
        paid += static_cast<util::Seconds>(vm.btus()) * util::kBtu;
      }
    }
    if (used != m.vms_used)
      complain("metrics", "vms_used " + std::to_string(m.vms_used) +
                              " != recomputed " + std::to_string(used));
    if (btus != m.total_btus)
      complain("metrics", "total_btus " + std::to_string(m.total_btus) +
                              " != recomputed " + std::to_string(btus));
    if (!util::time_eq(busy, m.total_busy))
      complain("metrics", "total_busy " + std::to_string(m.total_busy) +
                              " != recomputed " + std::to_string(busy));
    if (!util::time_eq(paid - busy, m.total_idle))
      complain("metrics", "total_idle " + std::to_string(m.total_idle) +
                              " != recomputed " + std::to_string(paid - busy));
    const double utilization = paid > 0 ? busy / paid : 0.0;
    if (std::abs(utilization - m.utilization) > 1e-9)
      complain("metrics", "utilization " + std::to_string(m.utilization) +
                              " != recomputed " + std::to_string(utilization));

    // Egress: per-source-region volumes over all cross-region edges, billed
    // in the (1 GB, 10 TB] band at the source's transfer-out price.
    std::vector<util::Gigabytes> egress(platform_.regions().size(), 0.0);
    for (const dag::Edge& e : wf_.edges()) {
      const cloud::Vm& vf = pool.vm(schedule_.assignment(e.from).vm);
      const cloud::Vm& vt = pool.vm(schedule_.assignment(e.to).vm);
      if (vf.region() != vt.region())
        egress[vf.region()] += wf_.edge_data(e.from, e.to);
    }
    util::Money egress_cost;
    for (std::size_t r = 0; r < egress.size(); ++r) {
      constexpr util::Gigabytes kFree = 1.0;
      constexpr util::Gigabytes kCap = 10.0 * 1024.0;
      util::Gigabytes billable = 0.0;
      if (egress[r] > kFree) billable = std::min(egress[r], kCap) - kFree;
      egress_cost += platform_.region(static_cast<cloud::RegionId>(r))
                         .transfer_out_per_gb.scaled(billable);
    }
    if (egress_cost != m.egress_cost)
      complain("metrics", "egress_cost " + m.egress_cost.to_string() +
                              " != recomputed " + egress_cost.to_string());
    if (m.vm_cost + m.egress_cost != m.total_cost)
      complain("metrics", "total_cost " + m.total_cost.to_string() +
                              " != vm_cost + egress_cost");
  }

  const dag::Workflow& wf_;
  const sim::Schedule& schedule_;
  const cloud::Platform& platform_;
  OracleReport report_;
};

}  // namespace

OracleReport check_schedule(const dag::Workflow& wf,
                            const sim::Schedule& schedule,
                            const cloud::Platform& platform) {
  return Checker(wf, schedule, platform).run();
}

void check_schedule_or_throw(const dag::Workflow& wf,
                             const sim::Schedule& schedule,
                             const cloud::Platform& platform) {
  const OracleReport report = check_schedule(wf, schedule, platform);
  if (report.ok()) return;
  throw std::logic_error("oracle: infeasible schedule for workflow '" +
                         wf.name() + "':\n" + report.to_string());
}

ReplayAudit check_faulty_replay(const dag::Workflow& wf,
                                const sim::Schedule& schedule,
                                const cloud::Platform& platform,
                                const sim::FaultyReplayResult& replay) {
  ReplayAudit audit;
  audit.report.workflow = wf.name();
  const auto complain = [&audit](std::string invariant, std::string detail) {
    audit.report.violations.push_back(
        Violation{std::move(invariant), std::move(detail)});
  };

  const std::size_t n = wf.task_count();
  if (replay.tasks.size() != n) {
    complain("replay-size",
             "replay holds " + std::to_string(replay.tasks.size()) +
                 " intervals for " + std::to_string(n) + " tasks");
    return audit;  // per-task checks would index out of bounds
  }

  const cloud::VmPool& pool = schedule.pool();

  // Durations: an interval is the final attempt plus every failed attempt
  // and detection delay before it — never shorter than the planned
  // execution time, and exactly it when nothing failed. The per-task
  // excesses must sum to the reported time_lost (nothing lost untracked).
  util::Seconds total_stretch = 0;
  for (const dag::Task& t : wf.tasks()) {
    const sim::ReplayedTask& r = replay.tasks[t.id];
    const cloud::Vm& vm = pool.vm(schedule.assignment(t.id).vm);
    const util::Seconds planned = cloud::exec_time(t.work, vm.size());
    const util::Seconds replayed = r.end - r.start;
    if (util::time_gt(planned, replayed)) {
      std::ostringstream os;
      os << task_label(wf, t.id) << " replayed in " << replayed
         << "s, shorter than the planned " << planned << "s";
      complain("replay-duration", os.str());
    } else if (replay.failures == 0 && !util::time_eq(replayed, planned)) {
      std::ostringstream os;
      os << task_label(wf, t.id) << " stretched to " << replayed
         << "s with zero failures (planned " << planned << "s)";
      complain("replay-duration", os.str());
    }
    total_stretch += replayed - planned;
  }
  if (!util::time_eq(total_stretch, replay.time_lost))
    complain("replay-accounting",
             "intervals carry " + std::to_string(total_stretch) +
                 "s of stretch but time_lost reports " +
                 std::to_string(replay.time_lost) + "s");

  // Faults only push work later: the fault-free replay of the same mapping
  // is a per-task lower bound on both endpoints.
  const sim::ReplayResult baseline =
      sim::EventSimulator(platform).replay(wf, schedule);
  for (const dag::Task& t : wf.tasks()) {
    const sim::ReplayedTask& r = replay.tasks[t.id];
    const sim::ReplayedTask& b = baseline.tasks[t.id];
    if (util::time_gt(b.start, r.start) || util::time_gt(b.end, r.end)) {
      std::ostringstream os;
      os << task_label(wf, t.id) << " replays at [" << r.start << ", " << r.end
         << "]s, earlier than the fault-free [" << b.start << ", " << b.end
         << "]s";
      complain("replay-monotonic", os.str());
    }
  }

  // Per-VM: planned placement order preserved, no overlap between the
  // stretched intervals, and the bill re-derived from them (rent/stop
  // session segmentation, Table II prices — with the cold-start anchor and
  // per-BTU price fractions applied when scenario billing is installed).
  const bool scenario_billing = platform.scenario_billing_active();
  const cloud::PriceSchedule* price_schedule = platform.price_schedule();
  for (const cloud::Vm& vm : pool.vms()) {
    const auto& ps = vm.placements();
    std::vector<std::pair<util::Seconds, util::Seconds>> sessions;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const sim::ReplayedTask& cur = replay.tasks[ps[i].task];
      audit.replayed_busy += cur.end - cur.start;
      if (i > 0) {
        const sim::ReplayedTask& prev = replay.tasks[ps[i - 1].task];
        if (util::time_gt(prev.start, cur.start))
          complain("replay-order",
                   "VM " + std::to_string(vm.id()) + ": " +
                       task_label(wf, ps[i].task) + " replays before " +
                       task_label(wf, ps[i - 1].task));
        if (util::time_gt(prev.end, cur.start))
          complain("replay-overlap",
                   "VM " + std::to_string(vm.id()) + ": " +
                       task_label(wf, ps[i - 1].task) + " overlaps " +
                       task_label(wf, ps[i].task));
      }
      if (sessions.empty()) {
        sessions.emplace_back(cur.start, cur.end);
        continue;
      }
      auto& open = sessions.back();
      const util::Seconds paid_end =
          open.first + static_cast<util::Seconds>(
                           oracle_btus(open.second - open.first)) *
                           util::kBtu;
      if (util::time_gt(cur.start, paid_end))
        sessions.emplace_back(cur.start, cur.end);
      else
        open.second = std::max(open.second, cur.end);
    }
    const util::Seconds cold =
        scenario_billing ? platform.cold_start_delay(vm.size(), vm.region())
                         : 0.0;
    const util::Money list = platform.region(vm.region()).price(vm.size());
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      const util::Seconds anchor =
          i == 0 ? sessions[i].first - cold : sessions[i].first;
      const std::int64_t session_btus =
          oracle_btus(sessions[i].second - anchor);
      audit.replayed_btus += session_btus;
      if (scenario_billing && price_schedule != nullptr) {
        for (std::int64_t k = 0; k < session_btus; ++k)
          audit.replayed_vm_cost += list.scaled(price_schedule->fraction_at(
              vm.size(), anchor + static_cast<util::Seconds>(k) * util::kBtu));
      } else {
        audit.replayed_vm_cost += list * session_btus;
      }
    }
  }

  // Precedence across the stretched timeline, transfers included.
  for (const dag::Edge& e : wf.edges()) {
    const sim::ReplayedTask& from = replay.tasks[e.from];
    const sim::ReplayedTask& to = replay.tasks[e.to];
    const util::Seconds transfer = platform.transfer_time(
        wf.edge_data(e.from, e.to), pool.vm(schedule.assignment(e.from).vm),
        pool.vm(schedule.assignment(e.to).vm));
    if (util::time_gt(from.end + transfer, to.start)) {
      std::ostringstream os;
      os << task_label(wf, e.to) << " replays at " << to.start << "s but "
         << task_label(wf, e.from) << " finishes at " << from.end
         << "s + transfer " << transfer << "s";
      complain("replay-precedence", os.str());
    }
  }

  util::Seconds makespan = 0;
  for (const sim::ReplayedTask& r : replay.tasks)
    makespan = std::max(makespan, r.end);
  if (!util::time_eq(makespan, replay.makespan))
    complain("replay-makespan",
             "reported makespan " + std::to_string(replay.makespan) +
                 "s != max interval end " + std::to_string(makespan) + "s");

  return audit;
}

}  // namespace cloudwf::check
