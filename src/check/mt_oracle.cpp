#include "check/mt_oracle.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cloud/billing.hpp"
#include "dag/structure_cache.hpp"
#include "tenant/billing.hpp"

namespace cloudwf::check {

namespace {

/// Independent BTU quantization (same rationale as check/oracle.cpp: not
/// cloud::btus_for, so a regression there is caught rather than mirrored).
std::int64_t mt_btus(util::Seconds span) {
  if (span <= 0) return 1;
  return static_cast<std::int64_t>(
      std::ceil((span - util::kTimeEpsilon) / util::kBtu));
}

class MtChecker {
 public:
  MtChecker(const tenant::TenantRegistry& registry,
            std::span<const tenant::JobSpec> jobs,
            const tenant::MultiTenantResult& result,
            const cloud::Platform& platform)
      : registry_(registry), jobs_(jobs), result_(result), platform_(platform) {
    report_.workflow = "multi-tenant pool (" + std::to_string(jobs.size()) +
                       " jobs, " + std::to_string(registry.size()) +
                       " tenants, " +
                       std::string(tenant::name_of(result.config.policy)) +
                       ")";
  }

  OracleReport run() {
    check_assignment();
    check_duration();
    check_precedence_and_release();
    check_timeline();
    check_overlap();
    check_quota();
    check_isolation();
    check_billing();
    return std::move(report_);
  }

 private:
  void complain(std::string invariant, std::string detail) {
    report_.violations.push_back({std::move(invariant), std::move(detail)});
  }

  [[nodiscard]] std::string task_label(std::size_t j, dag::TaskId t) const {
    return "job " + std::to_string(j) + " task " + std::to_string(t);
  }

  void check_assignment() {
    const std::size_t pool_size = result_.pool.size();
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const std::size_t count = jobs_[j].workflow.task_count();
      if (result_.jobs[j].tasks.size() != count) {
        complain("assignment", "job " + std::to_string(j) + " table has " +
                                   std::to_string(result_.jobs[j].tasks.size()) +
                                   " rows for " + std::to_string(count) +
                                   " tasks");
        continue;
      }
      for (dag::TaskId t = 0; t < count; ++t) {
        const sim::Assignment& a = result_.jobs[j].tasks[t];
        if (!a.valid())
          complain("assignment", task_label(j, t) + " never assigned");
        else if (a.vm >= pool_size)
          complain("assignment", task_label(j, t) + " on nonexistent VM " +
                                     std::to_string(a.vm));
      }
    }
  }

  void check_duration() {
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      for (dag::TaskId t = 0; t < result_.jobs[j].tasks.size(); ++t) {
        const sim::Assignment& a = result_.jobs[j].tasks[t];
        if (!a.valid() || a.vm >= result_.pool.size()) continue;
        const util::Seconds expect = cloud::exec_time(
            result_.jobs[j].actual_works[t], result_.pool.vm(a.vm).size());
        // Compare as the dispatcher computed it (end = start + exec):
        // duration() re-subtracts and is not bitwise-stable.
        if (a.end != a.start + expect) {
          std::ostringstream os;
          os << task_label(j, t) << " ends at " << a.end
             << "s but start + actual execution is " << a.start + expect
             << "s";
          complain("duration", os.str());
        }
      }
    }
  }

  void check_precedence_and_release() {
    const util::Seconds boot = platform_.boot_time();
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const auto sc = jobs_[j].workflow.structure();
      for (dag::TaskId t = 0; t < result_.jobs[j].tasks.size(); ++t) {
        const sim::Assignment& a = result_.jobs[j].tasks[t];
        if (!a.valid() || a.vm >= result_.pool.size()) continue;
        if (util::time_gt(boot, a.start))
          complain("release", task_label(j, t) + " starts before boot");
        if (util::time_gt(jobs_[j].arrival, a.start))
          complain("release", task_label(j, t) +
                                  " starts before its job's arrival at " +
                                  std::to_string(jobs_[j].arrival) + "s");
        const std::span<const dag::TaskId> preds = sc->preds(t);
        const std::span<const util::Gigabytes> data = sc->pred_data(t);
        for (std::size_t i = 0; i < preds.size(); ++i) {
          const sim::Assignment& pa = result_.jobs[j].tasks[preds[i]];
          if (!pa.valid() || pa.vm >= result_.pool.size()) continue;
          const util::Seconds transfer = platform_.transfer_time(
              data[i], result_.pool.vm(pa.vm), result_.pool.vm(a.vm));
          if (util::time_gt(pa.end + transfer, a.start)) {
            std::ostringstream os;
            os << task_label(j, t) << " starts at " << a.start
               << "s before predecessor " << preds[i] << " + transfer ends at "
               << pa.end + transfer << "s";
            complain("precedence", os.str());
          }
        }
      }
    }
  }

  /// The pool timeline and the per-job tables must be two views of one
  /// schedule: every global task id placed exactly once, bitwise equal.
  void check_timeline() {
    std::map<dag::TaskId, std::pair<cloud::VmId, std::pair<util::Seconds, util::Seconds>>>
        placed;
    for (const cloud::Vm& vm : result_.pool.vms()) {
      for (const cloud::Placement& p : vm.placements()) {
        if (!placed.emplace(p.task, std::make_pair(vm.id(), std::make_pair(
                                                                p.start, p.end)))
                 .second)
          complain("table-timeline", "global task " + std::to_string(p.task) +
                                         " placed more than once");
      }
    }
    std::size_t expected = 0;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      for (dag::TaskId t = 0; t < result_.jobs[j].tasks.size(); ++t) {
        const sim::Assignment& a = result_.jobs[j].tasks[t];
        if (!a.valid()) continue;
        ++expected;
        const dag::TaskId global = result_.task_base[j] + t;
        const auto it = placed.find(global);
        if (it == placed.end()) {
          complain("table-timeline", task_label(j, t) +
                                         " missing from the pool timeline");
          continue;
        }
        if (it->second.first != a.vm || it->second.second.first != a.start ||
            it->second.second.second != a.end)
          complain("table-timeline",
                   task_label(j, t) + " disagrees with the pool timeline");
      }
    }
    if (placed.size() != expected)
      complain("table-timeline",
               "pool timeline holds " + std::to_string(placed.size()) +
                   " placements for " + std::to_string(expected) +
                   " assigned tasks");
  }

  void check_overlap() {
    for (const cloud::Vm& vm : result_.pool.vms()) {
      std::vector<cloud::Placement> ps(vm.placements());
      std::sort(ps.begin(), ps.end(),
                [](const cloud::Placement& x, const cloud::Placement& y) {
                  return x.start < y.start;
                });
      for (std::size_t i = 1; i < ps.size(); ++i) {
        if (util::time_gt(ps[i - 1].end, ps[i].start)) {
          std::ostringstream os;
          os << "VM " << vm.id() << ": global tasks " << ps[i - 1].task
             << " and " << ps[i].task << " overlap";
          complain("overlap", os.str());
        }
      }
    }
  }

  /// Interval sweep over raw placements: at no instant may a tenant run
  /// more tasks than its quota. Ends sort before starts at the same time —
  /// a completion frees its slot for a task starting that very instant.
  void check_quota() {
    struct Edge {
      util::Seconds time;
      int delta;  // -1 end, +1 start (sort key: ends first)
    };
    std::vector<std::vector<Edge>> edges(registry_.size());
    for (const cloud::Vm& vm : result_.pool.vms()) {
      for (const cloud::Placement& p : vm.placements()) {
        const tenant::TenantId tid = result_.tenant_of(p.task, jobs_);
        edges[tid].push_back({p.start, +1});
        edges[tid].push_back({p.end, -1});
      }
    }
    for (tenant::TenantId tid = 0; tid < registry_.size(); ++tid) {
      std::sort(edges[tid].begin(), edges[tid].end(),
                [](const Edge& a, const Edge& b) {
                  if (a.time != b.time) return a.time < b.time;
                  return a.delta < b.delta;
                });
      std::size_t running = 0;
      const std::size_t quota = registry_.spec(tid).max_running;
      for (const Edge& e : edges[tid]) {
        if (e.delta > 0) {
          if (++running > quota) {
            std::ostringstream os;
            os << "tenant " << registry_.spec(tid).name << " runs " << running
               << " tasks at " << e.time << "s, over its quota of " << quota;
            complain("quota", os.str());
            break;
          }
        } else {
          --running;
        }
      }
    }
  }

  void check_isolation() {
    if (result_.config.policy != tenant::SharingPolicy::exclusive) return;
    if (result_.vm_owner.size() != result_.pool.size()) {
      complain("isolation", "vm_owner table size mismatch");
      return;
    }
    for (const cloud::Vm& vm : result_.pool.vms()) {
      for (const cloud::Placement& p : vm.placements()) {
        const tenant::TenantId tid = result_.tenant_of(p.task, jobs_);
        if (tid != result_.vm_owner[vm.id()]) {
          std::ostringstream os;
          os << "exclusive policy: global task " << p.task << " of tenant "
             << tid << " placed on VM " << vm.id() << " owned by tenant "
             << result_.vm_owner[vm.id()];
          complain("isolation", os.str());
        }
      }
    }
  }

  /// Per-VM BTUs re-derived by the rent/stop replay, then the attributor's
  /// per-tenant bills recomposed against the pool's own rental cost.
  void check_billing() {
    for (const cloud::Vm& vm : result_.pool.vms()) {
      std::vector<cloud::Placement> ps(vm.placements());
      std::sort(ps.begin(), ps.end(),
                [](const cloud::Placement& x, const cloud::Placement& y) {
                  return x.start < y.start;
                });
      std::int64_t btus = 0;
      std::size_t sessions = 0;
      util::Seconds session_start = 0;
      util::Seconds session_end = 0;
      for (const cloud::Placement& p : ps) {
        if (sessions == 0) {
          session_start = p.start;
          session_end = p.end;
          sessions = 1;
          continue;
        }
        const util::Seconds paid_end =
            session_start +
            static_cast<util::Seconds>(mt_btus(session_end - session_start)) *
                util::kBtu;
        if (util::time_gt(p.start, paid_end)) {
          btus += mt_btus(session_end - session_start);
          session_start = p.start;
          ++sessions;
        }
        session_end = p.end;
      }
      if (sessions > 0) btus += mt_btus(session_end - session_start);
      if (btus != vm.btus())
        complain("billing", "VM " + std::to_string(vm.id()) + " bills " +
                                std::to_string(vm.btus()) +
                                " BTUs but the rent/stop replay pays " +
                                std::to_string(btus));
    }

    const tenant::BillingBreakdown bill = tenant::attribute_billing(
        result_.pool, platform_.regions(), registry_,
        [this](dag::TaskId global) { return result_.tenant_of(global, jobs_); });
    const util::Money pool_total =
        result_.pool.rental_cost(platform_.regions());
    if (bill.total != pool_total)
      complain("billing", "attributed bills total " + bill.total.to_string() +
                              " != pool rental cost " +
                              pool_total.to_string());
    util::Money resum;
    for (const tenant::TenantBill& b : bill.bills) resum = resum + b.cost;
    if (resum != bill.total)
      complain("billing", "breakdown total " + bill.total.to_string() +
                              " != sum of its own bills " + resum.to_string());
  }

  const tenant::TenantRegistry& registry_;
  std::span<const tenant::JobSpec> jobs_;
  const tenant::MultiTenantResult& result_;
  const cloud::Platform& platform_;
  OracleReport report_;
};

}  // namespace

OracleReport check_multi_tenant(const tenant::TenantRegistry& registry,
                                std::span<const tenant::JobSpec> jobs,
                                const tenant::MultiTenantResult& result,
                                const cloud::Platform& platform) {
  return MtChecker(registry, jobs, result, platform).run();
}

void check_multi_tenant_or_throw(const tenant::TenantRegistry& registry,
                                 std::span<const tenant::JobSpec> jobs,
                                 const tenant::MultiTenantResult& result,
                                 const cloud::Platform& platform) {
  const OracleReport report =
      check_multi_tenant(registry, jobs, result, platform);
  if (!report.ok())
    throw std::logic_error("multi-tenant oracle: " + report.to_string());
}

}  // namespace cloudwf::check
