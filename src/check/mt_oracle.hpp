// Multi-tenant schedule oracle: the independent checker for shared-pool
// runs (tenant::run_shared_pool), extending check/oracle's philosophy —
// re-derive every invariant from raw placements, never from the simulator's
// own caches — to the invariants only a multi-tenant schedule has:
//
//   assignment      every job's every task assigned, to an existing VM;
//   duration        end - start == exec_time(actual work, VM size), bitwise;
//   precedence      per-job start(t) >= end(p) + transfer(p -> t) on the
//                   assigned endpoints (transfers re-derived from the
//                   platform model, cross-job edges do not exist);
//   release         no task starts before the platform boot or before its
//                   job's arrival;
//   table-timeline  the shared pool's placement timeline and the per-job
//                   task tables agree bitwise, each global task id exactly
//                   once;
//   overlap         placements on one VM never overlap;
//   quota           at no instant does a tenant run more tasks than its
//                   registered max_running (interval sweep over raw
//                   placements, ends processed before starts at a tie);
//   isolation       under the exclusive policy, every placement on a VM
//                   belongs to the tenant that rented it;
//   billing         per-VM BTUs re-derived by the rent/stop replay match
//                   the pool, and tenant::attribute_billing's per-tenant
//                   bills recompose bitwise to the pool's rental cost.
#pragma once

#include <span>

#include "check/oracle.hpp"
#include "tenant/shared_pool.hpp"

namespace cloudwf::check {

/// Runs every multi-tenant invariant against a run_shared_pool result.
/// Never throws on a bad schedule — violations are the payload.
[[nodiscard]] OracleReport check_multi_tenant(
    const tenant::TenantRegistry& registry,
    std::span<const tenant::JobSpec> jobs,
    const tenant::MultiTenantResult& result, const cloud::Platform& platform);

/// Throws std::logic_error with the report text if any invariant is broken.
void check_multi_tenant_or_throw(const tenant::TenantRegistry& registry,
                                 std::span<const tenant::JobSpec> jobs,
                                 const tenant::MultiTenantResult& result,
                                 const cloud::Platform& platform);

}  // namespace cloudwf::check
