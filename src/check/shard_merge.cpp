#include "check/shard_merge.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "scheduling/factory.hpp"
#include "sim/metrics.hpp"
#include "sim/schedule.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace cloudwf::check {

namespace {

std::string cell_label(const exp::GridCell& cell, std::uint64_t index) {
  return cell.workflow + "/" + std::string(workload::name_of(cell.scenario)) +
         "/seed " + std::to_string(cell.seed) + "/" + cell.strategy +
         " (flat index " + std::to_string(index) + ")";
}

}  // namespace

util::Json ShardMergeReport::to_json() const {
  util::Json doc = util::Json::object();
  doc["cells_checked"] = static_cast<std::int64_t>(cells_checked);
  doc["cells_verified"] = static_cast<std::int64_t>(cells_verified);
  doc["ok"] = ok();
  util::Json list = util::Json::array();
  for (const Violation& v : violations) list.push_back(v.to_json());
  doc["violations"] = std::move(list);
  return doc;
}

std::string ShardMergeReport::to_string() const {
  std::string out;
  for (const Violation& v : violations) {
    if (!out.empty()) out += '\n';
    out += v.invariant;
    out += ": ";
    out += v.detail;
  }
  return out;
}

ShardMergeReport check_shard_merge(const exp::SweepGridSpec& grid,
                                   const std::vector<exp::SweepRow>& merged,
                                   const cloud::Platform& platform,
                                   const ShardMergeConfig& config) {
  exp::validate_grid(grid);

  ShardMergeReport report;
  const auto violate = [&](std::string invariant, std::string detail) {
    report.violations.push_back({std::move(invariant), std::move(detail)});
  };

  const std::uint64_t cells = grid.cell_count();
  if (merged.size() != cells) {
    violate("merge-size", "merged holds " + std::to_string(merged.size()) +
                              " rows, grid has " + std::to_string(cells) +
                              " cells");
    return report;  // indices below would be meaningless
  }

  // Cheap full pass: the row at flat index i must carry cell i's seed and
  // strategy label. Catches shuffled, duplicated or mis-concatenated merges
  // across the whole sweep without re-running anything. Capped violation
  // output — a systematically broken merge would otherwise flood the report.
  for (std::uint64_t i = 0; i < cells; ++i) {
    const exp::GridCell cell = exp::cell_at(grid, i);
    const exp::SweepRow& row = merged[static_cast<std::size_t>(i)];
    if (row.seed != cell.seed || row.strategy != cell.strategy) {
      violate("merge-order",
              "row " + std::to_string(i) + " is (seed " +
                  std::to_string(row.seed) + ", " + row.strategy +
                  "), cell expects (seed " + std::to_string(cell.seed) + ", " +
                  cell.strategy + ")");
      if (report.violations.size() >= 8) return report;
      continue;
    }
    ++report.cells_checked;
  }
  if (!report.violations.empty()) return report;

  // Deep verification on a deterministic sample: re-execute each picked
  // cell through the exact single-cell shard path and demand bitwise row
  // equality, then rebuild its schedule from scratch and run the full
  // 8-invariant oracle over it.
  const std::size_t samples = static_cast<std::size_t>(
      std::min<std::uint64_t>(config.samples, cells));
  std::uint64_t stream = config.seed;
  std::set<std::uint64_t> picked;
  while (picked.size() < samples)
    picked.insert(util::splitmix64(stream) % cells);

  for (const std::uint64_t index : picked) {
    const exp::GridCell cell = exp::cell_at(grid, index);

    exp::ShardSpec one;
    one.shard_id = 0;
    one.cell_begin = index;
    one.cell_end = index + 1;
    one.grid = grid;
    const std::vector<exp::SweepRow> rerun = exp::run_shard(one, platform);
    if (rerun.size() != 1 ||
        !(rerun.front() == merged[static_cast<std::size_t>(index)])) {
      violate("merge-cell", cell_label(cell, index) +
                                ": re-executed row differs from merged row");
      continue;
    }

    // Same materialization the shard path used: seed via ScenarioConfig,
    // scenario via materialize. The freshly built schedule must pass every
    // platform-model invariant.
    workload::ScenarioConfig cfg;
    cfg.seed = cell.seed;
    const exp::ExperimentRunner runner(platform, cfg);
    const dag::Workflow materialized =
        runner.materialize(exp::grid_workflow(cell.workflow), cell.scenario);
    const scheduling::Strategy strategy =
        scheduling::strategy_by_label(cell.strategy);
    const sim::Schedule schedule =
        strategy.scheduler->run(materialized, platform);
    OracleReport oracle = check_schedule(materialized, schedule, platform);
    for (Violation& v : oracle.violations)
      violate("merge-oracle/" + v.invariant,
              cell_label(cell, index) + ": " + v.detail);
    ++report.cells_verified;
  }
  return report;
}

}  // namespace cloudwf::check
