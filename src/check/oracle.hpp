// Schedule-invariant oracle: the complete, independent feasibility +
// accounting checker behind the correctness harness.
//
// sim/validator answers "is this schedule structurally feasible" with
// human-readable strings; the oracle re-derives *every* platform-model
// invariant the paper's comparison rests on (Sect. II/III) from raw
// placements and prices, and reports violations machine-readably so the
// differential engine, the fuzz drivers and CI can gate on them:
//
//   assignment      every task assigned exactly once, to an existing VM;
//   duration        task duration == work / speedup(size) on its VM;
//   table-timeline  the task table and the VM placement timelines agree;
//   overlap         placements on one VM never overlap (exclusive VMs);
//   precedence      start(t) >= finish(p) + transfer(p -> t) on the
//                   assigned endpoints, for every edge;
//   boot            no task starts before the platform's boot delay;
//   billing         BTU cost recomputed from raw placements (session
//                   segmentation + Table II prices) == the pool's answer;
//   metrics         compute_metrics' aggregates == independent recomputes
//                   (makespan, busy/idle/paid seconds, BTUs, egress, total).
//
// None of the checks consult Vm::Session, VmPool's indices or the
// StructureCache — a bug in any of those caches cannot hide from the oracle.
//
// check_faulty_replay extends the oracle to fault-injected replays
// (sim/faults.hpp): the retry-stretched intervals must still respect
// overlap, same-VM order and precedence+transfer, dominate the fault-free
// replay point-for-point, and account for every lost second — and the bill
// is re-derived from the stretched placements with the same rent/stop rule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/platform.hpp"
#include "dag/workflow.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/schedule.hpp"
#include "util/json.hpp"

namespace cloudwf::check {

/// One broken invariant. `invariant` is a stable machine-readable code from
/// the list above; `detail` is the human-readable specifics.
struct Violation {
  std::string invariant;
  std::string detail;

  [[nodiscard]] util::Json to_json() const;
};

/// Result of running the oracle over one (workflow, schedule) pair.
struct OracleReport {
  std::string workflow;
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] util::Json to_json() const;

  /// "invariant: detail" lines joined with newlines (empty when ok).
  [[nodiscard]] std::string to_string() const;
};

/// Runs every invariant check against `schedule`. Never throws on an
/// infeasible schedule — infeasibility is the report's payload. (It does
/// propagate std::bad_alloc and the like.)
[[nodiscard]] OracleReport check_schedule(const dag::Workflow& wf,
                                          const sim::Schedule& schedule,
                                          const cloud::Platform& platform);

/// Throws std::logic_error with the report text if any invariant is broken.
void check_schedule_or_throw(const dag::Workflow& wf,
                             const sim::Schedule& schedule,
                             const cloud::Platform& platform);

/// check_faulty_replay's result: the violation report plus the bill
/// re-derived from the retry-stretched intervals (sessions segmented by the
/// same rent/stop rule the billing check uses, priced from the region
/// table). The derived figures let callers compare a fault scenario's cost
/// against the planned schedule's without trusting any simulator cache.
struct ReplayAudit {
  OracleReport report;
  std::int64_t replayed_btus = 0;    ///< BTUs from stretched sessions
  util::Money replayed_vm_cost;      ///< those BTUs priced per VM region
  util::Seconds replayed_busy = 0;   ///< sum of stretched attempt intervals

  [[nodiscard]] bool ok() const noexcept { return report.ok(); }
};

/// Audits one fault-injected replay of `schedule` (same workflow/platform).
/// Invariants, all derived from raw replayed intervals:
///
///   replay-size        one interval per workflow task;
///   replay-duration    every interval at least the planned duration, and
///                      exactly it when the replay saw zero failures;
///   replay-monotonic   start/end never earlier than the fault-free replay
///                      of the same mapping (faults only push work later);
///   replay-overlap     stretched intervals on one VM still never overlap;
///   replay-order       each VM runs its tasks in the planned order;
///   replay-precedence  start(t) >= end(p) + transfer for every edge;
///   replay-makespan    the reported makespan is the max interval end;
///   replay-accounting  total stretch over planned durations == time_lost.
[[nodiscard]] ReplayAudit check_faulty_replay(
    const dag::Workflow& wf, const sim::Schedule& schedule,
    const cloud::Platform& platform, const sim::FaultyReplayResult& replay);

}  // namespace cloudwf::check
