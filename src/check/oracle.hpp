// Schedule-invariant oracle: the complete, independent feasibility +
// accounting checker behind the correctness harness.
//
// sim/validator answers "is this schedule structurally feasible" with
// human-readable strings; the oracle re-derives *every* platform-model
// invariant the paper's comparison rests on (Sect. II/III) from raw
// placements and prices, and reports violations machine-readably so the
// differential engine, the fuzz drivers and CI can gate on them:
//
//   assignment      every task assigned exactly once, to an existing VM;
//   duration        task duration == work / speedup(size) on its VM;
//   table-timeline  the task table and the VM placement timelines agree;
//   overlap         placements on one VM never overlap (exclusive VMs);
//   precedence      start(t) >= finish(p) + transfer(p -> t) on the
//                   assigned endpoints, for every edge;
//   boot            no task starts before the platform's boot delay;
//   billing         BTU cost recomputed from raw placements (session
//                   segmentation + Table II prices) == the pool's answer;
//   metrics         compute_metrics' aggregates == independent recomputes
//                   (makespan, busy/idle/paid seconds, BTUs, egress, total).
//
// None of the checks consult Vm::Session, VmPool's indices or the
// StructureCache — a bug in any of those caches cannot hide from the oracle.
#pragma once

#include <string>
#include <vector>

#include "cloud/platform.hpp"
#include "dag/workflow.hpp"
#include "sim/metrics.hpp"
#include "sim/schedule.hpp"
#include "util/json.hpp"

namespace cloudwf::check {

/// One broken invariant. `invariant` is a stable machine-readable code from
/// the list above; `detail` is the human-readable specifics.
struct Violation {
  std::string invariant;
  std::string detail;

  [[nodiscard]] util::Json to_json() const;
};

/// Result of running the oracle over one (workflow, schedule) pair.
struct OracleReport {
  std::string workflow;
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] util::Json to_json() const;

  /// "invariant: detail" lines joined with newlines (empty when ok).
  [[nodiscard]] std::string to_string() const;
};

/// Runs every invariant check against `schedule`. Never throws on an
/// infeasible schedule — infeasibility is the report's payload. (It does
/// propagate std::bad_alloc and the like.)
[[nodiscard]] OracleReport check_schedule(const dag::Workflow& wf,
                                          const sim::Schedule& schedule,
                                          const cloud::Platform& platform);

/// Throws std::logic_error with the report text if any invariant is broken.
void check_schedule_or_throw(const dag::Workflow& wf,
                             const sim::Schedule& schedule,
                             const cloud::Platform& platform);

}  // namespace cloudwf::check
