// Randomized differential engine: the flat-core fast path (shared structure
// cache, incremental VM reuse index, placement-context memos — PR 3) versus a
// cache-free naive reference build, on random DAGs x random scenarios, for
// all 19 paper strategies — with the schedule-invariant oracle run on every
// schedule either side produces.
//
// The reference side rebuilds the materialized workflow task-by-task (cold
// StructureCache, no shared slot), constructs a fresh scheduler per strategy
// via strategy_by_label, and runs with VmPool::set_index_verification(true)
// so the incremental reuse index is cross-checked against a fresh sort on
// every query. Agreement is bitwise: every double and every integer-micro
// Money amount of the two ScheduleMetrics must be identical, as must the
// gain/loss percentages versus the per-case reference strategy.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "workload/scenario.hpp"

namespace cloudwf::check {

struct DifferentialConfig {
  /// Number of random (DAG, scenario, seed) cases.
  std::size_t cases = 50;

  /// Master seed; case i derives its DAG shape, scenario kind and scenario
  /// seed from splitmix streams of (seed, i) — same seed, same cases.
  std::uint64_t seed = 0x0d1fCA5E;

  /// Workers for the fast path's run_all (the naive side is always serial).
  /// 0 = hardware concurrency.
  std::size_t fast_path_threads = 1;

  /// Fraction of cases drawn as Pegasus-family science shapes (epigenomics /
  /// cybershake / ligo / sipht, scaled to 50-500 tasks via
  /// dag::science::scaled) instead of random layered DAGs. Science shapes
  /// exercise the wide-level and deep-chain regimes the small layered
  /// generator cannot reach.
  double science_fraction = 0.25;

  /// If > 0, case 0 is a fixed science-family instance scaled to at least
  /// this many tasks (family still drawn from `seed`). All 19 strategies run
  /// on both sides with oracle + bitwise metric comparison, same as any
  /// other case — this is the large-DAG differential gate.
  std::size_t large_case_tasks = 0;
};

/// One disagreement between the fast path and the naive reference, or an
/// oracle violation on either side. `side` is "fast", "naive" or "both".
struct Divergence {
  std::size_t case_index = 0;
  std::string strategy;
  std::string side;
  std::string kind;  ///< "oracle" | "metrics" | "relative"
  std::string detail;

  [[nodiscard]] util::Json to_json() const;
};

/// Parameters of one generated case — enough to reproduce it exactly.
struct CaseInfo {
  std::size_t index = 0;
  std::uint64_t dag_seed = 0;
  std::uint64_t scenario_seed = 0;
  workload::ScenarioKind scenario = workload::ScenarioKind::pareto;
  std::size_t tasks = 0;
  std::size_t edges = 0;
};

struct DifferentialResult {
  std::vector<CaseInfo> cases;
  std::size_t schedules_checked = 0;  ///< strategies x cases x 2 sides
  std::vector<Divergence> divergences;

  [[nodiscard]] bool ok() const noexcept { return divergences.empty(); }
  [[nodiscard]] util::Json to_json() const;
};

/// Runs the full differential sweep. Deterministic in `config`; safe to run
/// concurrently with other work except that it toggles the global VM-index
/// verification flag for the duration of the naive runs.
/// `progress` (optional) is invoked after each case with (done, total).
[[nodiscard]] DifferentialResult run_differential(
    const DifferentialConfig& config,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

}  // namespace cloudwf::check
