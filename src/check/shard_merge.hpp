// Shard-merge oracle: independent verification of a merged distributed
// sweep (dist/coordinator + exp/merge_shards).
//
// The fabric's guarantee is that a merged sweep is byte-identical to the
// serial run of the same grid. This checker certifies a merged row set
// without trusting the fabric's own merge bookkeeping:
//
//   merge-size    the merged row count equals the grid's flat cell count;
//   merge-order   every row carries the seed and strategy label of its flat
//                 index's cell (catches shuffled or mis-concatenated
//                 merges over the WHOLE sweep, cheaply — no re-execution);
//   merge-cell    a random sample of cells is re-executed through the exact
//                 single-cell shard path (exp::run_shard) and the re-run
//                 fixed-point row must equal the merged row bit for bit;
//   merge-oracle  each sampled cell's schedule is rebuilt from scratch and
//                 run through the full 8-invariant schedule oracle
//                 (check/oracle.hpp) — a merged row certified here is
//                 backed by a feasible, correctly billed schedule, not just
//                 a self-consistent number.
//
// Sampling is deterministic in the config seed, so CI reruns check the
// same cells.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "cloud/platform.hpp"
#include "exp/sweep_grid.hpp"
#include "util/json.hpp"

namespace cloudwf::check {

struct ShardMergeConfig {
  /// Cells re-executed and oracle-checked (capped at the grid size).
  std::size_t samples = 12;
  /// Sampling stream seed — same seed, same sampled cells.
  std::uint64_t seed = 0x5eedFab5;
};

struct ShardMergeReport {
  std::size_t cells_checked = 0;   ///< rows passing the cheap order check
  std::size_t cells_verified = 0;  ///< sampled cells re-run + oracle-checked
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] std::string to_string() const;
};

/// Verifies `merged` as the full sweep of `grid` (canonical cell order).
/// Throws std::invalid_argument only if `grid` itself is malformed; every
/// disagreement with the merged rows is a reported violation, not a throw.
[[nodiscard]] ShardMergeReport check_shard_merge(
    const exp::SweepGridSpec& grid, const std::vector<exp::SweepRow>& merged,
    const cloud::Platform& platform, const ShardMergeConfig& config = {});

}  // namespace cloudwf::check
