#include "check/differential.hpp"

#include <array>
#include <cmath>
#include <sstream>

#include "check/oracle.hpp"
#include "dag/generators.hpp"
#include "dag/science.hpp"
#include "exp/experiment.hpp"
#include "scheduling/factory.hpp"
#include "sim/validator.hpp"
#include "util/rng.hpp"

namespace cloudwf::check {

util::Json Divergence::to_json() const {
  util::Json d = util::Json::object();
  d["case"] = case_index;
  d["strategy"] = strategy;
  d["side"] = side;
  d["kind"] = kind;
  d["detail"] = detail;
  return d;
}

util::Json DifferentialResult::to_json() const {
  util::Json r = util::Json::object();
  r["cases"] = cases.size();
  r["schedules_checked"] = schedules_checked;
  r["ok"] = ok();
  util::Json list = util::Json::array();
  for (const Divergence& d : divergences) list.push_back(d.to_json());
  r["divergences"] = std::move(list);
  return r;
}

namespace {

/// RAII for the global reuse-index verification flag (the differential run
/// turns it on; tests may already hold it on — restore what we found is not
/// knowable, so we restore "off", matching the library default).
class ScopedIndexVerification {
 public:
  ScopedIndexVerification() { cloud::VmPool::set_index_verification(true); }
  ~ScopedIndexVerification() { cloud::VmPool::set_index_verification(false); }
  ScopedIndexVerification(const ScopedIndexVerification&) = delete;
  ScopedIndexVerification& operator=(const ScopedIndexVerification&) = delete;
};

/// Rebuilds `wf` task-by-task into a brand-new Workflow. Copying a Workflow
/// shares its (possibly already built) StructureCache slot; the naive
/// reference must start cold, so this is the only honest way to get one.
dag::Workflow clone_cold(const dag::Workflow& wf) {
  dag::Workflow cold(wf.name());
  for (const dag::Task& t : wf.tasks())
    (void)cold.add_task(t.name, t.work, t.output_data);
  for (const dag::Edge& e : wf.edges()) cold.add_edge(e.from, e.to, e.data);
  return cold;
}

/// Bitwise comparison of two metric sets; empty string on agreement.
/// Doubles compare with ==, Money in exact integer micros — the differential
/// contract is bit-identity, not tolerance.
std::string diff_metrics(const sim::ScheduleMetrics& fast,
                         const sim::ScheduleMetrics& naive) {
  std::ostringstream os;
  os.precision(17);
  const auto field = [&os](const char* name, auto f, auto n) {
    if (os.tellp() > 0) return;  // first difference only
    if (f == n) return;
    os << name << ": fast " << f << " != naive " << n;
  };
  field("makespan", fast.makespan, naive.makespan);
  field("vm_cost_micros", fast.vm_cost.micros(), naive.vm_cost.micros());
  field("egress_cost_micros", fast.egress_cost.micros(),
        naive.egress_cost.micros());
  field("total_cost_micros", fast.total_cost.micros(),
        naive.total_cost.micros());
  field("total_idle", fast.total_idle, naive.total_idle);
  field("total_busy", fast.total_busy, naive.total_busy);
  field("vms_used", fast.vms_used, naive.vms_used);
  field("total_btus", fast.total_btus, naive.total_btus);
  field("utilization", fast.utilization, naive.utilization);
  return os.str();
}

std::string diff_relative(const sim::GainLoss& fast, const sim::GainLoss& naive) {
  std::ostringstream os;
  os.precision(17);
  if (fast.gain_pct != naive.gain_pct)
    os << "gain_pct: fast " << fast.gain_pct << " != naive " << naive.gain_pct;
  else if (fast.loss_pct != naive.loss_pct)
    os << "loss_pct: fast " << fast.loss_pct << " != naive " << naive.loss_pct;
  return os.str();
}

/// The four science families the differential samples (montage's ring
/// builder is exercised by its own suite; these four cover the wide /
/// deep / fan-in regimes the paper's schedulers branch on).
constexpr std::array<dag::science::Family, 4> kDiffFamilies = {
    dag::science::Family::epigenomics, dag::science::Family::cybershake,
    dag::science::Family::ligo, dag::science::Family::sipht};

/// Random DAG shape for case `i`, diverse enough to hit every structural
/// regime the schedulers branch on (chains, wide levels, skip edges) —
/// plus, for a config-controlled fraction of cases, real Pegasus-family
/// shapes at 50-500 tasks, where level widths dwarf anything the small
/// layered generator produces.
dag::Workflow random_case_dag(std::size_t index, util::Rng& rng,
                              const DifferentialConfig& config) {
  if (index == 0 && config.large_case_tasks > 0) {
    const dag::science::Family family =
        kDiffFamilies[rng.below(kDiffFamilies.size())];
    dag::Workflow wf = dag::science::scaled(family, config.large_case_tasks);
    wf.set_name("diff-large-" + std::string(dag::science::name_of(family)));
    return wf;
  }
  if (rng.chance(config.science_fraction)) {
    const dag::science::Family family =
        kDiffFamilies[rng.below(kDiffFamilies.size())];
    const std::size_t target = 50 + rng.below(451);  // 50-500 tasks
    dag::Workflow wf = dag::science::scaled(family, target);
    wf.set_name("diff-sci-" + std::to_string(index));
    return wf;
  }
  dag::generators::LayeredConfig cfg;
  cfg.levels = static_cast<std::size_t>(rng.between(2, 8));
  cfg.min_width = 1;
  cfg.max_width = static_cast<std::size_t>(rng.between(1, 6));
  cfg.edge_density = rng.uniform(0.2, 0.9);
  cfg.allow_skip_edges = rng.chance(0.6);
  cfg.skip_density = rng.uniform(0.0, 0.3);
  dag::Workflow wf = dag::generators::random_layered(cfg, rng);
  wf.set_name("diff-case-" + std::to_string(index));
  return wf;
}

}  // namespace

DifferentialResult run_differential(
    const DifferentialConfig& config,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  DifferentialResult result;
  const std::vector<scheduling::Strategy> strategies =
      scheduling::paper_strategies();

  for (std::size_t i = 0; i < config.cases; ++i) {
    // Per-case seed streams: one for the DAG shape, one for the scenario.
    std::uint64_t stream = config.seed + 0x9e3779b97f4a7c15ULL * (i + 1);
    const std::uint64_t dag_seed = util::splitmix64(stream);
    const std::uint64_t scenario_seed = util::splitmix64(stream);
    const std::uint64_t pick = util::splitmix64(stream);

    util::Rng dag_rng(dag_seed);
    const dag::Workflow structure = random_case_dag(i, dag_rng, config);

    workload::ScenarioConfig scenario;
    scenario.kind = workload::kDifferentialScenarios
        [pick % workload::kDifferentialScenarios.size()];
    scenario.seed = scenario_seed;

    CaseInfo info;
    info.index = i;
    info.dag_seed = dag_seed;
    info.scenario_seed = scenario_seed;
    info.scenario = scenario.kind;
    info.tasks = structure.task_count();
    info.edges = structure.edge_count();
    result.cases.push_back(info);

    const auto complain = [&result, i](std::string strategy, std::string side,
                                       std::string kind, std::string detail) {
      result.divergences.push_back(Divergence{i, std::move(strategy),
                                              std::move(side), std::move(kind),
                                              std::move(detail)});
    };

    // Fast path: the production pipeline — shared structure cache, memoized
    // placement contexts, hoisted reference, optionally parallel.
    exp::ExperimentRunner runner(cloud::Platform::ec2(), scenario,
                                 exp::ParallelConfig{config.fast_path_threads});
    const std::vector<exp::RunResult> fast =
        runner.run_all(structure, scenario.kind);

    // Naive reference: cold workflow, fresh schedulers, index verification.
    // The platform must carry the same scenario environment (cold-start
    // table, price schedule) the fast path derived, or the two sides would
    // legitimately differ.
    const dag::Workflow materialized =
        runner.materialize(structure, scenario.kind);
    const dag::Workflow cold = clone_cold(materialized);
    const cloud::Platform platform = runner.scenario_platform(scenario.kind);

    ScopedIndexVerification verify_indices;

    sim::ScheduleMetrics naive_reference;
    {
      const scheduling::Strategy ref = scheduling::reference_strategy();
      const sim::Schedule schedule = ref.scheduler->run(cold, platform);
      const OracleReport report = check_schedule(cold, schedule, platform);
      ++result.schedules_checked;
      if (!report.ok())
        complain(ref.label, "naive", "oracle", report.to_string());
      naive_reference = sim::compute_metrics(cold, schedule, platform);
    }

    for (const exp::RunResult& fast_run : fast) {
      // Fresh scheduler instance: strategy_by_label constructs a new object,
      // so no memo built during the fast path can leak into the naive side.
      const scheduling::Strategy naive_strategy =
          scheduling::strategy_by_label(fast_run.strategy);
      const sim::Schedule schedule =
          naive_strategy.scheduler->run(cold, platform);
      ++result.schedules_checked;

      const OracleReport report = check_schedule(cold, schedule, platform);
      if (!report.ok()) {
        complain(fast_run.strategy, "naive", "oracle", report.to_string());
        continue;
      }

      const sim::ScheduleMetrics naive_metrics =
          sim::compute_metrics(cold, schedule, platform);
      const std::string metric_diff = diff_metrics(fast_run.metrics, naive_metrics);
      if (!metric_diff.empty()) {
        complain(fast_run.strategy, "both", "metrics", metric_diff);
        continue;
      }

      const sim::GainLoss naive_relative =
          sim::relative_to_reference(naive_metrics, naive_reference);
      const std::string relative_diff =
          diff_relative(fast_run.relative, naive_relative);
      if (!relative_diff.empty())
        complain(fast_run.strategy, "both", "relative", relative_diff);
    }

    // The fast path validated its schedules internally (validate_or_throw in
    // run_one_on); the oracle additionally certifies billing + metrics, so
    // re-run the fast side through the oracle too. Rebuilding the schedule
    // off the same shared-cache workflow reproduces the fast path exactly.
    for (const scheduling::Strategy& strategy : strategies) {
      const sim::Schedule schedule =
          strategy.scheduler->run(materialized, platform);
      ++result.schedules_checked;
      const OracleReport report =
          check_schedule(materialized, schedule, platform);
      if (!report.ok())
        complain(strategy.label, "fast", "oracle", report.to_string());
    }

    if (progress) progress(i + 1, config.cases);
  }

  return result;
}

}  // namespace cloudwf::check
