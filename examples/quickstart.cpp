// Quickstart: build a workflow, pick a strategy, schedule it on EC2, and
// read the numbers — the 60-second tour of the cloudwf API.
#include <iostream>

#include "cloud/platform.hpp"
#include "dag/workflow.hpp"
#include "scheduling/factory.hpp"
#include "sim/metrics.hpp"
#include "sim/validator.hpp"

int main() {
  using namespace cloudwf;

  // 1. Describe your workflow: tasks carry a reference runtime (seconds on
  //    a small EC2 instance) and optionally the data they emit (GB).
  dag::Workflow wf("quickstart");
  const dag::TaskId fetch = wf.add_task("fetch", 600.0, /*output_data=*/0.5);
  const dag::TaskId left = wf.add_task("analyze_left", 1800.0);
  const dag::TaskId right = wf.add_task("analyze_right", 2400.0);
  const dag::TaskId merge = wf.add_task("merge", 900.0);
  wf.add_edge(fetch, left);
  wf.add_edge(fetch, right);
  wf.add_edge(left, merge);
  wf.add_edge(right, merge);

  // 2. Pick the platform (the paper's EC2 model: 7 regions, Table II
  //    prices, BTU = 3600 s) and a strategy by its paper label.
  const cloud::Platform platform = cloud::Platform::ec2();
  const scheduling::Strategy strategy =
      scheduling::strategy_by_label("AllParExceed-s");

  // 3. Schedule, verify feasibility, and compute metrics.
  const sim::Schedule schedule = strategy.scheduler->run(wf, platform);
  sim::validate_or_throw(wf, schedule, platform);
  const sim::ScheduleMetrics metrics =
      sim::compute_metrics(wf, schedule, platform);

  std::cout << "strategy:  " << strategy.label << " ("
            << strategy.scheduler->name() << ")\n"
            << "makespan:  " << metrics.makespan << " s\n"
            << "cost:      " << metrics.total_cost << " (" << metrics.total_btus
            << " BTUs on " << metrics.vms_used << " VMs)\n"
            << "idle time: " << metrics.total_idle << " s\n\n";

  // 4. Inspect the placement.
  for (const dag::Task& t : wf.tasks()) {
    const sim::Assignment& a = schedule.assignment(t.id);
    const cloud::Vm& vm = schedule.pool().vm(a.vm);
    std::cout << t.name << " -> VM" << a.vm << " (" << cloud::name_of(vm.size())
              << ") [" << a.start << ", " << a.end << ")\n";
  }

  // 5. Compare against the paper's whole strategy portfolio in one loop.
  std::cout << "\nall 19 paper strategies on this workflow:\n";
  for (const scheduling::Strategy& s : scheduling::paper_strategies()) {
    const sim::Schedule sched = s.scheduler->run(wf, platform);
    const sim::ScheduleMetrics m = sim::compute_metrics(wf, sched, platform);
    std::cout << "  " << s.label << ": makespan " << m.makespan << " s, cost "
              << m.total_cost << "\n";
  }
  return 0;
}
