// Non-deterministic workflows end-to-end: model a runtime-determined
// application with loop/split/join constructs (the paper's introduction;
// its ref [1]), sample an ensemble of concrete instances, and compare how
// the paper's strategies behave *in distribution* rather than on a single
// DAG.
//
// Usage: nondet_ensemble [instances] [seed]
#include <cstdlib>
#include <iostream>

#include "exp/ensemble.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace cloudwf;
  namespace nd = dag::nondet;

  const std::size_t instances =
      argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10))
               : 25;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0x1db2013;

  // A data-processing service: ingest, then per-request processing that
  // loops 1-5 times; each iteration either takes the common fast path or
  // (30 %) a heavy three-way parallel analysis; a final report.
  const nd::NodePtr app = nd::sequence(
      {nd::task("ingest", 400.0, 0.2),
       nd::loop(nd::choice({{0.7, nd::task("fast_path", 600.0)},
                            {0.3, nd::sequence(
                                      {nd::parallel({nd::task("analyze_a", 1500.0),
                                                     nd::task("analyze_b", 1800.0),
                                                     nd::task("analyze_c", 1200.0)}),
                                       nd::task("combine", 300.0)})}}),
                1, 5),
       nd::task("report", 250.0)});

  std::cout << "expected tasks per instance: "
            << util::format_double(nd::expected_tasks(app), 2) << "\n";

  // Show three sampled instances to make the non-determinism tangible.
  for (std::uint64_t s = seed; s < seed + 3; ++s) {
    util::Rng rng(s);
    const dag::Workflow wf = nd::unroll(app, rng);
    std::cout << "  instance(seed " << s << "): " << wf.task_count()
              << " tasks, " << wf.edge_count() << " edges\n";
  }
  std::cout << '\n';

  const cloud::Platform platform = cloud::Platform::ec2();
  std::cout << "=== " << instances
            << "-instance ensemble, all 19 paper strategies ===\n\n";
  const auto rows = exp::ensemble_study_all(app, platform, instances, seed);
  std::cout << exp::ensemble_table(rows) << '\n';

  // Which strategy is the most *predictable* (lowest makespan variance)?
  const exp::EnsembleStats* steadiest = &rows.front();
  const exp::EnsembleStats* cheapest = &rows.front();
  for (const exp::EnsembleStats& r : rows) {
    if (r.makespan.stddev < steadiest->makespan.stddev) steadiest = &r;
    if (r.cost_dollars.mean < cheapest->cost_dollars.mean) cheapest = &r;
  }
  std::cout << "steadiest makespan: " << steadiest->strategy << " (sd "
            << util::format_double(steadiest->makespan.stddev, 1) << " s)\n"
            << "cheapest on average: " << cheapest->strategy << " ($"
            << util::format_double(cheapest->cost_dollars.mean, 3) << ")\n";
  return 0;
}
