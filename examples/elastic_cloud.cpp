// Elastic cloud walkthrough: the reactive auto-scaling runtime
// (sim/elastic.hpp) on the paper's workloads — watch the pool grow with the
// queue, see what boot time costs, and compare the reactive baseline with
// the static planners' best.
//
// Usage: elastic_cloud [boot-seconds]
#include <cstdlib>
#include <iostream>

#include "exp/experiment.hpp"
#include "sim/elastic.hpp"
#include "sim/gantt.hpp"
#include "sim/metrics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cloudwf;
  const double boot = argc > 1 ? std::strtod(argv[1], nullptr) : 0.0;

  cloud::Platform platform = cloud::Platform::ec2();
  platform.set_boot_time(boot);
  const exp::ExperimentRunner runner;

  std::cout << "=== Elastic runtime (boot " << boot
            << " s, scale up at 1 queued task per VM) ===\n\n";

  util::TextTable t({"workflow", "makespan (s)", "cost ($)", "VMs ever",
                     "peak pool", "scale-ups", "best static makespan (s)"});
  for (const dag::Workflow& structure : exp::paper_workflows()) {
    const dag::Workflow wf =
        runner.materialize(structure, workload::ScenarioKind::pareto);
    const sim::ElasticResult r = sim::run_elastic(wf, platform);
    const sim::ScheduleMetrics m =
        sim::compute_metrics(wf, r.schedule, platform);

    util::Seconds best_static = 0;
    bool first = true;
    for (const scheduling::Strategy& s : scheduling::paper_strategies()) {
      const util::Seconds ms = s.scheduler->run(wf, platform).makespan();
      if (first || ms < best_static) best_static = ms;
      first = false;
    }
    t.add_row({wf.name(), util::format_double(r.makespan, 0),
               util::format_double(m.total_cost.dollars(), 2),
               std::to_string(r.vms_provisioned), std::to_string(r.peak_pool),
               std::to_string(r.scale_ups),
               util::format_double(best_static, 0)});
  }
  std::cout << t << '\n';

  // A close-up: the MapReduce queue forcing the pool open.
  const dag::Workflow mr =
      runner.materialize(exp::paper_workflows()[2], workload::ScenarioKind::pareto);
  const sim::ElasticResult r = sim::run_elastic(mr, platform);
  std::cout << "MapReduce close-up (" << r.peak_pool << " VMs at peak, "
            << r.scale_ups << " reactive scale-ups):\n\n";
  sim::GanttOptions opts;
  opts.width = 100;
  opts.show_task_names = false;
  std::cout << sim::render_gantt(mr, r.schedule, opts);
  std::cout << "\nStatic planners decide the pool up front; the elastic "
               "runtime discovers it from the queue — at the price of "
               "reacting late (and of boot time, try `elastic_cloud 120`).\n";
  return 0;
}
