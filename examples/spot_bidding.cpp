// Spot bidding: how high should you bid? Sweep the bid fraction for one
// strategy and watch the trade-off — low bids buy cheap hours but evictions
// rerun work and stretch the makespan; bidding at/above on-demand removes
// evictions but caps the savings at the market's mean discount.
//
// Usage: spot_bidding [strategy-label] [workflow]
#include <iostream>

#include "exp/spot_study.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cloudwf;
  const std::string label = argc > 1 ? argv[1] : "AllParExceed-s";
  const std::string workflow = argc > 2 ? argv[2] : "montage";

  const exp::ExperimentRunner runner;
  const dag::Workflow* structure = nullptr;
  static const std::vector<dag::Workflow> workflows = exp::paper_workflows();
  for (const dag::Workflow& wf : workflows)
    if (wf.name() == workflow) structure = &wf;
  if (structure == nullptr) {
    std::cerr << "unknown workflow '" << workflow
              << "' (montage|cstem|mapreduce|sequential)\n";
    return 1;
  }

  std::cout << "=== Spot bidding sweep: " << label << " on " << workflow
            << " (market mean 35% of on-demand) ===\n\n";
  util::TextTable t({"bid (x on-demand)", "spot cost ($)", "savings vs "
                     "on-demand", "expected evictions", "makespan (s)"});

  for (double bid : {0.25, 0.40, 0.60, 0.80, 1.00, 1.20}) {
    exp::SpotStudyConfig cfg;
    cfg.bid_fraction = bid;
    cfg.replay_reps = 8;
    const auto rows = exp::spot_study(runner, *structure, cfg);
    for (const exp::SpotStudyRow& r : rows) {
      if (r.strategy != label) continue;
      t.add_row({util::format_double(bid, 2),
                 util::format_double(r.spot_cost.dollars(), 3),
                 util::format_double(r.savings_pct, 1) + "%",
                 util::format_double(r.evictions_expected, 1),
                 util::format_double(r.makespan_spot, 0)});
    }
  }
  std::cout << t << '\n'
            << "Rule of thumb the sweep shows: bids below the market mean "
               "get evicted constantly; just above it, evictions fade while "
               "the hourly price still averages the mean — the sweet spot "
               "sits a little over the long-run spot fraction.\n";
  return 0;
}
