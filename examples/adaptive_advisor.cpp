// Adaptive advisor: the paper's conclusion made interactive — inspect a
// workflow's structural features, get a Table-V recommendation per
// objective, and verify the advice by actually running it against the
// whole strategy portfolio.
//
// Usage: adaptive_advisor [workflow-file]
// With no argument it demonstrates on the four paper workflows.
#include <iostream>

#include "adaptive/advisor.hpp"
#include "dag/io.hpp"
#include "exp/experiment.hpp"

namespace {

using namespace cloudwf;

void advise_and_check(const exp::ExperimentRunner& runner,
                      const dag::Workflow& structure) {
  const dag::Workflow wf =
      runner.materialize(structure, workload::ScenarioKind::pareto);
  const adaptive::WorkflowFeatures features = adaptive::compute_features(wf);

  std::cout << "=== " << wf.name() << " ===\n"
            << adaptive::describe(features) << "\n\n";

  // Run the full portfolio once so the advice can be ranked against it.
  const auto results = runner.run_all(structure, workload::ScenarioKind::pareto);

  for (adaptive::Objective obj :
       {adaptive::Objective::savings, adaptive::Objective::gain,
        adaptive::Objective::balanced}) {
    const adaptive::Advice advice = adaptive::advise(features, obj);
    std::cout << name_of(obj) << ": " << advice.strategy_label << "\n    ("
              << advice.rationale << ")\n";

    // Where does the recommendation land among all 19 strategies?
    for (const exp::RunResult& r : results) {
      if (r.strategy != advice.strategy_label) continue;
      std::cout << "    measured: gain " << r.relative.gain_pct << "%, savings "
                << r.relative.savings_pct() << "%, makespan "
                << r.metrics.makespan << " s, cost " << r.metrics.total_cost
                << "\n";
    }
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const exp::ExperimentRunner runner;

  if (argc > 1) {
    const dag::Workflow wf = dag::load_workflow(argv[1]);
    advise_and_check(runner, wf);
    return 0;
  }
  for (const dag::Workflow& wf : exp::paper_workflows())
    advise_and_check(runner, wf);
  return 0;
}
