// Deadline/budget planner walkthrough: the practitioner's question — "run
// this MapReduce under $1 and 90 minutes, what do I pick?" — answered by
// the portfolio planner, then stress-tested by tightening each constraint
// until it breaks.
//
// Usage: deadline_planner [budget-usd] [deadline-s]
#include <cstdlib>
#include <iostream>

#include "exp/planner.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace cloudwf;

  const double budget_usd = argc > 1 ? std::strtod(argv[1], nullptr) : 1.0;
  const double deadline_s = argc > 2 ? std::strtod(argv[2], nullptr) : 5400.0;

  const exp::ExperimentRunner runner;
  const dag::Workflow mapreduce = exp::paper_workflows()[2];

  exp::PlanConstraints constraints;
  constraints.budget = util::Money::from_dollars(budget_usd);
  constraints.deadline = deadline_s;

  const exp::PlanOutcome outcome = exp::plan(runner, mapreduce, constraints);
  std::cout << "mapreduce under $" << budget_usd << " and " << deadline_s
            << " s:\n"
            << (outcome.feasible ? "  plan: " : "  INFEASIBLE; best effort: ")
            << outcome.strategy << " — makespan " << outcome.metrics.makespan
            << " s, cost " << outcome.metrics.total_cost << "\n\n";
  std::cout << exp::plan_table(outcome, constraints) << '\n';

  // How tight can each constraint get before the plan breaks?
  std::cout << "deadline stress (budget fixed at $" << budget_usd << "):\n";
  for (double d = deadline_s; d > 0; d *= 0.5) {
    exp::PlanConstraints c = constraints;
    c.deadline = d;
    const exp::PlanOutcome o = exp::plan(runner, mapreduce, c);
    std::cout << "  deadline " << util::format_double(d, 0) << " s -> "
              << (o.feasible ? o.strategy : std::string("infeasible")) << '\n';
    if (!o.feasible) break;
  }

  std::cout << "budget stress (deadline fixed at "
            << util::format_double(deadline_s, 0) << " s):\n";
  for (double b = budget_usd; b > 0.01; b *= 0.5) {
    exp::PlanConstraints c = constraints;
    c.budget = util::Money::from_dollars(b);
    const exp::PlanOutcome o = exp::plan(runner, mapreduce, c);
    std::cout << "  budget $" << util::format_double(b, 2) << " -> "
              << (o.feasible ? o.strategy : std::string("infeasible")) << '\n';
    if (!o.feasible) break;
  }
  return 0;
}
