// Cost explorer: what-if analysis over the EC2 platform model — sweep a
// MapReduce workflow's width, compare regions (including cross-region
// egress billing), and show the BTU quantization effects that drive the
// paper's NotExceed/Exceed split.
#include <iostream>

#include "dag/builders.hpp"
#include "exp/experiment.hpp"
#include "scheduling/factory.hpp"
#include "sim/metrics.hpp"
#include "util/table.hpp"
#include "util/strings.hpp"

namespace {

using namespace cloudwf;

// How do strategy costs scale as MapReduce widens? (The "instance-intensive"
// regime of the related work.)
void width_sweep() {
  std::cout << "=== MapReduce width sweep (Pareto works, cost in $) ===\n\n";
  util::TextTable t({"maps", "OneVMperTask-s", "StartParExceed-s",
                     "AllParExceed-s", "AllPar1LnS", "AllPar1LnSDyn"});
  const exp::ExperimentRunner runner;
  for (std::size_t maps : {2u, 4u, 8u, 16u, 32u}) {
    const dag::Workflow base = dag::builders::map_reduce(maps, maps / 2 + 1);
    std::vector<std::string> row = {std::to_string(maps)};
    for (const char* label :
         {"OneVMperTask-s", "StartParExceed-s", "AllParExceed-s", "AllPar1LnS",
          "AllPar1LnSDyn"}) {
      const exp::RunResult r =
          runner.run_one(scheduling::strategy_by_label(label), base,
                         workload::ScenarioKind::pareto);
      row.push_back(util::format_double(r.metrics.total_cost.dollars(), 2));
    }
    t.add_row(std::move(row));
  }
  std::cout << t << '\n';
}

// Same schedule, different home regions: Table II price spreads.
void region_sweep() {
  std::cout << "=== Region sweep: CSTEM, AllParExceed-s ===\n\n";
  util::TextTable t({"region", "cost", "vs Virginia"});
  const dag::Workflow base = dag::builders::cstem();

  util::Money virginia_cost;
  for (const cloud::Region& region : cloud::ec2_regions()) {
    const cloud::Platform platform(
        std::vector<cloud::Region>(cloud::ec2_regions().begin(),
                                   cloud::ec2_regions().end()),
        region.id);
    const exp::ExperimentRunner runner(platform);
    const exp::RunResult r =
        runner.run_one(scheduling::strategy_by_label("AllParExceed-s"), base,
                       workload::ScenarioKind::pareto);
    if (region.id == 0) virginia_cost = r.metrics.total_cost;
    const double pct =
        100.0 *
        (static_cast<double>((r.metrics.total_cost - virginia_cost).micros()) /
         static_cast<double>(virginia_cost.micros()));
    t.add_row({region.name, r.metrics.total_cost.to_string(),
               (region.id == 0 ? "-" : util::format_double(pct, 1) + "%")});
  }
  std::cout << t << '\n';
}

// BTU quantization: the same task duration costs very differently around
// BTU boundaries — the effect behind the NotExceed policies.
void btu_staircase() {
  std::cout << "=== BTU staircase: one task on one small VM ===\n\n";
  util::TextTable t({"task runtime (s)", "BTUs", "cost", "paid utilization"});
  const cloud::Region& region = cloud::ec2_regions()[0];
  for (double runtime : {1800.0, 3599.0, 3600.0, 3601.0, 5400.0, 7200.0, 7201.0}) {
    const auto btus = cloud::btus_for(runtime);
    t.add_row({util::format_double(runtime, 0), std::to_string(btus),
               cloud::rental_cost(runtime, cloud::InstanceSize::small, region)
                   .to_string(),
               util::format_double(
                   100.0 * runtime / (static_cast<double>(btus) * util::kBtu), 1) +
                   "%"});
  }
  std::cout << t << '\n';
}

// Cross-region placement: what egress costs when data leaves a region.
void egress_demo() {
  std::cout << "=== Cross-region egress (11 GB out of each region) ===\n\n";
  util::TextTable t({"source region", "egress cost"});
  for (const cloud::Region& region : cloud::ec2_regions())
    t.add_row({region.name, cloud::egress_cost(11.0, region).to_string()});
  std::cout << t << '\n';
}

}  // namespace

int main() {
  width_sweep();
  region_sweep();
  btu_staircase();
  egress_demo();
  return 0;
}
