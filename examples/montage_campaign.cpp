// Montage campaign: the paper's astronomy use case end-to-end — run the
// 24-task Montage workflow through every strategy under all three
// execution-time scenarios and print the Fig. 4-style study for it,
// plus the DOT graph to visualize the DAG.
#include <fstream>
#include <iostream>

#include "dag/builders.hpp"
#include "dag/dot.hpp"
#include "exp/fig4.hpp"
#include "exp/fig5.hpp"
#include "exp/report.hpp"

int main(int argc, char** argv) {
  using namespace cloudwf;

  const dag::Workflow montage = dag::builders::montage24();
  std::cout << "Montage workflow: " << montage.task_count() << " tasks, "
            << montage.edge_count() << " dependencies\n\n";

  // Optionally dump the DAG for graphviz (`montage_campaign montage.dot`).
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << dag::to_dot(montage);
    std::cout << "wrote DOT graph to " << argv[1] << "\n\n";
  }

  const exp::ExperimentRunner runner;

  // Per-scenario raw results.
  for (workload::ScenarioKind kind : workload::kAllScenarios) {
    std::cout << "=== scenario: " << workload::name_of(kind) << " ===\n";
    std::cout << exp::results_table(runner.run_all(montage, kind)) << '\n';
  }

  // The paper's decision view: which strategies give both gain and savings?
  const exp::Fig4Panel panel = exp::fig4_panel(runner, montage);
  std::cout << "strategies in the target square (gain >= 0 and savings >= 0):\n";
  for (const exp::Fig4Point& p : panel.points) {
    if (p.in_target_square() && (p.gain_pct > 0 || p.loss_pct < 0)) {
      std::cout << "  " << p.strategy << " [" << workload::name_of(p.scenario)
                << "]: gain " << p.gain_pct << "%, savings " << -p.loss_pct
                << "%\n";
    }
  }

  // Idle-time (co-rental opportunity) view.
  std::cout << '\n' << exp::fig5_table(exp::fig5_panel(runner, montage));
  return 0;
}
