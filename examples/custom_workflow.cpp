// Custom workflows: the paper's future-work item — "custom workflows and
// execution times with various properties" — exercised through the text
// format, the random generators, and the full experiment pipeline.
//
// Usage:
//   custom_workflow                  # generate + study a random DAG
//   custom_workflow my.wf            # study a workflow file
//   custom_workflow --emit > my.wf   # print a template workflow file
#include <cstring>
#include <iostream>

#include "dag/generators.hpp"
#include "dag/io.hpp"
#include "exp/report.hpp"
#include "exp/table5.hpp"
#include "workload/pareto.hpp"

namespace {

using namespace cloudwf;

dag::Workflow generated_example() {
  util::Rng rng(2026);
  dag::generators::LayeredConfig cfg;
  cfg.levels = 6;
  cfg.min_width = 2;
  cfg.max_width = 5;
  cfg.edge_density = 0.45;
  cfg.skip_density = 0.08;
  dag::Workflow wf = dag::generators::random_layered(cfg, rng);
  wf.set_name("custom-demo");

  // Attach Feitelson-model works and data sizes directly (any assignment
  // works; the scenario machinery is bypassed to show the low-level API).
  const workload::ParetoDistribution exec = workload::paper_exec_time_distribution();
  const workload::ParetoDistribution data = workload::paper_task_size_distribution();
  for (const dag::Task& t : wf.tasks()) {
    wf.task(t.id).work = exec.sample(rng);
    wf.task(t.id).output_data = data.sample(rng) / 1024.0;
  }
  return wf;
}

void study(const dag::Workflow& wf) {
  std::cout << "workflow '" << wf.name() << "': " << wf.task_count()
            << " tasks, " << wf.edge_count() << " edges\n\n";

  const cloud::Platform platform = cloud::Platform::ec2();
  std::vector<exp::RunResult> results;
  const exp::ExperimentRunner runner;
  for (const scheduling::Strategy& s : scheduling::paper_strategies()) {
    // Works are already on the tasks: schedule directly.
    const sim::Schedule schedule = s.scheduler->run(wf, platform);
    exp::RunResult r;
    r.strategy = s.label;
    r.workflow = wf.name();
    r.metrics = sim::compute_metrics(wf, schedule, platform);
    const sim::Schedule ref =
        scheduling::reference_strategy().scheduler->run(wf, platform);
    r.relative = sim::relative_to_reference(
        r.metrics, sim::compute_metrics(wf, ref, platform));
    results.push_back(r);
  }
  std::cout << exp::results_table(results) << '\n';

  const exp::Table5Row winners = exp::table5_row(results);
  std::cout << "best savings: " << winners.best_savings << " ("
            << winners.best_savings_value << "%)\n"
            << "best gain:    " << winners.best_gain << " ("
            << winners.best_gain_value << "%)\n"
            << "best balance: " << winners.best_balance << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--emit") == 0) {
    std::cout << dag::serialize_workflow(generated_example());
    return 0;
  }
  if (argc > 1) {
    study(dag::load_workflow(argv[1]));
    return 0;
  }
  study(generated_example());
  return 0;
}
