// Paper tour: the whole Frincu/Genaud/Gossa argument retraced in one
// runnable narrative — from the provisioning policies on a toy fan-out,
// through the Fig. 4 decision square, to the Table V adaptive conclusion.
// Read the printed commentary top to bottom alongside the paper.
#include <iostream>

#include "adaptive/advisor.hpp"
#include "exp/fig4.hpp"
#include "exp/fig5.hpp"
#include "sim/gantt.hpp"
#include "sim/metrics.hpp"
#include "util/strings.hpp"

namespace {
using namespace cloudwf;

void act1_provisioning_matters() {
  std::cout << "ACT 1 — provisioning is a policy, not a detail (Sect. III-A)\n"
            << "------------------------------------------------------------\n"
            << "The same tasks, the same HEFT ordering, three different\n"
            << "answers to 'new VM or reuse?':\n\n";

  dag::Workflow wf("act1");
  const dag::TaskId root = wf.add_task("prepare", 1200.0);
  for (int i = 0; i < 4; ++i) {
    const dag::TaskId t = wf.add_task("work" + std::to_string(i),
                                      900.0 + 450.0 * i);
    wf.add_edge(root, t);
  }
  const cloud::Platform ec2 = cloud::Platform::ec2();

  for (const char* label :
       {"OneVMperTask-s", "StartParExceed-s", "AllParExceed-s"}) {
    const sim::Schedule s =
        scheduling::strategy_by_label(label).scheduler->run(wf, ec2);
    const sim::ScheduleMetrics m = sim::compute_metrics(wf, s, ec2);
    std::cout << label << ": " << m.vms_used << " VMs, " << m.total_cost
              << ", makespan " << util::format_double(m.makespan, 0)
              << " s, idle " << util::format_double(m.total_idle, 0) << " s\n";
    sim::GanttOptions opts;
    opts.width = 72;
    opts.show_task_names = false;
    std::cout << sim::render_gantt(wf, s, opts) << '\n';
  }
  std::cout << "Same workflow; the provisioning choice moved every number.\n\n";
}

void act2_the_decision_square() {
  std::cout << "ACT 2 — the gain/savings square (Sect. V, Fig. 4)\n"
            << "-------------------------------------------------\n"
            << "Against the OneVMperTask-small reference, who delivers BOTH\n"
            << "faster and cheaper on Montage under Feitelson runtimes?\n\n";
  const exp::ExperimentRunner runner;
  const exp::Fig4Panel panel =
      exp::fig4_panel(runner, exp::paper_workflows()[0]);
  for (const exp::Fig4Point& p : panel.points) {
    if (p.scenario != workload::ScenarioKind::pareto) continue;
    if (!p.in_target_square()) continue;
    if (p.gain_pct == 0 && p.loss_pct == 0) continue;  // the reference itself
    std::cout << "  " << p.strategy << ": gain "
              << util::format_double(p.gain_pct, 1) << " %, savings "
              << util::format_double(-p.loss_pct, 1) << " %\n";
  }
  std::cout << "\nLarge instances buy speed at 2-4x the money (speed-up 2.1\n"
            << "for 4x the price); the square belongs to small/medium\n"
            << "AllPar reuse and the parallelism-reducing AllPar1LnS family.\n\n";
}

void act3_idle_time_is_real_money() {
  std::cout << "ACT 3 — idle time (Sect. V, Fig. 5)\n"
            << "-----------------------------------\n";
  const exp::ExperimentRunner runner;
  const exp::Fig5Panel panel =
      exp::fig5_panel(runner, exp::paper_workflows()[0]);
  util::Seconds max_idle = 0;
  std::string max_strategy;
  util::Seconds min_idle = 0;
  std::string min_strategy;
  bool first = true;
  for (const exp::Fig5Bar& b : panel.bars) {
    if (first || b.idle_time > max_idle) {
      max_idle = b.idle_time;
      max_strategy = b.strategy;
    }
    if (first || b.idle_time < min_idle) {
      min_idle = b.idle_time;
      min_strategy = b.strategy;
    }
    first = false;
  }
  std::cout << "Montage wastes between "
            << util::format_double(min_idle / 3600.0, 1) << " h ("
            << min_strategy << ") and "
            << util::format_double(max_idle / 3600.0, 1) << " h ("
            << max_strategy << ") of paid machine time — the paper's co-rent\n"
            << "and energy remarks are about that gap.\n\n";
}

void act4_adapt() {
  std::cout << "ACT 4 — the conclusion: adapt the strategy to the workflow\n"
            << "----------------------------------------------------------\n";
  const exp::ExperimentRunner runner;
  for (const dag::Workflow& base : exp::paper_workflows()) {
    const dag::Workflow wf =
        runner.materialize(base, workload::ScenarioKind::pareto);
    const adaptive::WorkflowFeatures f = adaptive::compute_features(wf);
    std::cout << wf.name() << " -> savings: "
              << adaptive::advise(f, adaptive::Objective::savings).strategy_label
              << ", gain: "
              << adaptive::advise(f, adaptive::Objective::gain).strategy_label
              << ", balance: "
              << adaptive::advise(f, adaptive::Objective::balanced).strategy_label
              << '\n';
  }
  std::cout << "\nTable V as a function — the paper's 'adaptive scheduling'\n"
            << "future work, running.\n";
}
}  // namespace

int main() {
  act1_provisioning_matters();
  act2_the_decision_square();
  act3_idle_time_is_real_money();
  act4_adapt();
  return 0;
}
